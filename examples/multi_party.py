"""Multi-party vertical federation (§6.4): two or more Party A's.

Three enterprises contribute feature subsets to Party B's task. The
example shows the Table 6 effect: each added party's features lift the
model's AUC, while training cost grows only mildly because Party B's
decryption load is the only part that scales with the party count.

Run:  python examples/multi_party.py
"""

import numpy as np

from repro import FederatedTrainer, GBDTParams, VF2BoostConfig
from repro.bench.costmodel import CostModel
from repro.core.protocol import ProtocolScheduler
from repro.data.synthetic import SyntheticSpec, generate_classification
from repro.fed.cluster import PAPER_CLUSTER
from repro.gbdt.binning import bin_column, bin_dataset
from repro.gbdt.metrics import auc


def main() -> None:
    params = GBDTParams(n_trees=8, n_layers=5, n_bins=10)
    spec = SyntheticSpec(n_instances=2_000, n_features=24, seed=3, noise=0.4)
    features, labels = generate_classification(spec)
    n_train = 1_600
    full = bin_dataset(features[:n_train], params.n_bins)
    valid_codes_full = np.empty((400, 24), dtype=np.uint16)
    for j in range(24):
        valid_codes_full[:, j] = bin_column(features[n_train:, j], full.cut_points[j])

    # Four fixed feature subsets of 6 columns each; party k owns subset k.
    subsets = [np.arange(k * 6, (k + 1) * 6) for k in range(4)]

    print(f"{'#parties':>8} | {'valid AUC':>9} | {'sim s/tree':>10}")
    print("-" * 35)
    for n_parties in (2, 3, 4):
        columns = subsets[:n_parties]
        party_sets = [full.subset_features(cols) for cols in columns]
        valid_codes = {
            p: valid_codes_full[:, cols] for p, cols in enumerate(columns)
        }
        config = VF2BoostConfig.vf2boost(
            params=params, crypto_mode="counted",
            n_passive_parties=n_parties - 1,
        )
        result = FederatedTrainer(config).fit(party_sets, labels[:n_train])
        margins = result.model.predict_margin(valid_codes)
        score = auc(labels[n_train:], margins)

        schedule = ProtocolScheduler(
            config, CostModel.paper(), PAPER_CLUSTER
        ).schedule(result.trace)
        per_tree = schedule.makespan / len(result.trace.trees)
        print(f"{n_parties:>8} | {score:>9.3f} | {per_tree:>10.2f}")

    print("\nMore parties unite more features -> higher AUC at a mild cost")
    print("(Party B ships ciphers to more destinations and decrypts more).")


if __name__ == "__main__":
    main()
