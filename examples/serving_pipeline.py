"""Model persistence and federated serving.

After training, the federated model itself is distributed: Party B
holds the skeleton plus its own split details; each passive party
holds a private sidecar with its thresholds. Serving a new instance is
a joint protocol — B drives the tree traversal and sends the owning
party batched routing queries whenever an instance reaches a node it
cannot evaluate.

This example trains a model, saves the per-party artifacts, reloads
them, and scores a batch through the routing protocol, with every
serving byte accounted on the channel.

Run:  python examples/serving_pipeline.py
"""

import tempfile

import numpy as np

from repro import FederatedTrainer, GBDTParams, VF2BoostConfig
from repro.core.inference import FederatedPredictor
from repro.core.serialization import load_model, save_model
from repro.gbdt.binning import bin_dataset


def main() -> None:
    rng = np.random.default_rng(12)
    n, d = 400, 10
    features = rng.normal(size=(n, d))
    labels = ((features @ rng.normal(size=d)) > 0).astype(float)

    params = GBDTParams(n_trees=4, n_layers=4, n_bins=8)
    full = bin_dataset(features, params.n_bins)
    parties = [
        full.subset_features(np.arange(5, 10)),  # Party B
        full.subset_features(np.arange(0, 5)),   # Party A
    ]
    config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
    result = FederatedTrainer(config).fit(parties, labels)
    owners = result.model.split_counts_by_owner()
    print(f"trained {params.n_trees} trees; splits B={owners.get(0, 0)}, "
          f"A={owners.get(1, 0)}")

    with tempfile.TemporaryDirectory() as tmp:
        files = save_model(result.model, f"{tmp}/shared.json", f"{tmp}/private")
        print("\nsaved artifacts:")
        for path in files:
            print(f"  {path}")
        print("(the shared skeleton contains no feature ids or thresholds;")
        print(" each sidecar holds only its owner's split details)")

        model = load_model(files[0], files[1:])

    codes = {0: parties[0].codes, 1: parties[1].codes}
    predictor = FederatedPredictor(model, codes, key_bits=256)
    margins = predictor.predict_margin()
    local = result.model.predict_margin(codes)
    print(f"\nserving {n} instances through the routing protocol")
    print(f"matches local prediction: {np.allclose(margins, local)}")
    print(f"cross-party routing queries: {predictor.routing_queries}")
    print(f"serving traffic: {predictor.channel.total_bytes():,} bytes "
          f"({predictor.channel.total_bytes() / n:.1f} bytes/instance)")


if __name__ == "__main__":
    main()
