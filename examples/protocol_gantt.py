"""Visualize the concurrent training protocol as Gantt charts.

Reproduces the *story* of Figures 4-6: the same workload scheduled
under the sequential baseline protocol and under VF²Boost's concurrent
protocol, rendered as ASCII Gantt charts, plus the per-phase busy-time
breakdown and resource utilization (§6.2).

Run:  python examples/protocol_gantt.py
      python examples/protocol_gantt.py --trace-out gantt  # + Chrome traces
"""

import argparse

from repro.bench.costmodel import CostModel
from repro.bench.report import phase_table
from repro.core.config import VF2BoostConfig
from repro.core.profile import analytic_trace
from repro.core.protocol import ProtocolScheduler
from repro.fed.cluster import PAPER_CLUSTER
from repro.gbdt.params import GBDTParams
from repro.obs import write_chrome_trace


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PREFIX",
        help="also write <PREFIX>.<variant>.trace.json Chrome traces "
        "(the same Gantt, openable at https://ui.perfetto.dev)",
    )
    args = parser.parse_args(argv)

    params = GBDTParams(n_layers=5, n_bins=20)
    trace = analytic_trace(
        n_instances=1_000_000,
        features_active=5_000,
        features_passive=[5_000],
        density=0.01,
        n_bins=params.n_bins,
        n_layers=params.n_layers,
    )
    cost = CostModel.paper()

    variants = {
        "sequential baseline (VF-GBDT)": VF2BoostConfig.vf_gbdt(params=params),
        "concurrent protocol (VF2Boost)": VF2BoostConfig.vf2boost(params=params),
    }
    results = {}
    for label, config in variants.items():
        result = ProtocolScheduler(config, cost, PAPER_CLUSTER).schedule(
            trace, collect_tasks=args.trace_out is not None
        )
        results[label] = result
        print(f"=== {label} ===")
        print(f"one tree: {result.makespan:.0f} simulated seconds")
        print(result.gantt)
        print(phase_table(result.phase_totals, title="phase busy-time breakdown:"))
        if args.trace_out:
            slug = "vf2boost" if "VF2Boost" in label else "baseline"
            path = f"{args.trace_out}.{slug}.trace.json"
            write_chrome_trace(path, result.spans())
            print(f"[wrote {path} — open at https://ui.perfetto.dev]")
        print("resource utilization over the tree:")
        for name in ("B", "B.dec", "A1", "wan.out", "wan.in"):
            print(f"  {name:<8} {result.utilization.get(name, 0.0):6.1%}")
        print()

    base = results["sequential baseline (VF-GBDT)"].makespan
    fast = results["concurrent protocol (VF2Boost)"].makespan
    print(f"speedup from the concurrent protocol + crypto customization: "
          f"{base / fast:.2f}x")
    print("(legend: E=Enc, C=CipherComm, B=BuildHistA, F=FindSplit, "
          "S=SplitNode, P=Pack, A=Aggregate)")


if __name__ == "__main__":
    main()
