"""Quickstart: train VF²Boost on a vertically partitioned dataset.

Two parties hold disjoint feature columns over the same users; Party B
also holds the labels. We train the full federated GBDT with real
Paillier cryptography (test-sized 256-bit keys for speed) and verify it
matches co-located plaintext training — the lossless property.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FederatedTrainer, GBDTParams, GBDTTrainer, VF2BoostConfig
from repro.gbdt.binning import bin_dataset


def main() -> None:
    rng = np.random.default_rng(0)
    n, n_features = 300, 10
    features = rng.normal(size=(n, n_features))
    weights = rng.normal(size=n_features)
    labels = (features @ weights + rng.normal(scale=0.3, size=n) > 0).astype(float)

    params = GBDTParams(n_trees=3, n_layers=4, n_bins=8)
    full = bin_dataset(features, params.n_bins)

    # Vertical partition: Party B (labels + columns 5..9), Party A (0..4).
    party_b = full.subset_features(np.arange(5, 10))
    party_a = full.subset_features(np.arange(0, 5))

    config = VF2BoostConfig.vf2boost(
        params=params,
        crypto_mode="real",      # actually run the Paillier protocol
        key_bits=256,            # paper uses 2048; small keys for the demo
        exponent_jitter=3,
        blaster_batch_size=100,
    )
    print("Training VF2Boost (real Paillier crypto)...")
    result = FederatedTrainer(config).fit([party_b, party_a], labels)
    for record in result.history:
        print(f"  tree {record.tree_index}: train logloss {record.train_loss:.4f}")

    print("\nReference: plaintext GBDT on co-located data")
    plaintext = GBDTTrainer(params)
    plaintext.fit_binned(full, labels)
    for record in plaintext.history:
        print(f"  tree {record.tree_index}: train logloss {record.train_loss:.4f}")

    gap = max(
        abs(a.train_loss - b.train_loss)
        for a, b in zip(result.history, plaintext.history)
    )
    print(f"\nmax loss gap federated vs co-located: {gap:.2e}  (lossless protocol)")

    owners = result.model.split_counts_by_owner()
    print(f"splits owned by Party B: {owners.get(0, 0)}, Party A: {owners.get(1, 0)}")
    print(f"cross-party traffic: {result.channel.total_bytes():,} bytes")


if __name__ == "__main__":
    main()
