"""Cross-enterprise credit scoring — the paper's motivating scenario.

A bank (Party B) holds repayment labels and account features for its
customers. A social platform (Party A) holds behavioral features for a
partially overlapping user base. The pipeline below is exactly the
production flow of §3/§6.1:

1. **PSI** aligns the two user bases without revealing non-overlapping
   customers to either side;
2. both parties bin their own columns locally;
3. VF²Boost trains over the virtual join with encrypted statistics;
4. the bank's model quality is compared with what it could achieve on
   its own data — the value proposition of vertical FL.

Run:  python examples/cross_enterprise_credit.py
"""

import numpy as np

from repro import FederatedTrainer, GBDTParams, GBDTTrainer, VF2BoostConfig
from repro.data.psi import psi_align
from repro.gbdt.binning import bin_dataset
from repro.gbdt.metrics import auc


def build_enterprises(seed: int = 7):
    """Synthesize two enterprises with overlapping customers."""
    rng = np.random.default_rng(seed)
    overlap = 400
    bank_ids = [f"cust-{k}" for k in range(overlap + 150)]
    platform_ids = [f"cust-{k}" for k in range(overlap)] + [
        f"user-{k}" for k in range(260)
    ]
    rng.shuffle(bank_ids)
    rng.shuffle(platform_ids)

    bank_features = rng.normal(size=(len(bank_ids), 6))      # account data
    platform_features = rng.normal(size=(len(platform_ids), 8))  # behavior

    # Default risk depends on *both* parties' features.
    index_bank = {cid: i for i, cid in enumerate(bank_ids)}
    index_platform = {cid: i for i, cid in enumerate(platform_ids)}
    labels = {}
    for cid in sorted(set(bank_ids) & set(platform_ids)):
        score = (
            1.2 * bank_features[index_bank[cid], 0]
            - 0.8 * bank_features[index_bank[cid], 1]
            + 1.0 * platform_features[index_platform[cid], 0]
            + 0.7 * platform_features[index_platform[cid], 3]
        )
        labels[cid] = float(score + rng.normal(scale=0.4) > 0)
    return bank_ids, bank_features, platform_ids, platform_features, labels


def main() -> None:
    bank_ids, bank_x, platform_ids, platform_x, label_map = build_enterprises()

    print("Step 1 — private set intersection (DH-style, semi-honest)")
    rows_bank, rows_platform = psi_align(bank_ids, platform_ids, seed=11)
    print(f"  bank customers: {len(bank_ids)}, platform users: {len(platform_ids)}")
    print(f"  intersection: {len(rows_bank)} (neither side learns the rest)")

    aligned_bank = bank_x[rows_bank]
    aligned_platform = platform_x[rows_platform]
    labels = np.array([label_map[bank_ids[i]] for i in rows_bank])
    n_train = int(0.8 * len(labels))

    params = GBDTParams(n_trees=10, n_layers=5, n_bins=12)

    print("\nStep 2 — the bank alone")
    bank_only = GBDTTrainer(params)
    bank_only.fit(
        aligned_bank[:n_train], labels[:n_train],
        aligned_bank[n_train:], labels[n_train:],
    )
    print(f"  bank-only validation AUC: {bank_only.history[-1].valid_auc:.3f}")

    print("\nStep 3 — federated training (counted mode for speed)")
    full = bin_dataset(
        np.hstack([aligned_bank[:n_train], aligned_platform[:n_train]]),
        params.n_bins,
    )
    party_bank = full.subset_features(np.arange(0, 6))
    party_platform = full.subset_features(np.arange(6, 14))
    config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
    result = FederatedTrainer(config).fit([party_bank, party_platform], labels[:n_train])

    # Federated prediction needs both parties' validation codes.
    from repro.gbdt.binning import bin_column

    valid_joined = np.hstack([aligned_bank[n_train:], aligned_platform[n_train:]])
    valid_codes = np.empty(valid_joined.shape, dtype=np.uint16)
    for j in range(valid_joined.shape[1]):
        valid_codes[:, j] = bin_column(valid_joined[:, j], full.cut_points[j])
    margins = result.model.predict_margin(
        {0: valid_codes[:, :6], 1: valid_codes[:, 6:]}
    )
    federated_auc = auc(labels[n_train:], margins)
    print(f"  federated validation AUC: {federated_auc:.3f}")

    owners = result.model.split_counts_by_owner()
    print(f"\nsplit ownership — bank: {owners.get(0, 0)}, platform: {owners.get(1, 0)}")
    print(
        f"AUC lift from federation: "
        f"{federated_auc - bank_only.history[-1].valid_auc:+.3f}"
    )
    print("The platform never sees labels; the bank never sees raw behavior.")


if __name__ == "__main__":
    main()
