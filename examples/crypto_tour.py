"""A guided tour of the customized Paillier cryptosystem (§2.2, §5).

Demonstrates, with real arithmetic:

* encryption / decryption and the additive homomorphism;
* the exponent-jitter encoding and the cipher-scaling tax it creates;
* re-ordered accumulation (§5.1) removing that tax;
* polynomial cipher packing (§5.2) collapsing 32 decryptions into one.

Run:  python examples/crypto_tour.py
"""
# This tour *measures* the crypto primitives on the host by design;
# its wall-clock reads never feed simulated time.
# repro: allow-file[DET001]

import random
import time

from repro.crypto import (
    PaillierContext,
    naive_sum,
    pack_capacity,
    pack_ciphers,
    reordered_sum,
    unpack_values,
)


def main() -> None:
    print("== keygen (512-bit demo key; the paper uses 2048) ==")
    context = PaillierContext.create(512, seed=2024, jitter=6)
    print(f"modulus bits: {context.public_key.key_bits}")

    print("\n== homomorphic arithmetic ==")
    a, b = context.encrypt(1.25), context.encrypt(-0.5)
    print(f"dec([[1.25]] (+) [[-0.5]])  = {context.decrypt(a + b)}")
    print(f"dec(3 (x) [[1.25]])         = {context.decrypt(3 * a)}")
    print(f"dec([[1.25]] + 10.0 plain)  = {context.decrypt(a + 10.0)}")

    print("\n== exponent jitter and the scaling tax (Figure 8) ==")
    rng = random.Random(5)
    gradients = [rng.uniform(-1, 1) for _ in range(400)]
    ciphers = [context.encrypt(g) for g in gradients]
    exponents = sorted({c.exponent for c in ciphers})
    print(f"distinct exponents E = {len(exponents)}: {exponents}")

    before = context.stats.snapshot()
    start = time.perf_counter()
    total_naive = naive_sum(context, ciphers)
    naive_time = time.perf_counter() - start
    naive_scalings = context.stats.diff(before).scalings

    before = context.stats.snapshot()
    start = time.perf_counter()
    total_reordered = reordered_sum(context, ciphers)
    reordered_time = time.perf_counter() - start
    reordered_scalings = context.stats.diff(before).scalings

    print(f"naive accumulation:     {naive_scalings:4d} scalings, {naive_time*1e3:7.1f} ms")
    print(f"re-ordered (workspaces): {reordered_scalings:4d} scalings, {reordered_time*1e3:7.1f} ms")
    print(f"identical sums: {abs(context.decrypt(total_naive) - context.decrypt(total_reordered)) < 1e-9}")
    print(f"speedup: {naive_time / reordered_time:.2f}x  (paper Figure 7: 4.08x)")

    print("\n== polynomial histogram packing (Figure 9) ==")
    limb_bits = 32
    width = pack_capacity(context.public_key, limb_bits)
    values = [rng.randrange(1 << 20) for _ in range(width)]
    bins = [context.encrypt(float(v), exponent=0) for v in values]
    packed = pack_ciphers(context, bins, limb_bits)

    start = time.perf_counter()
    for cipher in bins:
        context.decrypt(cipher)
    individual = time.perf_counter() - start
    start = time.perf_counter()
    recovered = unpack_values(context, packed)
    packed_time = time.perf_counter() - start
    print(f"packed {width} bins into one cipher (t = {width} at M = {limb_bits})")
    print(f"round trip exact: {recovered == values}")
    print(f"{width} decryptions: {individual*1e3:6.1f} ms; 1 packed decryption: "
          f"{packed_time*1e3:6.1f} ms -> {individual / packed_time:.1f}x")
    print(f"wire size: {width} ciphers -> 1 cipher ({width}x smaller)")


if __name__ == "__main__":
    main()
