"""Tests for typed messages, channel accounting and privacy guards."""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.crypto.ciphertext import PaillierContext
from repro.fed.channel import PrivacyViolation, RecordingChannel
from repro.fed.messages import (
    CountedCipherPayload,
    EncryptedGradHessBatch,
    InstancePlacement,
    LeafWeightBroadcast,
    Message,
    PackedHistogramMessage,
    SplitAnswer,
    SplitDecision,
    SplitQuery,
    cipher_bytes,
)

CTX = PaillierContext.create(256, seed=21)


class TestMessageSizes:
    def test_cipher_bytes(self):
        assert cipher_bytes(2048) == 512
        assert cipher_bytes(256) == 64

    def test_grad_hess_batch_size(self):
        grads = [CTX.encrypt(0.1) for _ in range(3)]
        hesses = [CTX.encrypt(0.2) for _ in range(3)]
        msg = EncryptedGradHessBatch(0, 1, grads=grads, hesses=hesses)
        assert msg.payload_bytes(256) == 6 * 64 + 8
        assert len(msg) == 3
        assert msg.carries_ciphertext_only

    def test_placement_bitmap_size(self):
        msg = InstancePlacement(0, 1, node_id=3, placement=np.ones(100, dtype=bool))
        assert msg.payload_bytes(256) == 13 + 8  # ceil(100/8) + header

    def test_counted_payload_size(self):
        msg = CountedCipherPayload(1, 0, kind="histograms", n_ciphers=10)
        assert msg.payload_bytes(256) == 10 * 64 + 8
        assert msg.carries_ciphertext_only

    def test_control_messages_small(self):
        assert SplitDecision(0, 1).payload_bytes(2048) < 100
        assert SplitQuery(0, 1).payload_bytes(2048) < 100

    def test_split_answer_size(self):
        msg = SplitAnswer(1, 0, node_id=1, placement=np.zeros(16, dtype=bool))
        assert msg.payload_bytes(256) == 2 + 8

    def test_leaf_broadcast_size(self):
        msg = LeafWeightBroadcast(0, 1, weights={1: 0.5, 2: -0.5})
        assert msg.payload_bytes(256) == 32


class TestChannelQueues:
    def test_fifo_order(self):
        channel = RecordingChannel(256)
        channel.send(SplitQuery(0, 1, node_id=1))
        channel.send(SplitQuery(0, 1, node_id=2))
        assert channel.receive(0, 1).node_id == 1
        assert channel.receive(0, 1).node_id == 2

    def test_empty_receive_raises(self):
        with pytest.raises(LookupError):
            RecordingChannel(256).receive(0, 1)

    def test_receive_all_drains(self):
        channel = RecordingChannel(256)
        for k in range(3):
            channel.send(SplitQuery(0, 1, node_id=k))
        assert len(channel.receive_all(0, 1)) == 3
        assert channel.pending(0, 1) == 0

    def test_directions_independent(self):
        channel = RecordingChannel(256)
        channel.send(SplitQuery(0, 1))
        channel.send(SplitAnswer(1, 0, placement=np.zeros(2, dtype=bool)))
        assert channel.pending(0, 1) == 1
        assert channel.pending(1, 0) == 1


class TestChannelAccounting:
    def test_bytes_accumulate(self):
        channel = RecordingChannel(256)
        channel.send(CountedCipherPayload(0, 1, kind="gh", n_ciphers=4))
        channel.send(CountedCipherPayload(1, 0, kind="hist", n_ciphers=2))
        assert channel.total_bytes() == (4 * 64 + 8) + (2 * 64 + 8)
        assert channel.bytes_toward(1) == 4 * 64 + 8

    def test_by_type_stats(self):
        channel = RecordingChannel(256)
        channel.send(SplitQuery(0, 1))
        channel.send(SplitQuery(0, 1))
        stats = channel.by_type["SplitQuery"]
        assert stats.messages == 2

    def test_per_direction_by_type_breakdown(self):
        channel = RecordingChannel(256)
        channel.send(SplitQuery(0, 1))
        channel.send(SplitQuery(0, 1))
        channel.send(CountedCipherPayload(1, 0, kind="hist", n_ciphers=2))
        forward = channel.stats[(0, 1)]
        assert forward.by_type["SplitQuery"].messages == 2
        assert forward.by_type["SplitQuery"].bytes == forward.bytes
        assert "CountedCipherPayload" not in forward.by_type
        backward = channel.stats[(1, 0)]
        assert backward.by_type["CountedCipherPayload"].bytes == 2 * 64 + 8

    def test_stats_report_structure(self):
        channel = RecordingChannel(256)
        channel.send(SplitQuery(0, 1))
        channel.send(CountedCipherPayload(1, 0, kind="hist", n_ciphers=1))
        report = channel.stats_report()
        assert report["total_messages"] == 2
        assert report["directions"]["0->1"]["by_type"]["SplitQuery"]["messages"] == 1
        assert report["directions"]["1->0"]["bytes"] == 64 + 8

    def test_reset_stats_keeps_queue(self):
        channel = RecordingChannel(256)
        channel.send(SplitQuery(0, 1))
        channel.reset_stats()
        assert channel.total_bytes() == 0
        assert channel.pending(0, 1) == 1


class TestPrivacyGuard:
    def test_label_derived_plaintext_to_passive_rejected(self):
        channel = RecordingChannel(256, active_party=0, strict=True)

        class LeakyBatch(EncryptedGradHessBatch):
            @property
            def carries_ciphertext_only(self):
                return False

        with pytest.raises(PrivacyViolation):
            channel.send(LeakyBatch(0, 1))

    def test_same_message_to_active_party_allowed(self):
        channel = RecordingChannel(256, active_party=0, strict=True)

        class LeakyHist(PackedHistogramMessage):
            @property
            def carries_ciphertext_only(self):
                return False

        # Toward the label holder itself, plaintext is fine.
        channel.send(LeakyHist(1, 0))

    def test_non_strict_mode_allows(self):
        channel = RecordingChannel(256, strict=False)

        class LeakyBatch(EncryptedGradHessBatch):
            @property
            def carries_ciphertext_only(self):
                return False

        channel.send(LeakyBatch(0, 1))  # no exception

    def test_ciphertext_messages_pass(self):
        channel = RecordingChannel(256, strict=True)
        channel.send(
            EncryptedGradHessBatch(
                0, 1, grads=[CTX.encrypt(0.5)], hesses=[CTX.encrypt(0.1)]
            )
        )
        assert channel.pending(0, 1) == 1


@dataclass
class _ResidualDump(Message):
    """A message type the channel has never heard of, carrying floats."""

    residuals: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def payload_bytes(self, key_bits: int) -> int:
        return 8 * int(self.residuals.size)


@dataclass
class _NodeCountReport(Message):
    """Undeclared type carrying only integer metadata."""

    counts: dict = field(default_factory=dict)

    def payload_bytes(self, key_bits: int) -> int:
        return 8 * len(self.counts)


@dataclass
class _NestedLeak(Message):
    """Floats buried inside nested plain containers."""

    payload: dict = field(default_factory=dict)

    def payload_bytes(self, key_bits: int) -> int:
        return 64


class TestDefaultDeny:
    """Unrecognized message types carrying floats are rejected by default."""

    def test_undeclared_float_message_to_passive_rejected(self):
        channel = RecordingChannel(256, active_party=0, strict=True)
        message = _ResidualDump(0, 1, residuals=np.asarray([0.25, -0.5]))
        with pytest.raises(PrivacyViolation, match="undeclared"):
            channel.send(message)

    def test_undeclared_float_message_to_active_allowed(self):
        channel = RecordingChannel(256, active_party=0, strict=True)
        channel.send(_ResidualDump(1, 0, residuals=np.asarray([0.25])))
        assert channel.pending(1, 0) == 1

    def test_undeclared_int_only_message_allowed(self):
        channel = RecordingChannel(256, active_party=0, strict=True)
        channel.send(_NodeCountReport(0, 1, counts={3: 17, 4: 12}))
        assert channel.pending(0, 1) == 1

    def test_floats_found_in_nested_containers(self):
        channel = RecordingChannel(256, active_party=0, strict=True)
        message = _NestedLeak(0, 1, payload={"stats": [(1, 2.5)]})
        with pytest.raises(PrivacyViolation):
            channel.send(message)

    def test_declared_disclosure_still_allowed(self):
        # LeafWeightBroadcast carries floats but is a declared disclosure
        # (the published model); it must keep flowing.
        channel = RecordingChannel(256, active_party=0, strict=True)
        channel.send(LeafWeightBroadcast(0, 1, weights={1: 0.5}))
        assert channel.pending(0, 1) == 1

    def test_non_strict_allows_undeclared(self):
        channel = RecordingChannel(256, active_party=0, strict=False)
        channel.send(_ResidualDump(0, 1, residuals=np.asarray([1.0])))
        assert channel.pending(0, 1) == 1

    def test_empty_float_array_not_flagged(self):
        channel = RecordingChannel(256, active_party=0, strict=True)
        channel.send(_ResidualDump(0, 1, residuals=np.zeros(0)))
        assert channel.pending(0, 1) == 1
