"""Tests for VF2BoostConfig presets and the workload trace schema."""

import pytest

from repro.core.config import VF2BoostConfig
from repro.core.profile import analytic_trace
from repro.core.trace import LayerTrace, NodeTrace, PartyShape, TraceLog, TreeTrace
from repro.gbdt.params import GBDTParams


class TestConfigPresets:
    def test_vf2boost_all_on(self):
        config = VF2BoostConfig.vf2boost()
        assert config.blaster_encryption
        assert config.reordered_accumulation
        assert config.optimistic_split
        assert config.histogram_packing
        assert config.optimization_names == [
            "BlasterEnc", "Re-ordered", "OptimSplit", "HistPack",
        ]

    def test_vf_gbdt_all_off(self):
        config = VF2BoostConfig.vf_gbdt()
        assert config.optimization_names == []
        assert config.crypto_mode == "counted"

    def test_vf_mock(self):
        config = VF2BoostConfig.vf_mock()
        assert config.crypto_mode == "mock"
        assert not config.histogram_packing

    def test_replace(self):
        config = VF2BoostConfig.vf2boost().replace(key_bits=512)
        assert config.key_bits == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            VF2BoostConfig(crypto_mode="plain")
        with pytest.raises(ValueError):
            VF2BoostConfig(key_bits=32)
        with pytest.raises(ValueError):
            VF2BoostConfig(limb_bits=4)
        with pytest.raises(ValueError):
            VF2BoostConfig(exponent_jitter=0)
        with pytest.raises(ValueError):
            VF2BoostConfig(blaster_batch_size=0)
        with pytest.raises(ValueError):
            VF2BoostConfig(n_passive_parties=0)


class TestTraceSchema:
    def _trace(self):
        shape = PartyShape(n_features=4, nnz_per_instance=2.0, n_bins=8)
        trace = TraceLog(100, shape, [shape])
        tree = TreeTrace(tree_index=0, n_instances=100, n_exponents=4)
        layer = LayerTrace(depth=0, nodes=[NodeTrace(0, 100, owner=0)])
        layer2 = LayerTrace(
            depth=1,
            nodes=[
                NodeTrace(1, 60, owner=1, dirty=True),
                NodeTrace(2, 40, owner=0),
            ],
        )
        tree.layers = [layer, layer2]
        trace.trees = [tree]
        return trace

    def test_party_shape_bins(self):
        shape = PartyShape(5, 1.0, 10)
        assert shape.histogram_bins == 100

    def test_layer_aggregates(self):
        trace = self._trace()
        layer2 = trace.trees[0].layers[1]
        assert layer2.n_instances == 100
        assert layer2.n_split_nodes == 2
        assert layer2.n_dirty == 1
        assert layer2.dirty_instances == 60

    def test_split_counts_and_ratios(self):
        trace = self._trace()
        assert trace.trees[0].split_counts_by_owner() == {0: 2, 1: 1}
        assert trace.split_ratio_of_active() == pytest.approx(2 / 3)
        assert trace.dirty_ratio() == pytest.approx(1 / 3)

    def test_n_parties(self):
        assert self._trace().n_parties == 2


class TestAnalyticProfile:
    def test_structure(self):
        trace = analytic_trace(
            1000, 30, [70], density=0.5, n_bins=8, n_layers=4, n_trees=2
        )
        assert len(trace.trees) == 2
        assert len(trace.trees[0].layers) == 3
        assert [len(layer.nodes) for layer in trace.trees[0].layers] == [1, 2, 4]

    def test_split_ratio_matches_expectation(self):
        trace = analytic_trace(
            10_000, 30, [70], density=0.5, n_bins=8, n_layers=8, n_trees=1
        )
        assert trace.split_ratio_of_active() == pytest.approx(0.3, abs=0.05)

    def test_dirty_nodes_are_passive_owned(self):
        trace = analytic_trace(1000, 50, [50], density=1.0, n_bins=8, n_layers=5)
        for tree in trace.trees:
            for layer in tree.layers:
                for node in layer.nodes:
                    assert node.dirty == (node.owner != 0)

    def test_instances_conserved_per_layer(self):
        trace = analytic_trace(1024, 10, [10], density=1.0, n_bins=8, n_layers=6)
        for layer in trace.trees[0].layers:
            assert layer.n_instances == 1024

    def test_explicit_ratio_override(self):
        trace = analytic_trace(
            1000, 10, [10], density=1.0, n_bins=8, n_layers=6,
            active_split_ratio=1.0,
        )
        assert trace.split_ratio_of_active() == 1.0
        assert trace.dirty_ratio() == 0.0

    def test_multi_party_spread(self):
        trace = analytic_trace(
            1000, 25, [25, 25, 25], density=1.0, n_bins=8, n_layers=7
        )
        owners = set()
        for layer in trace.trees[0].layers:
            owners.update(node.owner for node in layer.nodes)
        assert owners.issuperset({0, 1, 2, 3})

    def test_validation(self):
        with pytest.raises(ValueError):
            analytic_trace(10, 5, [5], 1.0, 8, n_layers=1)
        with pytest.raises(ValueError):
            analytic_trace(10, 5, [5], 1.0, 8, 4, active_split_ratio=1.5)
