"""Tests + invariants for the discrete-event scheduling engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fed.simtime import Resource, SimEngine


class TestResource:
    def test_single_lane_serializes(self):
        engine = SimEngine()
        a = engine.submit("r", 2.0, phase="p")
        b = engine.submit("r", 3.0, phase="p")
        assert a.start == 0.0 and a.end == 2.0
        assert b.start == 2.0 and b.end == 5.0

    def test_multi_lane_parallel(self):
        engine = SimEngine()
        engine.add_resource("r", lanes=2)
        a = engine.submit("r", 2.0, phase="p")
        b = engine.submit("r", 2.0, phase="p")
        assert a.start == b.start == 0.0
        assert {a.lane, b.lane} == {0, 1}

    def test_duplicate_registration_rejected(self):
        engine = SimEngine()
        engine.add_resource("r")
        with pytest.raises(ValueError):
            engine.add_resource("r")

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            Resource("x", lanes=0)


class TestDependencies:
    def test_dependency_delays_start(self):
        engine = SimEngine()
        a = engine.submit("r1", 5.0, phase="p")
        b = engine.submit("r2", 1.0, deps=[a], phase="q")
        assert b.start == 5.0

    def test_diamond_dependencies(self):
        engine = SimEngine()
        a = engine.submit("r1", 1.0, phase="p")
        b = engine.submit("r2", 2.0, deps=[a], phase="p")
        c = engine.submit("r3", 3.0, deps=[a], phase="p")
        d = engine.submit("r4", 1.0, deps=[b, c], phase="p")
        assert d.start == 4.0
        assert engine.makespan == 5.0

    def test_not_before(self):
        engine = SimEngine()
        a = engine.submit("r", 1.0, not_before=10.0, phase="p")
        assert a.start == 10.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SimEngine().submit("r", -1.0, phase="p")


class TestPipelining:
    def test_three_stage_pipeline_overlaps(self):
        # 4 batches through stages of 1s each: makespan = 3 + (4-1) = 6.
        engine = SimEngine()
        for b in range(4):
            s1 = engine.submit("stage1", 1.0, phase="a")
            s2 = engine.submit("stage2", 1.0, deps=[s1], phase="b")
            engine.submit("stage3", 1.0, deps=[s2], phase="c")
        assert engine.makespan == pytest.approx(6.0)

    def test_bottleneck_stage_dominates(self):
        engine = SimEngine()
        for b in range(10):
            s1 = engine.submit("s1", 0.1, phase="a")
            s2 = engine.submit("s2", 1.0, deps=[s1], phase="b")
            engine.submit("s3", 0.1, deps=[s2], phase="c")
        assert engine.makespan == pytest.approx(0.1 + 10 * 1.0 + 0.1)

    def test_submit_parallel_saturates(self):
        engine = SimEngine()
        engine.add_resource("pool", lanes=4)
        tasks = engine.submit_parallel("pool", total_work=8.0, chunks=8, phase="w")
        assert max(t.end for t in tasks) == pytest.approx(2.0)

    def test_submit_parallel_rejects_zero_chunks(self):
        with pytest.raises(ValueError):
            SimEngine().submit_parallel("r", 1.0, 0, phase="w")


class TestReporting:
    def test_phase_breakdown(self):
        engine = SimEngine()
        engine.submit("r", 1.0, phase="a")
        engine.submit("r", 2.0, phase="a")
        engine.submit("r", 3.0, phase="b")
        breakdown = engine.phase_breakdown()
        assert breakdown == {"a": 3.0, "b": 3.0}

    def test_utilization(self):
        engine = SimEngine()
        a = engine.submit("r1", 4.0, phase="p")
        engine.submit("r2", 1.0, deps=[a], phase="p")
        assert engine.utilization("r1") == pytest.approx(4.0 / 5.0)
        assert engine.utilization("r2") == pytest.approx(1.0 / 5.0)

    def test_empty_gantt(self):
        assert "empty" in SimEngine().gantt()

    def test_gantt_renders(self):
        engine = SimEngine()
        a = engine.submit("alpha", 1.0, phase="Enc")
        engine.submit("beta", 2.0, deps=[a], phase="Comm")
        chart = engine.gantt(width=40)
        assert "alpha#0" in chart and "beta#0" in chart
        assert "E" in chart and "C" in chart


class TestInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),  # resource id
                st.floats(0.0, 5.0),  # duration
                st.integers(0, 4),  # dependency back-reference
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_no_lane_overlap_and_deps_respected(self, plan):
        engine = SimEngine()
        tasks = []
        for resource_id, duration, back in plan:
            deps = []
            if tasks and back > 0:
                deps = [tasks[max(0, len(tasks) - back)]]
            tasks.append(
                engine.submit(f"r{resource_id}", duration, deps=deps, phase="p")
            )
        # Dependencies respected.
        for (_, _, back), task in zip(plan, tasks):
            pass
        # No two tasks on the same (resource, lane) overlap.
        by_lane: dict = {}
        for task in engine.tasks:
            by_lane.setdefault((task.resource, task.lane), []).append(task)
        for lane_tasks in by_lane.values():
            lane_tasks.sort(key=lambda t: t.start)
            for earlier, later in zip(lane_tasks, lane_tasks[1:]):
                assert later.start >= earlier.end - 1e-12
        # Makespan equals the max end.
        if engine.tasks:
            assert engine.makespan == max(t.end for t in engine.tasks)
