"""Tests for the baseline system registry and cost models."""

import pytest

from repro.baselines.systems import SYSTEMS, get_system, simulate_plaintext_gbdt
from repro.bench.costmodel import CostModel
from repro.core.profile import analytic_trace
from repro.fed.cluster import PAPER_CLUSTER
from repro.gbdt.params import GBDTParams

PARAMS = GBDTParams(n_layers=5, n_bins=20)
TRACE = analytic_trace(500_000, 1000, [1000], 0.1, 20, 5, n_trees=1)


class TestRegistry:
    def test_all_papers_systems_present(self):
        assert set(SYSTEMS) == {
            "xgboost", "xgboost_b", "vf_mock", "vf_gbdt", "vf2boost",
            "secureboost", "fedlearner",
        }

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            get_system("lightgbm")

    def test_non_federated_schedule_rejected(self):
        with pytest.raises(ValueError):
            get_system("xgboost").schedule(TRACE, PARAMS)


class TestOrderings:
    """The paper's headline orderings must hold on any workload."""

    def test_speed_ordering(self):
        seconds = {
            name: get_system(name).seconds_per_tree(TRACE, PARAMS)
            for name in ("xgboost", "vf_mock", "vf_gbdt", "vf2boost", "secureboost")
        }
        # XGBoost < VF-MOCK < VF2Boost < VF-GBDT < SecureBoost.
        assert seconds["xgboost"] < seconds["vf_mock"]
        assert seconds["vf_mock"] < seconds["vf2boost"]
        assert seconds["vf2boost"] < seconds["vf_gbdt"]
        assert seconds["vf_gbdt"] < seconds["secureboost"]

    def test_fedlearner_between(self):
        single = PAPER_CLUSTER.scaled_workers(1)
        fate = get_system("secureboost").seconds_per_tree(TRACE, PARAMS, single)
        fedlearner = get_system("fedlearner").seconds_per_tree(TRACE, PARAMS, single)
        vf_gbdt = get_system("vf_gbdt").seconds_per_tree(TRACE, PARAMS, single)
        assert vf_gbdt < fedlearner < fate

    def test_competitor_multipliers(self):
        # On one machine the modeled competitors slow down by their
        # measured factors (12.11-12.85x and 8.61-9.20x in §6.3).
        single = PAPER_CLUSTER.scaled_workers(1)
        vf_gbdt = get_system("vf_gbdt").seconds_per_tree(TRACE, PARAMS, single)
        fate = get_system("secureboost").seconds_per_tree(TRACE, PARAMS, single)
        assert 8 < fate / vf_gbdt < 14


class TestPlaintextSimulation:
    def test_scales_with_work(self):
        small = simulate_plaintext_gbdt(
            analytic_trace(100_000, 100, [100], 1.0, 20, 5),
            PARAMS, CostModel.paper(), PAPER_CLUSTER,
        )
        large = simulate_plaintext_gbdt(
            analytic_trace(1_000_000, 100, [100], 1.0, 20, 5),
            PARAMS, CostModel.paper(), PAPER_CLUSTER,
        )
        assert large > small * 5


class TestCostModel:
    def test_paper_constants_positive(self):
        cost = CostModel.paper()
        assert cost.t_enc > cost.t_hadd
        assert cost.t_dec > cost.t_hadd
        assert cost.cipher_bytes == 512

    def test_scaled_multiplier(self):
        cost = CostModel.paper().scaled(10)
        assert cost.enc() == pytest.approx(CostModel.paper().enc() * 10)
        assert cost.t_enc == CostModel.paper().t_enc  # raw unchanged

    def test_naive_add_expectation(self):
        cost = CostModel.paper()
        assert cost.naive_add(1) == cost.hadd()
        assert cost.naive_add(6) == pytest.approx(
            cost.hadd() + (5 / 6) * cost.scale()
        )

    def test_fate_slower_than_fedlearner(self):
        assert (
            CostModel.fate_like().compute_multiplier
            > CostModel.fedlearner_like().compute_multiplier
        )

    def test_measured_model_sane(self):
        cost = CostModel.measured(key_bits=256, samples=8)
        assert cost.t_enc > 0
        assert cost.t_dec > 0
        assert cost.t_hadd > 0
        assert cost.t_enc > cost.t_hadd  # exponentiation beats one multiply
        assert cost.cipher_bytes == 64
