"""Golden op-count regression guard (tier-1).

The paper's speedups are counting arguments — blaster encryption,
re-ordered accumulation and histogram packing each change *how many*
Paillier operations and wire bytes a tree costs.  This test retrains
the fixed golden shape with real crypto and compares the exact cost
fingerprint against ``tests/golden/opcounts.json``.  Any drift in an
Enc/Dec/HAdd/Scale/SMul count or a byte total fails tier-1: either the
change is an accidental cost regression, or it is intentional and the
golden file must be regenerated (see ``repro/obs/golden.py``) with the
new numbers justified.
"""

import json
from pathlib import Path

import pytest

from repro.obs.golden import GOLDEN_SHAPE, golden_fingerprints

GOLDEN_PATH = Path(__file__).parent / "golden" / "opcounts.json"


@pytest.fixture(scope="module")
def expected():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def actual():
    return golden_fingerprints()


class TestGoldenOpCounts:
    def test_shape_matches_checked_in_shape(self, expected, actual):
        assert actual["shape"] == expected["shape"] == GOLDEN_SHAPE

    @pytest.mark.parametrize("variant", ["vf2boost", "secureboost"])
    def test_fingerprint_matches(self, expected, actual, variant):
        want = expected["variants"][variant]
        got = actual["variants"][variant]
        assert got == want, (
            f"{variant} cost fingerprint drifted from tests/golden/opcounts.json.\n"
            "If this cost change is intentional, regenerate with\n"
            "  PYTHONPATH=src python -m repro.obs.golden tests/golden/opcounts.json\n"
            "and justify the new counts in the commit message."
        )


class TestGoldenEncodesPaperClaims:
    """The checked-in numbers themselves must tell the paper's story."""

    def test_histogram_packing_halves_decryptions(self, expected):
        variants = expected["variants"]
        dec_base = variants["secureboost"]["ops"]["0"]["decryptions"]
        dec_packed = variants["vf2boost"]["ops"]["0"]["decryptions"]
        assert dec_packed * 2 == dec_base  # pack width t=2 at 256-bit keys

    def test_packing_shrinks_a_to_b_bytes(self, expected):
        variants = expected["variants"]
        base = variants["secureboost"]["bytes_by_direction"]["1->0"]
        packed = variants["vf2boost"]["bytes_by_direction"]["1->0"]
        assert packed < base

    def test_total_wire_bytes_drop(self, expected):
        variants = expected["variants"]
        assert (
            variants["vf2boost"]["bytes_on_wire"]
            < variants["secureboost"]["bytes_on_wire"]
        )
