"""Golden op-count regression guard (tier-1).

The paper's speedups are counting arguments — blaster encryption,
re-ordered accumulation and histogram packing each change *how many*
Paillier operations and wire bytes a tree costs.  This test retrains
the fixed golden shape with real crypto and compares the exact cost
fingerprint against ``tests/golden/opcounts.json``.  Any drift in an
Enc/Dec/HAdd/Scale/SMul count or a byte total fails tier-1: either the
change is an accidental cost regression, or it is intentional and the
golden file must be regenerated (see ``repro/obs/golden.py``) with the
new numbers justified.
"""

import json
from pathlib import Path

import pytest

from repro.obs.golden import GOLDEN_SHAPE, golden_fingerprints

GOLDEN_PATH = Path(__file__).parent / "golden" / "opcounts.json"


@pytest.fixture(scope="module")
def expected():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def actual():
    return golden_fingerprints()


class TestGoldenOpCounts:
    def test_shape_matches_checked_in_shape(self, expected, actual):
        assert actual["shape"] == expected["shape"] == GOLDEN_SHAPE

    @pytest.mark.parametrize("variant", ["vf2boost", "secureboost"])
    def test_fingerprint_matches(self, expected, actual, variant):
        want = expected["variants"][variant]
        got = actual["variants"][variant]
        assert got == want, (
            f"{variant} cost fingerprint drifted from tests/golden/opcounts.json.\n"
            "If this cost change is intentional, regenerate with\n"
            "  PYTHONPATH=src python -m repro.obs.golden tests/golden/opcounts.json\n"
            "and justify the new counts in the commit message."
        )


class TestGoldenEncodesPaperClaims:
    """The checked-in numbers themselves must tell the paper's story."""

    def test_histogram_packing_halves_decryptions(self, expected):
        variants = expected["variants"]
        dec_base = variants["secureboost"]["ops"]["0"]["decryptions"]
        dec_packed = variants["vf2boost"]["ops"]["0"]["decryptions"]
        assert dec_packed * 2 == dec_base  # pack width t=2 at 256-bit keys

    def test_packing_shrinks_a_to_b_bytes(self, expected):
        variants = expected["variants"]
        base = variants["secureboost"]["bytes_by_direction"]["1->0"]
        packed = variants["vf2boost"]["bytes_by_direction"]["1->0"]
        assert packed < base

    def test_total_wire_bytes_drop(self, expected):
        variants = expected["variants"]
        assert (
            variants["vf2boost"]["bytes_on_wire"]
            < variants["secureboost"]["bytes_on_wire"]
        )


class TestDisclosureConformance:
    """Runtime leg of the PB003 static<->runtime conformance loop.

    The static analyzer pins the sanctioned message-type sets in
    ``tests/golden/disclosure_conformance.json``; here the *live*
    golden-fingerprint runs must put exactly the expected types on the
    wire, and nothing outside the declared allow-lists.
    """

    ARTIFACT_PATH = Path(__file__).parent / "golden" / "disclosure_conformance.json"

    @pytest.fixture(scope="class")
    def artifact(self):
        return json.loads(self.ARTIFACT_PATH.read_text())

    def test_artifact_matches_static_extraction(self, artifact):
        from repro.analysis.astutils import PackageIndex
        from repro.analysis.conformance import build_artifact

        import repro

        index = PackageIndex(Path(repro.__file__).parent)
        fresh = build_artifact(index, GOLDEN_PATH)
        assert artifact == fresh, (
            "tests/golden/disclosure_conformance.json is stale; regenerate "
            "with PYTHONPATH=src python -m repro.analysis --emit-conformance"
        )

    @pytest.mark.parametrize("variant", ["vf2boost", "secureboost"])
    def test_observed_wire_types_match_artifact(self, artifact, actual, variant):
        observed = sorted(actual["variants"][variant]["bytes_by_type"])
        assert observed == artifact["expected_wire_types"][variant]

    @pytest.mark.parametrize("variant", ["vf2boost", "secureboost"])
    def test_every_wire_type_is_sanctioned(self, artifact, actual, variant):
        sanctioned = set(artifact["runtime_allowlist"]) | set(
            artifact["label_derived"]
        )
        observed = set(actual["variants"][variant]["bytes_by_type"])
        undeclared = observed - sanctioned
        assert not undeclared, (
            f"{variant} put undeclared message types on the wire: "
            f"{sorted(undeclared)}"
        )
