"""Tests for the tree structure, growth bookkeeping and prediction."""

import numpy as np
import pytest

from repro.gbdt.tree import DecisionTree, TreeNode, partition_instances


class TestTreeNode:
    def test_heap_children(self):
        node = TreeNode(node_id=3, depth=2)
        assert node.left_child == 7
        assert node.right_child == 8


class TestSplitAndLeaves:
    def test_split_creates_children(self):
        tree = DecisionTree()
        left, right = tree.split_node(0, owner=0, feature=2, bin_index=3,
                                      threshold=1.5, gain=0.7)
        assert not tree.root.is_leaf
        assert left.node_id == 1 and right.node_id == 2
        assert left.depth == right.depth == 1
        assert tree.n_leaves == 2
        assert tree.n_internal == 1

    def test_double_split_rejected(self):
        tree = DecisionTree()
        tree.split_node(0, 0, 0, 0, 0.0, 0.1)
        with pytest.raises(ValueError):
            tree.split_node(0, 0, 0, 0, 0.0, 0.1)

    def test_leaf_weight_assignment(self):
        tree = DecisionTree()
        tree.set_leaf_weight(0, 0.5)
        assert tree.root.weight == 0.5

    def test_leaf_weight_on_internal_rejected(self):
        tree = DecisionTree()
        tree.split_node(0, 0, 0, 0, 0.0, 0.1)
        with pytest.raises(ValueError):
            tree.set_leaf_weight(0, 1.0)

    def test_nodes_at_depth(self):
        tree = DecisionTree()
        tree.split_node(0, 0, 0, 0, 0.0, 0.1)
        layer = tree.nodes_at_depth(1)
        assert [n.node_id for n in layer] == [1, 2]


class TestUnsplit:
    def test_rollback_restores_leaf(self):
        tree = DecisionTree()
        tree.split_node(0, owner=1, feature=4, bin_index=2, threshold=0.5, gain=0.3)
        tree.split_node(1, owner=0, feature=1, bin_index=1, threshold=0.1, gain=0.2)
        tree.unsplit_node(0)
        assert tree.root.is_leaf
        assert len(tree.nodes) == 1
        assert tree.root.feature == -1

    def test_rollback_on_leaf_is_noop(self):
        tree = DecisionTree()
        tree.unsplit_node(0)
        assert tree.root.is_leaf


class TestPrediction:
    def _stump(self):
        tree = DecisionTree()
        tree.split_node(0, owner=0, feature=0, bin_index=2, threshold=0.0, gain=1.0)
        tree.set_leaf_weight(1, -1.0)
        tree.set_leaf_weight(2, 1.0)
        return tree

    def test_predict_codes(self):
        tree = self._stump()
        codes = np.array([[0], [2], [3], [5]], dtype=np.uint16)
        assert tree.predict_codes(codes).tolist() == [-1.0, -1.0, 1.0, 1.0]

    def test_predict_federated_routes_by_owner(self):
        tree = DecisionTree()
        tree.split_node(0, owner=1, feature=0, bin_index=1, threshold=0.0, gain=1.0)
        tree.set_leaf_weight(1, 10.0)
        tree.set_leaf_weight(2, 20.0)
        codes_a = np.array([[0], [3]], dtype=np.uint16)  # owner 1's feature
        codes_b = np.array([[9], [9]], dtype=np.uint16)  # irrelevant
        out = tree.predict_federated({0: codes_b, 1: codes_a})
        assert out.tolist() == [10.0, 20.0]

    def test_two_level_federated(self):
        tree = DecisionTree()
        tree.split_node(0, owner=0, feature=0, bin_index=0, threshold=0.0, gain=1.0)
        tree.split_node(2, owner=1, feature=0, bin_index=0, threshold=0.0, gain=0.5)
        tree.set_leaf_weight(1, 1.0)
        tree.set_leaf_weight(5, 2.0)
        tree.set_leaf_weight(6, 3.0)
        codes_b = np.array([[0], [1], [1]], dtype=np.uint16)
        codes_a = np.array([[0], [0], [1]], dtype=np.uint16)
        out = tree.predict_federated({0: codes_b, 1: codes_a})
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_max_depth(self):
        tree = self._stump()
        assert tree.max_depth() == 1


class TestPartitionInstances:
    def test_partition(self):
        column = np.array([0, 1, 2, 3, 4], dtype=np.uint16)
        rows = np.array([0, 2, 4])
        left, right = partition_instances(column, rows, bin_index=2)
        assert left.tolist() == [0, 2]
        assert right.tolist() == [4]

    def test_partition_preserves_all(self):
        column = np.random.default_rng(0).integers(0, 8, size=50).astype(np.uint16)
        rows = np.arange(50)
        left, right = partition_instances(column, rows, 3)
        assert sorted(left.tolist() + right.tolist()) == rows.tolist()

    def test_empty_rows(self):
        left, right = partition_instances(
            np.zeros(5, dtype=np.uint16), np.array([], dtype=np.int64), 2
        )
        assert left.size == 0 and right.size == 0
