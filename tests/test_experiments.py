"""Smoke + shape tests for the experiment harness (tables & figures)."""

import pytest

from repro.bench.experiments import (
    counted_run,
    run_fig7,
    run_resource_utilization,
    run_table1,
    run_table2,
    run_table3,
    run_table5,
)
from repro.bench.report import format_bytes, format_ratio, format_seconds, format_table
from repro.gbdt.params import GBDTParams

FAST_PARAMS = GBDTParams(n_trees=2, n_layers=4, n_bins=8)


class TestTable1:
    rows, rendered = run_table1(instance_counts=(100_000, 200_000))

    def test_every_variant_speeds_up(self):
        for row in self.rows:
            base = row["baseline"]
            assert row["+BlasterEnc"] < base
            assert row["+Re-ordered"] < base
            assert row["+Both"] < row["+BlasterEnc"]
            assert row["+Both"] < row["+Re-ordered"]

    def test_breakdown_sums(self):
        for row in self.rows:
            assert row["baseline"] == pytest.approx(
                row["enc"] + row["comm"] + row["hadd"]
            )

    def test_scales_with_instances(self):
        assert self.rows[1]["baseline"] > self.rows[0]["baseline"] * 1.8

    def test_render(self):
        assert "Table 1" in self.rendered
        assert "+BlasterEnc" in self.rendered


class TestTable2:
    rows, rendered = run_table2(
        feature_splits=((4000, 1000), (1000, 4000)), n_instances=1_000_000
    )

    def test_both_always_fastest(self):
        for row in self.rows:
            assert row["+Both"] <= row["baseline"]
            assert row["+OptimSplit"] < row["baseline"]
            assert row["+HistPack"] < row["baseline"]

    def test_more_b_features_cheaper(self):
        assert self.rows[1]["baseline"] < self.rows[0]["baseline"]

    def test_render(self):
        assert "Table 2" in self.rendered


class TestTable3:
    def test_lists_all_datasets(self):
        rendered = run_table3()
        for name in ("census", "a9a", "susy", "epsilon", "rcv1", "synthesis", "industry"):
            assert name in rendered


class TestFig7:
    def test_measured_gains(self):
        rendered = run_fig7(key_bits=256, samples=24)
        assert "Figure 7" in rendered
        assert "re-ordered HAdd gain" in rendered


class TestTable5:
    def test_speedups_monotone(self):
        results, rendered = run_table5(
            dataset_names=("susy",), worker_counts=(4, 8, 16)
        )
        times = results["susy"]
        assert times[4] > times[8] > times[16]
        assert "Table 5" in rendered


class TestResourceUtilization:
    def test_directions(self):
        result, rendered = run_resource_utilization(
            params=GBDTParams(n_trees=1, n_layers=5, n_bins=20)
        )
        assert result["vf2boost_cpu_percent"] > result["baseline_cpu_percent"]
        assert (
            result["vf2boost_bytes_per_tree"] < result["baseline_bytes_per_tree"]
        )
        assert "§6.2" in rendered


class TestCountedRun:
    def test_small_dataset(self):
        run = counted_run("census", FAST_PARAMS, scale=0.03)
        assert len(run.losses) == FAST_PARAMS.n_trees
        assert run.losses[-1] < run.losses[0]
        assert run.valid_auc is not None

    def test_multi_party(self):
        run = counted_run("census", FAST_PARAMS, scale=0.03, n_passive=2)
        assert run.result.trace.n_parties == 3


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [("x", "1"), ("yy", "22")], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_format_seconds(self):
        assert format_seconds(123.4) == "123"
        assert format_seconds(3.21) == "3.2"
        assert format_seconds(0.005) == "0.005"

    def test_format_ratio(self):
        assert format_ratio(2.345) == "2.35x"

    def test_format_bytes(self):
        assert format_bytes(1024) == "1.0KB"
        assert format_bytes(3.3 * 1024**3) == "3.3GB"
