"""Tests for encrypted-number arithmetic and operation counting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ciphertext import PaillierContext

floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestEncryptDecrypt:
    @given(floats)
    @settings(max_examples=40)
    def test_round_trip(self, value):
        ctx = _ctx()
        assert ctx.decrypt(ctx.encrypt(value)) == pytest.approx(value, abs=1e-6)

    def test_public_context_cannot_decrypt(self, context):
        public = context.public_context()
        cipher = public.encrypt(1.5)
        with pytest.raises(PermissionError):
            public.decrypt(cipher)
        # The private context can decrypt ciphers made under the public one.
        assert context.decrypt(cipher) == pytest.approx(1.5)

    def test_can_decrypt_flag(self, context):
        assert context.can_decrypt
        assert not context.public_context().can_decrypt

    def test_encrypt_zero(self, context):
        zero = context.encrypt_zero(exponent=8)
        assert context.decrypt(zero) == 0.0

    def test_stats_count_encryptions(self, context):
        before = context.stats.snapshot()
        context.encrypt(1.0)
        context.encrypt(2.0)
        assert context.stats.diff(before).encryptions == 2


class TestArithmetic:
    @given(floats, floats)
    @settings(max_examples=30)
    def test_homomorphic_addition(self, u, v):
        ctx = _ctx()
        total = ctx.add(ctx.encrypt(u), ctx.encrypt(v))
        assert ctx.decrypt(total) == pytest.approx(u + v, abs=1e-5)

    @given(floats, st.integers(min_value=-100, max_value=100))
    @settings(max_examples=30)
    def test_integer_scalar_multiplication(self, v, k):
        ctx = _ctx()
        product = ctx.multiply(ctx.encrypt(v), k)
        assert ctx.decrypt(product) == pytest.approx(v * k, abs=1e-3)

    def test_float_scalar_multiplication(self, context):
        product = context.multiply(context.encrypt(3.0), 0.25)
        assert context.decrypt(product) == pytest.approx(0.75)

    def test_operator_overloads(self, context):
        a, b = context.encrypt(2.0), context.encrypt(5.0)
        assert context.decrypt(a + b) == pytest.approx(7.0)
        assert context.decrypt(a + 1.5) == pytest.approx(3.5)
        assert context.decrypt(3 * a) == pytest.approx(6.0)
        assert context.decrypt(b - a) == pytest.approx(3.0)
        assert context.decrypt(b - 1.0) == pytest.approx(4.0)

    def test_add_plain(self, context):
        shifted = context.add_plain(context.encrypt(-2.0), 10.0)
        assert context.decrypt(shifted) == pytest.approx(8.0)

    def test_sum_ciphers(self, context):
        values = [0.5, -1.25, 3.0, 0.0]
        total = context.sum_ciphers(context.encrypt(v) for v in values)
        assert context.decrypt(total) == pytest.approx(sum(values))

    def test_sum_empty_raises(self, context):
        with pytest.raises(ValueError):
            context.sum_ciphers([])


class TestExponentAlignment:
    def test_mismatched_exponents_align(self, context):
        a = context.encrypt(1.5, exponent=6)
        b = context.encrypt(2.5, exponent=9)
        total = context.add(a, b)
        assert total.exponent == 9
        assert context.decrypt(total) == pytest.approx(4.0)

    def test_alignment_counts_scaling(self, context):
        a = context.encrypt(1.0, exponent=6)
        b = context.encrypt(1.0, exponent=9)
        before = context.stats.snapshot()
        context.add(a, b)
        diff = context.stats.diff(before)
        assert diff.scalings == 1
        assert diff.additions == 1

    def test_same_exponent_no_scaling(self, context):
        a = context.encrypt(1.0, exponent=8)
        b = context.encrypt(2.0, exponent=8)
        before = context.stats.snapshot()
        context.add(a, b)
        assert context.stats.diff(before).scalings == 0

    def test_scale_to_lower_precision_rejected(self, context):
        a = context.encrypt(1.0, exponent=8)
        with pytest.raises(ValueError):
            context.scale_to(a, 5)

    def test_scale_to_same_exponent_is_noop(self, context):
        a = context.encrypt(1.0, exponent=8)
        before = context.stats.snapshot()
        assert context.scale_to(a, 8) is a
        assert context.stats.diff(before).scalings == 0


class TestOpStats:
    def test_reset(self, context):
        context.encrypt(1.0)
        context.stats.reset()
        assert context.stats.encryptions == 0

    def test_diff_tracks_all_fields(self, context):
        before = context.stats.snapshot()
        a = context.encrypt(1.0, exponent=6)
        b = context.encrypt(1.0, exponent=8)
        c = context.add(a, b)
        context.multiply(c, 3)
        context.add_plain(c, 1.0)
        context.decrypt(c)
        diff = context.stats.diff(before)
        assert diff.encryptions == 2
        assert diff.additions == 1
        assert diff.scalings >= 1
        assert diff.scalar_multiplications == 1
        assert diff.plain_additions == 1
        assert diff.decryptions == 1

    def test_size_bits(self, context):
        cipher = context.encrypt(1.0)
        assert cipher.size_bits() == 2 * context.public_key.key_bits


def _ctx() -> PaillierContext:
    # Module-level cache so hypothesis examples share one keypair.
    global _CACHED
    try:
        return _CACHED
    except NameError:
        _CACHED = PaillierContext.create(256, seed=77, jitter=1)
        return _CACHED
