"""Tests for the deterministic alert engine (repro.obs.alerts):
threshold boundaries, exact sliding-window rate semantics (an alert
opened by a burst closes precisely one window after the burst ends),
burn-rate and band rules, open/close event emission, episode
determinism across reruns, and incident-on-open snapshots."""

import pytest

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    band_rule,
    burn_rate_rule,
    rate_rule,
    threshold_rule,
)
from repro.obs.events import EventLog
from repro.obs.incident import IncidentBundle, IncidentStore
from repro.obs.metrics import MetricsRegistry


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            AlertRule(name="x", kind="nope", metric="m")

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            AlertRule(name="x", kind="threshold", metric="m", op=">")

    def test_rate_needs_window(self):
        with pytest.raises(ValueError, match="window"):
            rate_rule("x", "m", window=0.0, limit=1.0)

    def test_band_low_le_high(self):
        with pytest.raises(ValueError, match="band"):
            band_rule("x", "m", 2.0, 1.0)

    def test_duplicate_names_rejected(self):
        rules = [threshold_rule("x", "m", 1.0), threshold_rule("x", "n", 1.0)]
        with pytest.raises(ValueError, match="unique"):
            AlertEngine(MetricsRegistry(), rules)

    def test_rule_dict_round_trip(self):
        rule = rate_rule("drops", "fed.faults.drops", window=5.0, limit=3.0)
        assert AlertRule.from_dict(rule.to_dict()) == rule


class TestThreshold:
    def test_opens_exactly_at_boundary(self):
        registry = MetricsRegistry()
        engine = AlertEngine(registry, [threshold_rule("hot", "g", 5.0)])
        registry.set_gauge("g", 4.999)
        assert engine.evaluate(0.0) == []
        registry.set_gauge("g", 5.0)
        (opened,) = engine.evaluate(1.0)
        assert opened["opened"] == 1.0
        assert opened["value"] == 5.0
        registry.set_gauge("g", 4.0)
        (closed,) = engine.evaluate(2.0)
        assert closed["closed"] == 2.0
        assert closed is opened  # one episode, mutated in place

    def test_counter_fallback(self):
        registry = MetricsRegistry()
        engine = AlertEngine(registry, [threshold_rule("c", "hits", 3.0)])
        registry.inc("hits", 2)
        assert engine.evaluate(0.0) == []
        registry.inc("hits", 1)
        assert len(engine.evaluate(1.0)) == 1

    def test_le_direction(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 10.0)
        engine = AlertEngine(
            registry, [threshold_rule("low", "g", 2.0, op="<=")]
        )
        assert engine.evaluate(0.0) == []
        registry.set_gauge("g", 2.0)
        assert len(engine.evaluate(1.0)) == 1


class TestRateWindow:
    def _engine(self):
        registry = MetricsRegistry()
        engine = AlertEngine(
            registry, [rate_rule("burst", "drops", window=10.0, limit=2.0)]
        )
        return registry, engine

    def test_opens_on_burst_closes_one_window_after(self):
        registry, engine = self._engine()
        assert engine.evaluate(0.0) == []
        registry.inc("drops", 3)
        (opened,) = engine.evaluate(1.0)
        assert opened["opened"] == 1.0
        assert opened["value"] == 3.0
        # Still open anywhere strictly inside increment + window.
        assert engine.evaluate(5.0) == []
        assert engine.evaluate(10.9) == []
        assert engine.open_alerts()
        # Exactly at increment time + window the burst ages out.
        (closed,) = engine.evaluate(11.0)
        assert closed["closed"] == 11.0
        assert engine.open_alerts() == []

    def test_slow_growth_never_fires(self):
        registry, engine = self._engine()
        for step in range(8):
            registry.inc("drops", 1)
            assert engine.evaluate(float(step) * 10.0) == []

    def test_reopens_on_second_burst(self):
        registry, engine = self._engine()
        engine.evaluate(0.0)  # baseline sample before the first burst
        registry.inc("drops", 3)
        (opened,) = engine.evaluate(1.0)
        assert opened["opened"] == 1.0
        (closed,) = engine.evaluate(11.0)
        assert closed["closed"] == 11.0
        registry.inc("drops", 3)
        (reopened,) = engine.evaluate(12.0)
        assert reopened["opened"] == 12.0
        assert len(engine.episodes) == 2


class TestBurnRateAndBand:
    def test_burn_rate_tracks_gauge(self):
        registry = MetricsRegistry()
        engine = AlertEngine(registry, [burn_rate_rule("burn", 1.0)])
        registry.set_gauge("serve.slo.burn_rate", 2.0)
        assert len(engine.evaluate(0.0)) == 1
        registry.set_gauge("serve.slo.burn_rate", 0.5)
        assert len(engine.evaluate(1.0)) == 1
        assert engine.open_alerts() == []

    def test_band_fires_outside_closed_interval(self):
        registry = MetricsRegistry()
        engine = AlertEngine(registry, [band_rule("p99", "g", 1.0, 2.0)])
        for inside in (1.0, 1.5, 2.0):
            registry.set_gauge("g", inside)
            assert engine.evaluate(0.0) == []
        registry.set_gauge("g", 2.1)
        (opened,) = engine.evaluate(1.0)
        assert opened["value"] == 2.1
        registry.set_gauge("g", 0.9)
        assert engine.evaluate(2.0) == []  # still outside: stays open
        registry.set_gauge("g", 1.5)
        assert len(engine.evaluate(3.0)) == 1


class TestEventsAndInstants:
    def test_open_close_emitted_with_labels(self):
        registry = MetricsRegistry()
        log = EventLog()
        engine = AlertEngine(
            registry,
            [burn_rate_rule("burn", 1.0)],
            event_log=log,
            labels={"scenario": "bench"},
        )
        registry.set_gauge("serve.slo.burn_rate", 2.0)
        engine.evaluate(3.0)
        registry.set_gauge("serve.slo.burn_rate", 0.0)
        engine.evaluate(4.0)
        records = log.filter(subsystem="obs.alerts")
        assert [r.kind for r in records] == ["alert_open", "alert_close"]
        assert all(r.labels["rule"] == "burn" for r in records)
        assert all(r.labels["scenario"] == "bench" for r in records)
        assert records[0].time == 3.0
        assert records[1].time == 4.0

    def test_instant_events_for_trace_overlay(self):
        registry = MetricsRegistry()
        engine = AlertEngine(registry, [burn_rate_rule("burn", 1.0)])
        registry.set_gauge("serve.slo.burn_rate", 2.0)
        engine.evaluate(3.0)
        registry.set_gauge("serve.slo.burn_rate", 0.0)
        engine.evaluate(4.0)
        instants = engine.instant_events()
        assert [i["name"] for i in instants] == [
            "alert_open:burn",
            "alert_close:burn",
        ]
        assert instants[0]["time"] == 3.0
        assert instants[0]["args"]["metric"] == "serve.slo.burn_rate"

    def test_summary_shape(self):
        registry = MetricsRegistry()
        engine = AlertEngine(registry, [burn_rate_rule("burn", 1.0)])
        registry.set_gauge("serve.slo.burn_rate", 2.0)
        engine.evaluate(0.0)
        summary = engine.summary()
        assert summary["evaluations"] == 1
        assert len(summary["episodes"]) == 1
        assert len(summary["open"]) == 1
        assert summary["rules"][0]["name"] == "burn"


class TestDeterminism:
    def _episode(self):
        registry = MetricsRegistry()
        log = EventLog()
        engine = AlertEngine(
            registry,
            [
                burn_rate_rule("burn", 1.0),
                rate_rule("drops", "fed.faults.drops", window=4.0, limit=1.0),
            ],
            event_log=log,
            labels={"scenario": "det"},
        )
        registry.set_gauge("serve.slo.burn_rate", 2.0)
        registry.inc("fed.faults.drops", 2)
        engine.evaluate(1.0)
        registry.set_gauge("serve.slo.burn_rate", 0.0)
        engine.evaluate(3.0)
        engine.evaluate(5.0)
        return engine, log

    def test_identical_episodes_and_bytes_across_reruns(self):
        engine_a, log_a = self._episode()
        engine_b, log_b = self._episode()
        assert engine_a.summary() == engine_b.summary()
        assert log_a.lines() == log_b.lines()


class TestIncidentOnOpen:
    def test_open_snapshots_bundle(self, tmp_path):
        registry = MetricsRegistry()
        log = EventLog()
        store = IncidentStore(str(tmp_path))
        engine = AlertEngine(
            registry,
            [burn_rate_rule("burn", 1.0, incident=True)],
            event_log=log,
            incident_store=store,
            incident_context={"scenario": "degraded"},
        )
        registry.set_gauge("serve.slo.burn_rate", 3.0)
        engine.evaluate(2.0)
        assert len(engine.incidents) == 1
        bundle = IncidentBundle.load(engine.incidents[0])
        assert bundle.kind == "slo_burn"
        assert bundle.label == "burn"
        assert bundle.time == 2.0
        assert bundle.context["scenario"] == "degraded"
        assert bundle.context["rule"]["name"] == "burn"
        assert bundle.open_alerts[0]["rule"] == "burn"
        # Re-firing without closing does not snapshot again.
        engine.evaluate(3.0)
        assert len(engine.incidents) == 1
