"""Tests for the unified flight-recorder event log (repro.obs.events):
wire format and legacy aliases, reserved-key validation, exact ring
eviction, byte-identical JSONL across reruns (including a faulty
training run), and JSONL round-tripping."""

import json

import pytest

from repro.cli import _synthetic_parties
from repro.core.config import VF2BoostConfig
from repro.core.trainer import FederatedTrainer
from repro.fed.faults import FaultPlan
from repro.fed.retry import RetryPolicy
from repro.gbdt.params import GBDTParams
from repro.obs.events import (
    Event,
    EventLog,
    event_from_wire,
    read_events_jsonl,
)


class TestEventSchema:
    def test_wire_form_is_flat_with_legacy_alias(self):
        event = Event(
            time=1.5,
            subsystem="serve.slo",
            kind="rejected",
            labels={"scenario": "batched"},
            payload={"request_id": 7},
        )
        assert event.to_dict() == {
            "event": "rejected",
            "kind": "rejected",
            "subsystem": "serve.slo",
            "time": 1.5,
            "scenario": "batched",
            "request_id": 7,
        }

    def test_legacy_dict_drops_schema_keys(self):
        event = Event(
            time=1.0,
            subsystem="serve.slo",
            kind="rejected",
            payload={"request_id": 7},
        )
        assert event.legacy_dict() == {
            "event": "rejected",
            "time": 1.0,
            "request_id": 7,
        }

    def test_line_is_sorted_key_json(self):
        event = Event(time=0.0, subsystem="s", kind="k", payload={"b": 1, "a": 2})
        record = json.loads(event.line())
        assert list(record) == sorted(record)

    @pytest.mark.parametrize("reserved", ["event", "kind", "subsystem", "time"])
    def test_reserved_keys_rejected(self, reserved):
        with pytest.raises(ValueError, match="reserved"):
            Event(time=0.0, subsystem="s", kind="k", payload={reserved: 1})
        with pytest.raises(ValueError, match="reserved"):
            Event(time=0.0, subsystem="s", kind="k", labels={reserved: 1})

    def test_label_payload_overlap_rejected(self):
        with pytest.raises(ValueError, match="both"):
            Event(
                time=0.0,
                subsystem="s",
                kind="k",
                labels={"party": 1},
                payload={"party": 2},
            )

    def test_event_from_wire_round_trip(self):
        event = Event(
            time=2.0,
            subsystem="fed.reliable",
            kind="drop",
            labels={"sender": 1},
            payload={"seq": 4},
        )
        back = event_from_wire(event.to_dict())
        assert back.to_dict() == event.to_dict()
        assert back.kind == "drop"
        assert back.subsystem == "fed.reliable"


class TestEventLog:
    def test_seq_follows_append_order(self):
        log = EventLog()
        for i in range(5):
            event = log.emit(float(i), "s", "k", index=i)
            assert event.seq == i
        assert log.total == 5
        assert [e.seq for e in log.events()] == [0, 1, 2, 3, 4]

    def test_ring_eviction_is_exact(self):
        log = EventLog(capacity=4)
        for i in range(6):
            log.emit(float(i), "s", "k", index=i)
        assert len(log) == 4
        assert log.evicted == 2
        assert log.total == 6
        assert [e.seq for e in log.events()] == [2, 3, 4, 5]
        assert [e.payload["index"] for e in log.events()] == [2, 3, 4, 5]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_tail_and_filter(self):
        log = EventLog()
        log.emit(0.0, "a", "x")
        log.emit(1.0, "a", "y")
        log.emit(2.0, "b", "x")
        assert [e.time for e in log.tail(2)] == [1.0, 2.0]
        assert log.tail(0) == []
        assert [e.kind for e in log.filter(subsystem="a")] == ["x", "y"]
        assert [e.subsystem for e in log.filter(kind="x")] == ["a", "b"]
        assert len(log.filter(subsystem="a", kind="x")) == 1

    def test_summary_counts(self):
        log = EventLog(capacity=8)
        log.emit(0.0, "a", "x")
        log.emit(1.0, "a", "y")
        log.emit(2.0, "b", "x")
        summary = log.summary()
        assert summary["size"] == 3
        assert summary["total"] == 3
        assert summary["evicted"] == 0
        assert summary["by_subsystem"] == {"a": 2, "b": 1}
        assert summary["by_kind"] == {"a/x": 1, "a/y": 1, "b/x": 1}

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit(0.5, "serve.slo", "timeout", labels={"scenario": "s"}, rid=1)
        log.emit(1.5, "trainer", "tree_end", tree=0, train_loss=0.25)
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(str(path)) == 2
        back = read_events_jsonl(str(path))
        assert [e.to_dict() for e in back] == log.to_dicts()

    def test_write_jsonl_append_mode(self, tmp_path):
        log = EventLog()
        log.emit(0.0, "s", "k")
        path = tmp_path / "events.jsonl"
        log.write_jsonl(str(path))
        log.write_jsonl(str(path), append=True)
        assert len(path.read_text().splitlines()) == 2


def _faulty_train(tmp_path, tag):
    parties, labels = _synthetic_parties(120, 6, 8, seed=3)
    config = VF2BoostConfig.vf2boost(
        params=GBDTParams(n_trees=2, n_layers=3, n_bins=8),
        crypto_mode="counted",
    )
    trainer = FederatedTrainer(config)
    result = trainer.fit_resilient(
        parties,
        labels,
        fault_plan=FaultPlan(seed=7, drop_rate=0.1, crash_after_trees=(0,)),
        retry_policy=RetryPolicy(max_retries=8),
        checkpoint_dir=str(tmp_path / f"ckpts-{tag}"),
    )
    return result, trainer


class TestByteDeterminism:
    def test_identical_logs_serialize_byte_identically(self):
        def build():
            log = EventLog()
            log.emit(0.0, "serve.slo", "timeout", labels={"scenario": "s"}, rid=3)
            log.emit(1.0, "serve.fleet", "shed", replica=1, burn_rate=2.5)
            return log

        assert build().lines() == build().lines()
        assert "\n".join(build().lines()) == "\n".join(build().lines())

    def test_faulty_training_rerun_is_byte_identical(self, tmp_path):
        result_a, trainer_a = _faulty_train(tmp_path, "a")
        result_b, trainer_b = _faulty_train(tmp_path, "b")
        lines_a = trainer_a.events.lines()
        lines_b = trainer_b.events.lines()
        assert lines_a == lines_b
        assert lines_a  # the run actually recorded events
        # The TrainResult carries the same wire dicts.
        assert result_a.events == result_b.events
        kinds = {e["kind"] for e in result_a.events}
        assert "crash" in kinds
        assert "checkpoint_resumed" in kinds
        assert "tree_end" in kinds
