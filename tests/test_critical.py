"""Tier-1 tests for critical-path forensics (:mod:`repro.obs.critical`).

The headline invariant — path segment durations telescope bit-exactly
to the schedule makespan — is checked on hand-built engines, on the
golden 48x6 two-tree scenario, and under fault injection.
"""

import pytest

from repro.bench.costmodel import CostModel
from repro.core.config import VF2BoostConfig
from repro.core.profile import analytic_trace
from repro.core.protocol import ProtocolScheduler
from repro.fed.cluster import PAPER_CLUSTER
from repro.fed.faults import FaultPlan, FaultyEngine, LaneSlowdown, PauseWindow
from repro.fed.simtime import SimEngine
from repro.gbdt.params import GBDTParams
from repro.obs.critical import (
    CriticalPath,
    WAIT,
    compute_slack,
    critical_gantt,
    critical_path,
    critical_path_section,
    op_of,
    tasks_from_graph,
)


def golden_schedule():
    params = GBDTParams(n_trees=2, learning_rate=0.1, n_layers=3, n_bins=4)
    trace = analytic_trace(
        48, 3, [3], density=1.0,
        n_bins=params.n_bins, n_layers=params.n_layers, n_trees=params.n_trees,
    )
    scheduler = ProtocolScheduler(
        VF2BoostConfig.vf2boost(params=params), CostModel.paper(), PAPER_CLUSTER
    )
    return scheduler.schedule(trace, collect_tasks=True)


@pytest.fixture(scope="module")
def golden():
    return golden_schedule()


class TestCriticalPathBasics:
    def test_chain_path_is_whole_chain(self):
        engine = SimEngine()
        a = engine.submit("r", 2.0, phase="p", name="a")
        b = engine.submit("r", 3.0, deps=[a], phase="p", name="b")
        path = critical_path(engine.tasks)
        assert path.total == engine.makespan
        assert path.task_ids == {a.task_id, b.task_id}
        assert path.wait_seconds == 0.0
        path.self_check()

    def test_diamond_picks_long_arm(self):
        engine = SimEngine()
        a = engine.submit("r1", 1.0, phase="p", name="a")
        short = engine.submit("r2", 1.0, deps=[a], phase="p", name="short")
        long = engine.submit("r3", 3.0, deps=[a], phase="p", name="long")
        d = engine.submit("r4", 1.0, deps=[short, long], phase="p", name="d")
        path = critical_path(engine.tasks)
        assert path.task_ids == {a.task_id, long.task_id, d.task_id}
        assert path.total == engine.makespan

    def test_lane_fifo_predecessor_on_path(self):
        # Two tasks on the same single-lane resource: the second waits
        # for the lane, not for a dep — the lane edge must be walked.
        engine = SimEngine()
        a = engine.submit("r", 2.0, phase="p", name="a")
        b = engine.submit("r", 2.0, phase="p", name="b")
        path = critical_path(engine.tasks)
        assert path.task_ids == {a.task_id, b.task_id}
        assert path.total == engine.makespan

    def test_not_before_gap_becomes_wait_segment(self):
        engine = SimEngine()
        engine.submit("r", 1.0, not_before=5.0, phase="p", name="late")
        path = critical_path(engine.tasks)
        kinds = [seg.kind for seg in path.segments]
        assert kinds == ["wait", "task"]
        assert path.wait_seconds == 5.0
        assert path.total == engine.makespan
        path.self_check()

    def test_empty_graph(self):
        path = critical_path([])
        assert isinstance(path, CriticalPath)
        assert path.segments == [] and path.total == 0.0

    def test_op_of(self):
        assert op_of("enc[0:16]") == "enc"
        assert op_of("hist7") == "hist"
        assert op_of("") == "(anon)"


class TestGoldenInvariant:
    def test_per_tree_paths_bit_exact(self, golden):
        assert golden.task_graphs, "collect_tasks=True must retain graphs"
        for tasks, tree_makespan in zip(golden.task_graphs, golden.per_tree):
            path = critical_path(tasks)
            assert path.total == tree_makespan  # bit-exact, not approx
            path.self_check()

    def test_section_total_matches_run_makespan(self, golden):
        section = golden.critical_path_section()
        assert section["total"] == golden.makespan
        assert section["makespan"] == golden.makespan
        assert len(section["trees"]) == len(golden.task_graphs)

    def test_on_path_tasks_have_zero_slack(self, golden):
        for tasks in golden.task_graphs:
            path = critical_path(tasks)
            slack = compute_slack(tasks)
            for task_id in path.task_ids:
                assert slack[task_id] == 0.0

    def test_attribution_sums_to_total(self, golden):
        section = golden.critical_path_section()
        attributed = sum(row["seconds"] for row in section["attribution"])
        assert attributed == pytest.approx(section["total"])
        shares = [row["share"] for row in section["attribution"]]
        assert shares == sorted(shares, reverse=True) or len(set(shares)) < len(shares)

    def test_section_deterministic(self, golden):
        again = golden_schedule().critical_path_section()
        assert again == golden.critical_path_section()

    def test_run_report_carries_section(self, golden):
        report = golden.run_report()
        assert report.critical_path
        assert report.critical_path["total"] == golden.makespan


class TestFaultInjectedPath:
    def plan(self):
        return FaultPlan(
            slowdowns=(LaneSlowdown("A1", 2.0),),
            pauses=(PauseWindow(party=0, start=1.0, end=1.5),),
        )

    def faulty_engine(self):
        engine = FaultyEngine(self.plan())
        engine.add_resource("A1", lanes=2)
        a = engine.submit("A1", 0.6, phase="Hist", name="hist", party=0)
        b = engine.submit("A1", 0.6, phase="Hist", name="hist", party=0)
        engine.submit("B", 0.5, deps=[a, b], phase="Dec", name="dec")
        return engine

    def test_invariant_holds_under_faults(self):
        engine = self.faulty_engine()
        path = critical_path(engine.tasks)
        assert path.total == engine.makespan
        path.self_check()

    def test_pause_produces_wait_segment(self):
        plan = FaultPlan(pauses=(PauseWindow(party=1, start=0.0, end=1.0),))
        engine = FaultyEngine(plan)
        engine.submit("A1", 0.5, phase="Hist", name="hist")
        path = critical_path(engine.tasks)
        assert path.wait_seconds == pytest.approx(1.0)
        assert any(seg.kind == "wait" and seg.name == WAIT for seg in path.segments)

    # Satellite: gantt determinism + breakdown/utilization consistency
    # on a fault-injected schedule.
    def test_gantt_deterministic_and_highlightable(self):
        engine = self.faulty_engine()
        assert engine.gantt() == self.faulty_engine().gantt()
        on_path = set(critical_path(engine.tasks).task_ids)
        chart = engine.gantt(highlight=on_path)
        assert chart != engine.gantt()
        assert any(ch.isupper() for ch in chart)

    def test_phase_breakdown_matches_task_durations(self):
        engine = self.faulty_engine()
        breakdown = engine.phase_breakdown()
        assert sum(breakdown.values()) == pytest.approx(
            sum(task.duration for task in engine.tasks)
        )
        assert breakdown["Hist"] == pytest.approx(2.4)  # 2 x 0.6 x 2.0 slowdown

    def test_utilization_consistent_with_lane_utilization(self):
        engine = self.faulty_engine()
        for name in ("A1", "B"):
            lanes = [
                busy for (resource, _), busy in engine.lane_utilization().items()
                if resource == name
            ]
            # utilization() aggregates lanes (0..lanes), so it equals
            # the sum of the per-lane fractions.
            assert engine.utilization(name) == pytest.approx(sum(lanes))

    def test_utilizations_map_matches_scalar(self):
        engine = self.faulty_engine()
        assert engine.utilizations() == {
            name: engine.utilization(name) for name in ("A1", "B")
        }


class TestGraphRoundTrip:
    def test_export_import_preserves_path(self, golden):
        engine = SimEngine.from_tasks(list(golden.task_graphs[0]))
        data = engine.export_graph()
        rebuilt = tasks_from_graph(data)
        assert critical_path(rebuilt).to_dict() == critical_path(
            golden.task_graphs[0]
        ).to_dict()

    def test_from_graph_engine_equivalent(self, golden):
        engine = SimEngine.from_tasks(list(golden.task_graphs[0]))
        clone = SimEngine.from_graph(engine.export_graph())
        assert clone.makespan == engine.makespan
        assert clone.phase_breakdown() == engine.phase_breakdown()
        assert clone.gantt() == engine.gantt()


class TestCriticalGantt:
    def test_marks_path_and_reports_total(self, golden):
        tasks = golden.task_graphs[0]
        chart = critical_gantt(tasks)
        assert "critical path UPPERCASE" in chart
        assert any(ch.isupper() for ch in chart)

    def test_section_empty_without_graphs(self):
        assert critical_path_section([]) == {}


class TestSlack:
    def test_slack_bounds(self):
        engine = SimEngine()
        a = engine.submit("r1", 1.0, phase="p", name="a")
        slow = engine.submit("r2", 5.0, deps=[a], phase="p", name="slow")
        fast = engine.submit("r3", 1.0, deps=[a], phase="p", name="fast")
        engine.submit("r4", 1.0, deps=[slow, fast], phase="p", name="join")
        slack = compute_slack(engine.tasks)
        assert slack[a.task_id] == 0.0
        assert slack[slow.task_id] == 0.0
        assert slack[fast.task_id] == pytest.approx(4.0)
