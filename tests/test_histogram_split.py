"""Tests for histogram construction and split finding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbdt.binning import bin_dataset
from repro.gbdt.histogram import Histogram, build_histogram
from repro.gbdt.params import GBDTParams
from repro.gbdt.split import find_best_split, gain_matrix, leaf_weight


def _toy(n=80, d=4, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, d))
    dataset = bin_dataset(features, 8)
    grads = rng.normal(size=n)
    hess = rng.uniform(0.1, 0.3, size=n)
    return dataset, grads, hess


class TestBuildHistogram:
    def test_totals_match_inputs(self):
        dataset, grads, hess = _toy()
        rows = np.arange(dataset.n_instances)
        hist = build_histogram(dataset, rows, grads, hess)
        assert hist.total_grad == pytest.approx(grads.sum())
        assert hist.total_hess == pytest.approx(hess.sum())
        assert hist.total_count == dataset.n_instances

    def test_every_feature_row_sums_identically(self):
        dataset, grads, hess = _toy()
        rows = np.arange(dataset.n_instances)
        hist = build_histogram(dataset, rows, grads, hess)
        per_feature = hist.grad.sum(axis=1)
        assert np.allclose(per_feature, per_feature[0])

    def test_subset_rows(self):
        dataset, grads, hess = _toy()
        rows = np.array([1, 3, 5, 7])
        hist = build_histogram(dataset, rows, grads, hess)
        assert hist.total_grad == pytest.approx(grads[rows].sum())
        assert hist.total_count == 4

    def test_empty_rows(self):
        dataset, grads, hess = _toy()
        hist = build_histogram(dataset, np.array([], dtype=np.int64), grads, hess)
        assert hist.total_count == 0
        assert np.all(hist.grad == 0)

    def test_manual_cell_check(self):
        dataset, grads, hess = _toy(n=20, d=2, seed=3)
        rows = np.arange(20)
        hist = build_histogram(dataset, rows, grads, hess)
        j = 1
        for k in range(dataset.n_bins):
            mask = dataset.codes[:, j] == k
            assert hist.grad[j, k] == pytest.approx(grads[mask].sum())
            assert hist.count[j, k] == mask.sum()


class TestHistogramAlgebra:
    def test_subtraction_trick(self):
        dataset, grads, hess = _toy(n=100)
        rows = np.arange(100)
        left, right = rows[:40], rows[40:]
        parent = build_histogram(dataset, rows, grads, hess)
        left_hist = build_histogram(dataset, left, grads, hess)
        right_hist = build_histogram(dataset, right, grads, hess)
        derived = parent.subtract(left_hist)
        assert np.allclose(derived.grad, right_hist.grad)
        assert np.allclose(derived.hess, right_hist.hess)
        assert np.array_equal(derived.count, right_hist.count)

    def test_merge_is_addition(self):
        dataset, grads, hess = _toy(n=60)
        a = build_histogram(dataset, np.arange(30), grads, hess)
        b = build_histogram(dataset, np.arange(30, 60), grads, hess)
        merged = a.merge(b)
        full = build_histogram(dataset, np.arange(60), grads, hess)
        assert np.allclose(merged.grad, full.grad)

    def test_slice_features(self):
        dataset, grads, hess = _toy(d=5)
        hist = build_histogram(dataset, np.arange(80), grads, hess)
        part = hist.slice_features(1, 3)
        assert part.n_features == 2
        assert np.allclose(part.grad, hist.grad[1:3])

    def test_zeros_and_copy(self):
        z = Histogram.zeros(3, 4)
        assert z.total_count == 0
        c = z.copy()
        c.grad[0, 0] = 1.0
        assert z.grad[0, 0] == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Histogram(np.zeros((2, 3)), np.zeros((2, 3)), np.zeros((3, 2)))

    def test_subtract_shape_mismatch_rejected(self):
        # (3, 4) - (1, 4) would numpy-broadcast without the guard,
        # silently corrupting sibling statistics.
        big = Histogram.zeros(3, 4)
        small = Histogram.zeros(1, 4)
        with pytest.raises(ValueError, match="cannot subtract .*\\(3, 4\\).*\\(1, 4\\)"):
            big.subtract(small)

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cannot merge"):
            Histogram.zeros(2, 8).merge(Histogram.zeros(2, 6))


class TestSplitFinding:
    params = GBDTParams(n_bins=8, reg_lambda=1.0, min_child_weight=1e-6)

    def test_perfect_split_found(self):
        # Feature 0 separates labels perfectly at value 0.
        n = 200
        rng = np.random.default_rng(1)
        features = rng.normal(size=(n, 3))
        labels = (features[:, 0] > 0).astype(float)
        grads = 0.5 - labels  # logistic grads at margin 0
        hess = np.full(n, 0.25)
        dataset = bin_dataset(features, 8)
        hist = build_histogram(dataset, np.arange(n), grads, hess)
        best = find_best_split(hist, self.params)
        assert best.is_valid
        assert best.feature == 0
        threshold = dataset.threshold_for(best.feature, best.bin_index)
        assert abs(threshold) < 0.5

    def test_no_split_on_pure_node(self):
        dataset, _, hess = _toy(n=50)
        zero_grads = np.zeros(50)
        hist = build_histogram(dataset, np.arange(50), zero_grads, hess)
        best = find_best_split(hist, self.params)
        assert not best.is_valid

    def test_gain_definition(self):
        dataset, grads, hess = _toy(n=120, seed=9)
        hist = build_histogram(dataset, np.arange(120), grads, hess)
        best = find_best_split(hist, self.params)
        lam = self.params.reg_lambda
        expected = 0.5 * (
            best.left_grad**2 / (best.left_hess + lam)
            + best.right_grad**2 / (best.right_hess + lam)
            - hist.total_grad**2 / (hist.total_hess + lam)
        ) - self.params.gamma
        assert best.gain == pytest.approx(expected)

    def test_children_stats_sum_to_parent(self):
        dataset, grads, hess = _toy(n=120, seed=10)
        hist = build_histogram(dataset, np.arange(120), grads, hess)
        best = find_best_split(hist, self.params)
        assert best.left_grad + best.right_grad == pytest.approx(hist.total_grad)
        assert best.left_count + best.right_count == hist.total_count

    def test_min_node_instances(self):
        dataset, grads, hess = _toy(n=20)
        hist = build_histogram(dataset, np.arange(20), grads, hess)
        params = self.params.replace(min_node_instances=50)
        assert not find_best_split(hist, params).is_valid

    def test_min_child_weight_blocks_tiny_children(self):
        dataset, grads, hess = _toy(n=40)
        hist = build_histogram(dataset, np.arange(40), grads, hess)
        params = self.params.replace(min_child_weight=1e9)
        assert not find_best_split(hist, params).is_valid

    def test_gamma_penalty_can_block(self):
        dataset, grads, hess = _toy(n=60, seed=12)
        hist = build_histogram(dataset, np.arange(60), grads, hess)
        unpenalized = find_best_split(hist, self.params)
        params = self.params.replace(gamma=unpenalized.gain + 1.0)
        assert not find_best_split(hist, params).is_valid

    def test_check_counts_false_path(self):
        dataset, grads, hess = _toy(n=60, seed=13)
        hist = build_histogram(dataset, np.arange(60), grads, hess)
        blind = Histogram(hist.grad, hist.hess, np.zeros_like(hist.count))
        best = find_best_split(blind, self.params, check_counts=False, node_instances=60)
        reference = find_best_split(hist, self.params)
        assert best.feature == reference.feature
        assert best.bin_index == reference.bin_index

    def test_empty_histogram(self):
        assert not find_best_split(Histogram.zeros(0, 8), self.params).is_valid

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_best_split_maximizes_gain_matrix(self, seed):
        dataset, grads, hess = _toy(n=80, seed=seed)
        hist = build_histogram(dataset, np.arange(80), grads, hess)
        best = find_best_split(hist, self.params)
        gains, _ = gain_matrix(hist, self.params)
        if best.is_valid:
            assert best.gain == pytest.approx(float(np.max(gains)))
        else:
            finite = gains[np.isfinite(gains)]
            assert finite.size == 0 or float(np.max(finite)) <= 0.0


class TestLeafWeight:
    def test_formula(self):
        assert leaf_weight(4.0, 3.0, 1.0) == pytest.approx(-1.0)

    def test_regularization_shrinks(self):
        assert abs(leaf_weight(4.0, 3.0, 10.0)) < abs(leaf_weight(4.0, 3.0, 0.0))
