"""Tests for loss functions, gradients and their bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbdt.loss import LogisticLoss, SquaredLoss, get_loss, sigmoid


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        x = np.linspace(-10, 10, 41)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.all(np.isfinite(out))


class TestLogisticLoss:
    loss = LogisticLoss()

    def test_gradient_sign_encodes_label(self):
        # Positive gradients for y=0, negative for y=1 — the leakage the
        # protocol must encrypt away (§2.3).
        preds = np.zeros(4)
        grad, _ = self.loss.gradients(np.array([0.0, 0.0, 1.0, 1.0]), preds)
        assert np.all(grad[:2] > 0)
        assert np.all(grad[2:] < 0)

    @given(st.floats(-8, 8), st.integers(0, 1))
    @settings(max_examples=40)
    def test_gradient_matches_numeric_derivative(self, pred, label):
        y = np.array([float(label)])
        p = np.array([pred])
        grad, hess = self.loss.gradients(y, p)
        eps = 1e-5
        numeric = (self.loss.loss(y, p + eps) - self.loss.loss(y, p - eps)) / (2 * eps)
        assert grad[0] == pytest.approx(numeric, abs=1e-4)

    @given(st.floats(-30, 30))
    @settings(max_examples=40)
    def test_bounds_hold(self, pred):
        y = np.array([0.0, 1.0])
        p = np.array([pred, pred])
        grad, hess = self.loss.gradients(y, p)
        assert np.all(np.abs(grad) <= self.loss.gradient_bound)
        assert np.all(hess >= 0)
        assert np.all(hess <= self.loss.hessian_bound)

    def test_loss_decreases_toward_correct_label(self):
        y = np.ones(1)
        assert self.loss.loss(y, np.array([2.0])) < self.loss.loss(y, np.array([0.0]))

    def test_base_score_matches_prior(self):
        labels = np.array([1.0, 1.0, 1.0, 0.0])
        base = self.loss.base_score(labels)
        assert sigmoid(np.array([base]))[0] == pytest.approx(0.75)

    def test_transform_is_probability(self):
        out = self.loss.transform(np.array([-3.0, 0.0, 3.0]))
        assert np.all((out > 0) & (out < 1))


class TestSquaredLoss:
    loss = SquaredLoss()

    def test_gradient_is_residual(self):
        grad, hess = self.loss.gradients(np.array([1.0]), np.array([3.0]))
        assert grad[0] == pytest.approx(2.0)
        assert hess[0] == pytest.approx(1.0)

    def test_base_score_is_mean(self):
        assert self.loss.base_score(np.array([1.0, 2.0, 3.0])) == pytest.approx(2.0)

    def test_loss_value(self):
        value = self.loss.loss(np.array([0.0, 2.0]), np.array([1.0, 2.0]))
        assert value == pytest.approx(0.25)

    def test_transform_identity(self):
        x = np.array([1.0, -2.0])
        assert np.array_equal(self.loss.transform(x), x)

    def test_bounds_exposed(self):
        assert self.loss.hessian_bound == 1.0
        assert self.loss.gradient_bound > 0


class TestGetLoss:
    def test_known_names(self):
        assert isinstance(get_loss("logistic"), LogisticLoss)
        assert isinstance(get_loss("squared"), SquaredLoss)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_loss("hinge")
