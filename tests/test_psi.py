"""Tests for the DH-style private set intersection."""

import pytest

from repro.data.psi import PsiParty, _find_safe_prime, intersect, psi_align


class TestProtocol:
    prime = _find_safe_prime(64, seed=0)

    def test_intersection_found(self):
        a = PsiParty(["u1", "u2", "u3", "u5"], self.prime, seed=1)
        b = PsiParty(["u2", "u3", "u4"], self.prime, seed=2)
        keys_a, keys_b = intersect(a, b)
        assert set(keys_a) == set(keys_b) == {"u2", "u3"}

    def test_disjoint_sets(self):
        a = PsiParty(["x1"], self.prime, seed=1)
        b = PsiParty(["y1"], self.prime, seed=2)
        keys_a, keys_b = intersect(a, b)
        assert keys_a == [] and keys_b == []

    def test_identical_sets(self):
        keys = [f"u{i}" for i in range(20)]
        a = PsiParty(keys, self.prime, seed=3)
        b = PsiParty(list(reversed(keys)), self.prime, seed=4)
        keys_a, keys_b = intersect(a, b)
        assert set(keys_a) == set(keys_b) == set(keys)

    def test_blinding_hides_keys(self):
        # The blinded set must not expose the raw hashed keys.
        a = PsiParty(["secret-user"], self.prime, seed=5)
        blinded = a.blinded_set()
        from repro.data.psi import _hash_to_group

        assert blinded[0] != _hash_to_group("secret-user", self.prime)

    def test_commutativity_of_double_blinding(self):
        # b(a(x)) == a(b(x)) — the property the protocol rests on.
        a = PsiParty(["k"], self.prime, seed=6)
        b = PsiParty(["k"], self.prime, seed=7)
        ab = b.double_blind(a.blinded_set())
        ba = a.double_blind(b.blinded_set())
        assert ab == ba

    def test_mismatched_groups_rejected(self):
        other = _find_safe_prime(64, seed=9)
        a = PsiParty(["k"], self.prime, seed=1)
        b = PsiParty(["k"], other, seed=2)
        with pytest.raises(ValueError):
            intersect(a, b)


class TestPsiAlign:
    def test_positions_align(self):
        keys_a = ["u3", "u1", "u9", "u4"]
        keys_b = ["u4", "u9", "u7"]
        rows_a, rows_b = psi_align(keys_a, keys_b, group_bits=64, seed=0)
        assert len(rows_a) == len(rows_b) == 2
        for i, j in zip(rows_a, rows_b):
            assert keys_a[i] == keys_b[j]

    def test_empty_intersection(self):
        rows_a, rows_b = psi_align(["a"], ["b"], group_bits=64, seed=0)
        assert rows_a == [] and rows_b == []
