"""End-to-end integration tests across all subsystems.

These walk the full pipeline a deployment would: PSI alignment ->
vertical partitioning -> binning -> federated training (real Paillier
crypto) -> federated prediction -> protocol scheduling of the run's
own trace.
"""

import numpy as np
import pytest

from repro.bench.costmodel import CostModel
from repro.core.config import VF2BoostConfig
from repro.core.protocol import ProtocolScheduler
from repro.core.trainer import FederatedTrainer
from repro.data.psi import psi_align
from repro.fed.cluster import ClusterSpec
from repro.gbdt.binning import bin_dataset
from repro.gbdt.boosting import GBDTTrainer
from repro.gbdt.metrics import auc
from repro.gbdt.params import GBDTParams


@pytest.fixture(scope="module")
def pipeline_result():
    """Run the full real-crypto pipeline once; several tests inspect it."""
    rng = np.random.default_rng(99)
    n_a, n_b, overlap = 70, 80, 60
    # Two enterprises with partially overlapping user bases.
    shared = [f"user{k}" for k in range(overlap)]
    keys_a = shared + [f"a-only{k}" for k in range(n_a - overlap)]
    keys_b = shared + [f"b-only{k}" for k in range(n_b - overlap)]
    rng.shuffle(keys_a)
    rng.shuffle(keys_b)

    raw_a = rng.normal(size=(n_a, 4))
    raw_b = rng.normal(size=(n_b, 5))
    # Labels live with enterprise B and depend on both parties' columns.
    label_map = {}
    for key in shared:
        ia, ib = keys_a.index(key), keys_b.index(key)
        score = raw_a[ia, 0] + raw_b[ib, 0] - 0.5 * raw_b[ib, 1]
        label_map[key] = float(score + rng.normal(scale=0.2) > 0)

    rows_a, rows_b = psi_align(keys_a, keys_b, group_bits=64, seed=5)
    aligned_a = raw_a[rows_a]
    aligned_b = raw_b[rows_b]
    labels = np.array([label_map[keys_a[i]] for i in rows_a])

    params = GBDTParams(n_trees=3, n_layers=3, n_bins=6)
    dataset_a = bin_dataset(aligned_a, params.n_bins)
    dataset_b = bin_dataset(aligned_b, params.n_bins)
    config = VF2BoostConfig.vf2boost(
        params=params, crypto_mode="real", key_bits=256,
        exponent_jitter=3, blaster_batch_size=32,
    )
    result = FederatedTrainer(config).fit([dataset_b, dataset_a], labels)
    return {
        "result": result,
        "labels": labels,
        "dataset_a": dataset_a,
        "dataset_b": dataset_b,
        "aligned_a": aligned_a,
        "aligned_b": aligned_b,
        "params": params,
        "config": config,
    }


class TestFullPipeline:
    def test_psi_alignment_size(self, pipeline_result):
        assert pipeline_result["labels"].shape[0] == 60

    def test_training_converges(self, pipeline_result):
        history = pipeline_result["result"].history
        assert history[-1].train_loss < history[0].train_loss

    def test_federated_prediction_beats_chance(self, pipeline_result):
        result = pipeline_result["result"]
        codes = {
            0: pipeline_result["dataset_b"].codes,
            1: pipeline_result["dataset_a"].codes,
        }
        margins = result.model.predict_margin(codes)
        assert auc(pipeline_result["labels"], margins) > 0.7

    def test_matches_colocated_plaintext(self, pipeline_result):
        joined = np.hstack(
            [pipeline_result["aligned_b"], pipeline_result["aligned_a"]]
        )
        plaintext = GBDTTrainer(pipeline_result["params"])
        plaintext.fit(joined, pipeline_result["labels"])
        federated_losses = [r.train_loss for r in pipeline_result["result"].history]
        reference = [r.train_loss for r in plaintext.history]
        assert federated_losses == pytest.approx(reference, abs=1e-4)

    def test_trace_feeds_scheduler(self, pipeline_result):
        trace = pipeline_result["result"].trace
        scheduler = ProtocolScheduler(
            pipeline_result["config"],
            CostModel.paper(),
            ClusterSpec(n_workers=1),
        )
        schedule = scheduler.schedule(trace)
        assert schedule.makespan > 0
        assert len(schedule.per_tree) == len(trace.trees)

    def test_channel_carried_real_ciphers(self, pipeline_result):
        channel = pipeline_result["result"].channel
        assert channel.by_type["EncryptedGradHessBatch"].messages > 0
        assert channel.total_bytes() > 0

    def test_blaster_batching_visible_on_channel(self, pipeline_result):
        # 60 instances / batch 32 -> 2 batches per tree per passive party.
        channel = pipeline_result["result"].channel
        batches = channel.by_type["EncryptedGradHessBatch"].messages
        assert batches == 2 * pipeline_result["params"].n_trees


class TestSchedulerOnRealTraces:
    """Counted-mode traces driven through every named system."""

    def test_systems_price_counted_trace(self, small_classification):
        from repro.baselines.systems import get_system
        from repro.gbdt.binning import bin_dataset as _bin

        features, labels = small_classification
        params = GBDTParams(n_trees=2, n_layers=4, n_bins=8)
        full = _bin(features, params.n_bins)
        parties = [
            full.subset_features(np.arange(5, 10)),
            full.subset_features(np.arange(0, 5)),
        ]
        config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
        result = FederatedTrainer(config).fit(parties, labels)
        times = {
            name: get_system(name).seconds_per_tree(result.trace, params)
            for name in ("vf2boost", "vf_gbdt", "vf_mock", "secureboost")
        }
        assert times["vf2boost"] < times["vf_gbdt"] < times["secureboost"]
        # At this tiny scale the fixed per-layer coordination cost
        # dominates, so VF-MOCK only needs to beat the crypto baseline.
        assert times["vf_mock"] < times["vf_gbdt"]
