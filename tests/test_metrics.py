"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbdt.metrics import accuracy, auc, error_rate, logloss, rmse


class TestAuc:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc(labels, scores) == 1.0

    def test_inverted_ranking(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc(labels, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000).astype(float)
        scores = rng.random(5000)
        assert auc(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_averaged(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc(labels, scores) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auc(np.ones(5), np.random.random(5))

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=200).astype(float)
        scores = rng.normal(size=200)
        assert auc(labels, scores) == pytest.approx(
            auc(labels, 1 / (1 + np.exp(-scores)))
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_matches_pairwise_definition(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=40).astype(float)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        scores = rng.normal(size=40)
        pos = scores[labels > 0.5]
        neg = scores[labels < 0.5]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        assert auc(labels, scores) == pytest.approx(wins / (len(pos) * len(neg)))


class TestLogloss:
    def test_perfect_predictions(self):
        labels = np.array([0.0, 1.0])
        assert logloss(labels, np.array([0.0, 1.0])) == pytest.approx(0.0, abs=1e-10)

    def test_uninformative_prediction(self):
        labels = np.array([0.0, 1.0])
        assert logloss(labels, np.array([0.5, 0.5])) == pytest.approx(np.log(2))

    def test_clipping_protects_from_inf(self):
        assert np.isfinite(logloss(np.array([1.0]), np.array([0.0])))


class TestRmse:
    def test_zero_for_exact(self):
        x = np.array([1.0, 2.0])
        assert rmse(x, x) == 0.0

    def test_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )


class TestAccuracy:
    def test_threshold(self):
        labels = np.array([0.0, 1.0, 1.0, 0.0])
        probs = np.array([0.4, 0.6, 0.4, 0.6])
        assert accuracy(labels, probs) == 0.5
        assert error_rate(labels, probs) == 0.5

    def test_all_correct(self):
        labels = np.array([0.0, 1.0])
        assert accuracy(labels, np.array([0.1, 0.9])) == 1.0
