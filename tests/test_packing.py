"""Tests for polynomial-based cipher packing (§5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ciphertext import PaillierContext
from repro.crypto.packing import (
    limb_fits,
    pack_capacity,
    pack_ciphers,
    unpack_values,
)

CTX = PaillierContext.create(256, seed=5, jitter=1)


class TestPackCapacity:
    def test_capacity_positive(self):
        assert pack_capacity(CTX.public_key, 32) >= 1

    def test_capacity_scales_inversely_with_limb(self):
        assert pack_capacity(CTX.public_key, 16) > pack_capacity(CTX.public_key, 64)

    def test_paper_configuration(self):
        # S=2048, M=64 -> t = 32 per the paper's S/M bound. Our space is
        # n/3 (~ S - 1.6 bits) minus one full limb of HAdd headroom, so
        # two limbs drop off the paper's figure.
        from repro.crypto.paillier import generate_keypair

        pub, _ = generate_keypair(2048, seed=6)
        assert pack_capacity(pub, 64) == 30

    def test_full_limb_headroom_at_exact_boundary(self):
        # Synthetic modulus placing the usable bit count exactly at a
        # multiple of the limb width: max_int = 2**192, usable = 192.
        # This is the boundary where the old one-*bit* reservation left
        # zero headroom: a maximal 3-limb pack decoded fine alone (the
        # bug was latent) but a single HAdd of two such packs spilled
        # past max_int into the dead zone, corrupting every limb.
        from repro.crypto.paillier import PaillierPublicKey

        pub = PaillierPublicKey(3 * (2**192 + 1))
        usable = pub.max_int.bit_length() - 1
        assert usable == 192 and usable % 64 == 0
        maximal_old = (1 << (3 * 64)) - 1  # the old formula allowed 3 limbs
        assert maximal_old <= pub.max_int < 2 * maximal_old
        # The full-limb reservation gives 2 limbs, and a maximal 2-limb
        # pack survives the same HAdd with room to spare.
        assert pack_capacity(pub, 64) == 2
        maximal_new = (1 << (2 * 64)) - 1
        assert 2 * maximal_new <= pub.max_int

    def test_tighter_top_bound_buys_capacity(self):
        # Callers that know their packed values are far below 2**M get
        # at least the conservative capacity back, never less.
        conservative = pack_capacity(CTX.public_key, 64)
        assert pack_capacity(CTX.public_key, 64, top_bits=8) >= conservative
        assert pack_capacity(CTX.public_key, 64, top_bits=64) == conservative

    def test_top_bits_validated(self):
        with pytest.raises(ValueError, match="top_bits"):
            pack_capacity(CTX.public_key, 64, top_bits=0)
        with pytest.raises(ValueError, match="top_bits"):
            pack_capacity(CTX.public_key, 64, top_bits=65)

    def test_tiny_key_rejected(self):
        # A 64-bit key leaves ~62 usable plaintext bits — not even one
        # 64-bit limb. Packing would silently overflow; must raise.
        from repro.crypto.paillier import generate_keypair

        pub, _ = generate_keypair(64, seed=9)
        with pytest.raises(ValueError, match="key too small to pack any limb"):
            pack_capacity(pub, 64)

    def test_tiny_key_ok_with_narrower_limb(self):
        from repro.crypto.paillier import generate_keypair

        pub, _ = generate_keypair(64, seed=9)
        assert pack_capacity(pub, 16) >= 1


class TestPackUnpack:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**30 - 1), min_size=1, max_size=6)
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, values):
        ciphers = [CTX.encrypt(float(v), exponent=0) for v in values]
        packed = pack_ciphers(CTX, ciphers, limb_bits=32)
        assert unpack_values(CTX, packed) == values

    def test_first_value_in_lowest_limb(self):
        ciphers = [CTX.encrypt(float(v), exponent=0) for v in (1, 2, 3)]
        packed = pack_ciphers(CTX, ciphers, limb_bits=16)
        raw = CTX.decrypt_raw(
            type(ciphers[0])(CTX, packed.ciphertext, packed.exponent)
        )
        assert raw & 0xFFFF == 1

    def test_zero_values(self):
        ciphers = [CTX.encrypt(0.0, exponent=0) for _ in range(4)]
        packed = pack_ciphers(CTX, ciphers, limb_bits=24)
        assert unpack_values(CTX, packed) == [0, 0, 0, 0]

    def test_max_limb_values(self):
        top = (1 << 20) - 1
        ciphers = [CTX.encrypt(float(top), exponent=0) for _ in range(3)]
        packed = pack_ciphers(CTX, ciphers, limb_bits=20)
        assert unpack_values(CTX, packed) == [top] * 3

    def test_single_cipher_pack(self):
        packed = pack_ciphers(CTX, [CTX.encrypt(42.0, exponent=0)], limb_bits=32)
        assert unpack_values(CTX, packed) == [42]

    def test_exponent_carried(self):
        ciphers = [CTX.encrypt(1.5, exponent=4), CTX.encrypt(2.0, exponent=4)]
        packed = pack_ciphers(CTX, ciphers, limb_bits=40)
        assert packed.exponent == 4
        values = unpack_values(CTX, packed)
        base = CTX.encoder.base
        assert values[0] / base**4 == pytest.approx(1.5)
        assert values[1] / base**4 == pytest.approx(2.0)


class TestPackValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pack_ciphers(CTX, [], limb_bits=32)

    def test_over_capacity_rejected(self):
        capacity = pack_capacity(CTX.public_key, 32)
        ciphers = [CTX.encrypt(1.0, exponent=0) for _ in range(capacity + 1)]
        with pytest.raises(ValueError):
            pack_ciphers(CTX, ciphers, limb_bits=32)

    def test_mixed_exponents_rejected(self):
        ciphers = [CTX.encrypt(1.0, exponent=2), CTX.encrypt(1.0, exponent=3)]
        with pytest.raises(ValueError):
            pack_ciphers(CTX, ciphers, limb_bits=32)


class TestPackingEconomics:
    def test_single_decryption_per_pack(self):
        ciphers = [CTX.encrypt(float(v), exponent=0) for v in (5, 6, 7)]
        packed = pack_ciphers(CTX, ciphers, limb_bits=32)
        before = CTX.stats.snapshot()
        unpack_values(CTX, packed)
        assert CTX.stats.diff(before).decryptions == 1

    def test_pack_costs_t_minus_one_ops(self):
        ciphers = [CTX.encrypt(float(v), exponent=0) for v in range(5)]
        before = CTX.stats.snapshot()
        pack_ciphers(CTX, ciphers, limb_bits=32)
        diff = CTX.stats.diff(before)
        assert diff.additions == 4
        assert diff.scalar_multiplications == 4

    def test_wire_size_independent_of_count(self):
        one = pack_ciphers(CTX, [CTX.encrypt(1.0, exponent=0)], limb_bits=32)
        many = pack_ciphers(
            CTX, [CTX.encrypt(1.0, exponent=0) for _ in range(4)], limb_bits=32
        )
        assert one.size_bits(CTX.public_key) == many.size_bits(CTX.public_key)


class TestLimbFits:
    def test_boundaries(self):
        assert limb_fits(0, 8)
        assert limb_fits(255, 8)
        assert not limb_fits(256, 8)
        assert not limb_fits(-1, 8)
