"""Unit + property tests for the raw Paillier cryptosystem."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import math_utils
from repro.crypto.paillier import (
    ObfuscatorPool,
    PaillierPrivateKey,
    PaillierPublicKey,
    derive_insecure_keypair_from_primes,
    generate_keypair,
)

PUBLIC, PRIVATE = generate_keypair(256, seed=1)


class TestKeyGeneration:
    def test_key_bits(self):
        assert PUBLIC.key_bits == 256

    def test_seeded_generation_is_deterministic(self):
        pub2, _ = generate_keypair(256, seed=1)
        assert pub2.n == PUBLIC.n

    def test_different_seeds_differ(self):
        pub2, _ = generate_keypair(256, seed=2)
        assert pub2.n != PUBLIC.n

    def test_rejects_tiny_keys(self):
        with pytest.raises(ValueError):
            generate_keypair(8)

    def test_max_int_leaves_headroom(self):
        assert PUBLIC.max_int * 3 < PUBLIC.n

    def test_mismatched_private_key_rejected(self):
        other_pub, other_priv = generate_keypair(256, seed=9)
        with pytest.raises(ValueError):
            PaillierPrivateKey(public_key=PUBLIC, p=other_priv.p, q=other_priv.q)

    def test_derive_from_primes(self):
        pub, priv = derive_insecure_keypair_from_primes(PRIVATE.p, PRIVATE.q)
        assert pub.n == PUBLIC.n
        assert priv.raw_decrypt(pub.raw_encrypt(12345)) == 12345

    def test_derive_rejects_composites(self):
        with pytest.raises(ValueError):
            derive_insecure_keypair_from_primes(15, PRIVATE.q)

    def test_derive_rejects_equal_primes(self):
        with pytest.raises(ValueError):
            derive_insecure_keypair_from_primes(PRIVATE.p, PRIVATE.p)


class TestEncryptDecrypt:
    @given(st.integers(min_value=0, max_value=2**64))
    @settings(max_examples=40)
    def test_round_trip(self, plaintext):
        cipher = PUBLIC.raw_encrypt(plaintext)
        assert PRIVATE.raw_decrypt(cipher) == plaintext

    def test_rejects_out_of_range_plaintext(self):
        with pytest.raises(ValueError):
            PUBLIC.raw_encrypt(PUBLIC.n)
        with pytest.raises(ValueError):
            PUBLIC.raw_encrypt(-1)

    def test_rejects_out_of_range_ciphertext(self):
        with pytest.raises(ValueError):
            PRIVATE.raw_decrypt(PUBLIC.n_squared)

    def test_probabilistic_encryption(self):
        # Fresh obfuscators make repeated encryptions of one value differ.
        a = PUBLIC.raw_encrypt(7)
        b = PUBLIC.raw_encrypt(7)
        assert a != b
        assert PRIVATE.raw_decrypt(a) == PRIVATE.raw_decrypt(b) == 7

    def test_boundary_values(self):
        for value in (0, 1, PUBLIC.n - 1):
            assert PRIVATE.raw_decrypt(PUBLIC.raw_encrypt(value)) == value


class TestHomomorphicProperties:
    @given(
        st.integers(min_value=0, max_value=2**60),
        st.integers(min_value=0, max_value=2**60),
    )
    @settings(max_examples=40)
    def test_homomorphic_addition(self, u, v):
        combined = PUBLIC.raw_add(PUBLIC.raw_encrypt(u), PUBLIC.raw_encrypt(v))
        assert PRIVATE.raw_decrypt(combined) == u + v

    @given(
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=40)
    def test_scalar_multiplication(self, v, k):
        scaled = PUBLIC.raw_multiply(PUBLIC.raw_encrypt(v), k)
        assert PRIVATE.raw_decrypt(scaled) == (v * k) % PUBLIC.n

    @given(
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=0, max_value=2**40),
    )
    @settings(max_examples=40)
    def test_plaintext_addition(self, v, u):
        shifted = PUBLIC.raw_add_plain(PUBLIC.raw_encrypt(v), u)
        assert PRIVATE.raw_decrypt(shifted) == v + u

    def test_addition_wraps_modulo_n(self):
        near_max = PUBLIC.n - 1
        total = PUBLIC.raw_add(
            PUBLIC.raw_encrypt(near_max), PUBLIC.raw_encrypt(2)
        )
        assert PRIVATE.raw_decrypt(total) == 1  # (n - 1 + 2) mod n


class TestRawMultiplyNegativeThreshold:
    """The invert path starts strictly *above* ``max_int * 2``."""

    @staticmethod
    def _counted(callable_):
        counted = 0

        def observer():
            nonlocal counted
            counted += 1

        previous = math_utils.set_powmod_observer(observer)
        try:
            result = callable_()
        finally:
            math_utils.set_powmod_observer(previous)
        return result, counted

    def test_exact_threshold_takes_direct_path(self):
        cipher = PUBLIC.raw_encrypt(3)
        scalar = PUBLIC.max_int * 2
        result, powmods = self._counted(
            lambda: PUBLIC.raw_multiply(cipher, scalar)
        )
        assert powmods == 1  # one plain exponentiation, no inversion
        assert result == pow(cipher, scalar, PUBLIC.n_squared)
        assert PRIVATE.raw_decrypt(result) == (3 * scalar) % PUBLIC.n

    def test_one_past_threshold_takes_invert_path(self):
        cipher = PUBLIC.raw_encrypt(3)
        scalar = PUBLIC.max_int * 2 + 1
        result, powmods = self._counted(
            lambda: PUBLIC.raw_multiply(cipher, scalar)
        )
        # The inversion runs through the observed math_utils choke
        # point, so both operations are counted (invert + powmod).
        assert powmods == 2
        assert PRIVATE.raw_decrypt(result) == (3 * scalar) % PUBLIC.n

    def test_paths_agree_around_the_threshold(self):
        cipher = PUBLIC.raw_encrypt(5)
        for scalar in (
            PUBLIC.max_int * 2 - 1,
            PUBLIC.max_int * 2,
            PUBLIC.max_int * 2 + 1,
        ):
            assert PRIVATE.raw_decrypt(
                PUBLIC.raw_multiply(cipher, scalar)
            ) == (5 * scalar) % PUBLIC.n


class TestObfuscatorPool:
    def test_pool_refill_and_take(self):
        pool = ObfuscatorPool(PUBLIC, size=3)
        assert len(pool) == 3
        pool.take()
        assert len(pool) == 2

    def test_take_from_empty_pool_generates(self):
        pool = ObfuscatorPool(PUBLIC)
        obf = pool.take()
        cipher = PUBLIC.raw_encrypt(99, obfuscator=obf)
        assert PRIVATE.raw_decrypt(cipher) == 99

    def test_pooled_encryption_round_trip(self):
        pool = ObfuscatorPool(PUBLIC, size=5)
        for value in range(5):
            cipher = PUBLIC.raw_encrypt(value, obfuscator=pool.take())
            assert PRIVATE.raw_decrypt(cipher) == value

    def test_take_pops_most_recent_refill(self):
        serial = [
            PUBLIC.make_obfuscator(rng)
            for rng in [random.Random(21)]
            for _ in range(3)
        ]
        pool = ObfuscatorPool(PUBLIC, rng=random.Random(21))
        pool.refill(3)
        assert [pool.take() for _ in range(3)] == serial[::-1]

    def test_interleaved_refill_take_is_deterministic(self):
        def drive(pool):
            pool.refill(3)
            drawn = [pool.take()]
            pool.refill(2)
            drawn += [pool.take() for _ in range(4)]
            pool.deposit([11, 22])
            drawn += [pool.take() for _ in range(2)]
            return drawn

        first = drive(ObfuscatorPool(PUBLIC, rng=random.Random(13)))
        second = drive(ObfuscatorPool(PUBLIC, rng=random.Random(13)))
        assert first == second
        assert first[-2:] == [22, 11]  # LIFO: deposits pop in reverse


class TestPublicKeyEquality:
    def test_hashable(self):
        assert hash(PUBLIC) == hash(PaillierPublicKey(n=PUBLIC.n))
