"""Tests for encrypted histogram construction and §5.2 packing."""

import numpy as np
import pytest

from repro.core.enc_histogram import (
    build_encrypted_histogram,
    decrypt_histogram,
    pack_histogram,
    required_limb_bits,
    unpack_histogram,
)
from repro.crypto.ciphertext import PaillierContext
from repro.gbdt.binning import bin_dataset
from repro.gbdt.histogram import build_histogram

CTX = PaillierContext.create(256, seed=31, jitter=3)


def _setup(n=40, d=3, n_bins=6, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, d))
    dataset = bin_dataset(features, n_bins)
    grads = rng.uniform(-1, 1, size=n)
    hess = rng.uniform(0.01, 0.25, size=n)
    grad_ciphers = [CTX.encrypt(float(g)) for g in grads]
    hess_ciphers = [CTX.encrypt(float(h)) for h in hess]
    return dataset, grads, hess, grad_ciphers, hess_ciphers


class TestBuildEncryptedHistogram:
    @pytest.mark.parametrize("reordered", [False, True])
    def test_matches_plaintext(self, reordered):
        dataset, grads, hess, gc, hc = _setup()
        rows = np.arange(dataset.n_instances)
        encrypted = build_encrypted_histogram(
            CTX.public_context(), dataset.codes, rows, gc, hc,
            dataset.n_bins, reordered=reordered,
        )
        decrypted = decrypt_histogram(CTX, encrypted)
        reference = build_histogram(dataset, rows, grads, hess)
        assert np.allclose(decrypted.grad, reference.grad, atol=1e-5)
        assert np.allclose(decrypted.hess, reference.hess, atol=1e-5)

    def test_subset_rows(self):
        dataset, grads, hess, gc, hc = _setup()
        rows = np.array([0, 5, 9, 22])
        encrypted = build_encrypted_histogram(
            CTX.public_context(), dataset.codes, rows, gc, hc,
            dataset.n_bins, reordered=True,
        )
        decrypted = decrypt_histogram(CTX, encrypted)
        reference = build_histogram(dataset, rows, grads, hess)
        assert np.allclose(decrypted.grad, reference.grad, atol=1e-5)

    def test_reordered_scales_less(self):
        dataset, _, _, gc, hc = _setup(n=60)
        rows = np.arange(dataset.n_instances)
        public = CTX.public_context()
        before = public.stats.snapshot()
        build_encrypted_histogram(
            public, dataset.codes, rows, gc, hc, dataset.n_bins, reordered=False
        )
        naive_scalings = public.stats.diff(before).scalings
        before = public.stats.snapshot()
        build_encrypted_histogram(
            public, dataset.codes, rows, gc, hc, dataset.n_bins, reordered=True
        )
        reordered_scalings = public.stats.diff(before).scalings
        assert reordered_scalings < naive_scalings

    def test_cipher_count(self):
        dataset, _, _, gc, hc = _setup(d=2, n_bins=5)
        encrypted = build_encrypted_histogram(
            CTX.public_context(), dataset.codes, np.arange(10), gc, hc, 5, True
        )
        assert encrypted.cipher_count() == 2 * 2 * 5


class TestPackUnpackHistogram:
    @pytest.mark.parametrize("reordered", [False, True])
    def test_round_trip(self, reordered):
        dataset, grads, hess, gc, hc = _setup(n=50, d=2, n_bins=8, seed=3)
        rows = np.arange(dataset.n_instances)
        public = CTX.public_context()
        encrypted = build_encrypted_histogram(
            public, dataset.codes, rows, gc, hc, dataset.n_bins, reordered
        )
        packed = pack_histogram(public, encrypted, grad_bound=1.0, limb_bits=32)
        recovered = unpack_histogram(CTX, packed)
        reference = build_histogram(dataset, rows, grads, hess)
        assert np.allclose(recovered.grad, reference.grad, atol=1e-4)
        assert np.allclose(recovered.hess, reference.hess, atol=1e-4)

    def test_wire_size_shrinks(self):
        dataset, _, _, gc, hc = _setup(n=30, d=2, n_bins=8)
        public = CTX.public_context()
        encrypted = build_encrypted_histogram(
            public, dataset.codes, np.arange(30), gc, hc, 8, True
        )
        packed = pack_histogram(public, encrypted, grad_bound=1.0, limb_bits=32)
        assert packed.cipher_count() < encrypted.cipher_count()

    def test_one_decryption_per_pack(self):
        dataset, _, _, gc, hc = _setup(n=20, d=1, n_bins=6)
        public = CTX.public_context()
        encrypted = build_encrypted_histogram(
            public, dataset.codes, np.arange(20), gc, hc, 6, True
        )
        packed = pack_histogram(public, encrypted, grad_bound=1.0, limb_bits=32)
        before = CTX.stats.snapshot()
        unpack_histogram(CTX, packed)
        assert CTX.stats.diff(before).decryptions == packed.cipher_count()

    def test_negative_gradient_sums_survive_shift(self):
        # All-negative gradients stress the N*Bound shift.
        n = 30
        rng = np.random.default_rng(4)
        features = rng.normal(size=(n, 1))
        dataset = bin_dataset(features, 5)
        grads = -rng.uniform(0.5, 1.0, size=n)
        hess = rng.uniform(0.1, 0.25, size=n)
        gc = [CTX.encrypt(float(g)) for g in grads]
        hc = [CTX.encrypt(float(h)) for h in hess]
        public = CTX.public_context()
        encrypted = build_encrypted_histogram(
            public, dataset.codes, np.arange(n), gc, hc, 5, True
        )
        packed = pack_histogram(public, encrypted, grad_bound=1.0, limb_bits=32)
        recovered = unpack_histogram(CTX, packed)
        reference = build_histogram(dataset, np.arange(n), grads, hess)
        assert np.allclose(recovered.grad, reference.grad, atol=1e-4)

    def test_shift_value_recorded(self):
        dataset, _, _, gc, hc = _setup(n=25, d=1, n_bins=4)
        public = CTX.public_context()
        encrypted = build_encrypted_histogram(
            public, dataset.codes, np.arange(25), gc, hc, 4, True
        )
        packed = pack_histogram(public, encrypted, grad_bound=1.0, limb_bits=32)
        assert packed.grad_shift == 25.0


class TestRequiredLimbBits:
    def test_grows_with_magnitude(self):
        small = required_limb_bits(10.0, 16, 8, 16)
        large = required_limb_bits(1e9, 16, 8, 16)
        assert large > small >= 16

    def test_respects_configured_floor(self):
        assert required_limb_bits(1.0, 16, 2, 64) == 64

    def test_zero_magnitude(self):
        assert required_limb_bits(0.0, 16, 8, 48) == 48
