"""Counted-mode fidelity: the accounting must match the real run.

The paper-scale benchmarks rest on counted mode reporting *exactly*
the ciphers and bytes a real run would ship. These tests train the
same workload in both modes and compare the channel ledgers.
"""

import numpy as np
import pytest

from repro.core.config import VF2BoostConfig
from repro.core.trainer import FederatedTrainer
from repro.gbdt.binning import bin_dataset
from repro.gbdt.params import GBDTParams


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(23)
    n, d = 140, 8
    features = rng.normal(size=(n, d))
    labels = ((features @ rng.normal(size=d)) > 0).astype(float)
    params = GBDTParams(n_trees=2, n_layers=3, n_bins=6)
    full = bin_dataset(features, params.n_bins)
    parties = [
        full.subset_features(np.arange(4, 8)),
        full.subset_features(np.arange(0, 4)),
    ]
    return parties, labels, params


def _run(parties, labels, params, mode, **flags):
    config = VF2BoostConfig(
        params=params,
        crypto_mode=mode,
        key_bits=256,
        exponent_jitter=1,
        blaster_encryption=False,
        reordered_accumulation=True,
        optimistic_split=False,
        histogram_packing=False,
        **flags,
    )
    return FederatedTrainer(config).fit(parties, labels)


class TestLedgerAgreement:
    def test_gradient_stream_bytes_match(self, workload):
        parties, labels, params = workload
        real = _run(parties, labels, params, "real")
        counted = _run(parties, labels, params, "counted")
        real_gh = real.channel.by_type["EncryptedGradHessBatch"].bytes
        counted_gh = sum(
            m.payload_bytes(256)
            for m in counted.channel.log
            if getattr(m, "kind", "") == "grad_hess"
        )
        assert real_gh == counted_gh

    def test_histogram_bytes_match(self, workload):
        parties, labels, params = workload
        real = _run(parties, labels, params, "real")
        counted = _run(parties, labels, params, "counted")
        real_hist = real.channel.by_type["EncryptedHistogramMessage"].bytes
        counted_hist = sum(
            m.payload_bytes(256)
            for m in counted.channel.log
            if getattr(m, "kind", "") == "histograms"
        )
        # Counted mode carries an 8-byte header per message instead of
        # the real message's 16; tolerate only that structural delta.
        assert abs(real_hist - counted_hist) <= 16 * len(counted.channel.log)

    def test_models_identical(self, workload):
        parties, labels, params = workload
        real = _run(parties, labels, params, "real")
        counted = _run(parties, labels, params, "counted")
        for t_real, t_counted in zip(real.model.trees, counted.model.trees):
            assert set(t_real.nodes) == set(t_counted.nodes)
            for node_id, node in t_real.nodes.items():
                other = t_counted.nodes[node_id]
                assert node.is_leaf == other.is_leaf
                if node.is_leaf:
                    assert node.weight == pytest.approx(other.weight, abs=1e-4)
                else:
                    assert (node.owner, node.feature, node.bin_index) == (
                        other.owner, other.feature, other.bin_index,
                    )

    def test_encryption_count_matches_real_stats(self, workload):
        parties, labels, params = workload
        real = _run(parties, labels, params, "real")
        # 2 statistics per instance per tree (g and h).
        n = parties[0].n_instances
        expected = 2 * n * params.n_trees
        total_ciphers = sum(
            len(m.grads) + len(m.hesses)
            for m in real.channel.log
            if type(m).__name__ == "EncryptedGradHessBatch"
        )
        assert total_ciphers == expected


class TestMockMode:
    def test_mock_ships_plain_sized_payloads(self, workload):
        parties, labels, params = workload
        counted = _run(parties, labels, params, "counted")
        mock = _run(parties, labels, params, "mock")
        # Mock mode still runs the protocol but its payloads are priced
        # by the scheduler as plaintext; the channel ledger itself uses
        # cipher sizing in both, so the models must agree regardless.
        for t_a, t_b in zip(counted.model.trees, mock.model.trees):
            assert set(t_a.nodes) == set(t_b.nodes)
