"""Tests for fleet serving (repro.serve.fleet) and canary rollout
(repro.serve.canary): consistent-hash routing stability, global event
loop determinism, bit-parity with a single runtime, burn-rate load
shedding, and the canary promote/rollback state machine."""

import numpy as np
import pytest

from repro.core.config import VF2BoostConfig
from repro.core.trainer import FederatedTrainer
from repro.gbdt.binning import bin_dataset
from repro.gbdt.params import GBDTParams
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serve.canary import CanaryConfig, CanaryController, golden_margins
from repro.serve.fleet import (
    FleetConfig,
    FleetRouter,
    ServingFleet,
    ShedPolicy,
)
from repro.serve.loadgen import LoadgenConfig, make_requests, run_open_loop
from repro.serve.registry import ModelRegistry
from repro.serve.session import ServeConfig, ServingRuntime
from repro.serve.slo import SLOPolicy


def _train(seed):
    rng = np.random.default_rng(seed)
    n, d = 220, 8
    features = rng.normal(size=(n, d))
    labels = ((features @ rng.normal(size=d)) > 0).astype(float)
    params = GBDTParams(n_trees=3, n_layers=4, n_bins=8)
    full = bin_dataset(features, params.n_bins)
    parties = [
        full.subset_features(np.arange(4, 8)),  # Party B (active)
        full.subset_features(np.arange(0, 4)),  # Party A (passive)
    ]
    config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
    result = FederatedTrainer(config).fit(parties, labels)
    return result.model, parties


@pytest.fixture(scope="module")
def trained():
    return _train(23)


@pytest.fixture(scope="module")
def trained_other():
    # A second model over the same feature split — the "bad" canary.
    return _train(29)


def _make_registry(model, parties):
    registry = ModelRegistry()
    registry.register(
        "v1",
        model,
        bin_edges={k: p.cut_points for k, p in enumerate(parties)},
        calibration_codes={k: p.codes for k, p in enumerate(parties)},
    )
    registry.activate("v1")
    return registry


def _feature_dims(parties):
    return {k: p.n_features for k, p in enumerate(parties)}


def _load(parties, **overrides):
    kwargs = dict(
        n_requests=96,
        feature_dims=_feature_dims(parties),
        seed=11,
        mode="open",
        rate=400.0,
        n_sessions=12,
        session_skew=1.0,
    )
    kwargs.update(overrides)
    return LoadgenConfig(**kwargs)


class TestRouter:
    def test_routing_is_deterministic_and_seeded(self):
        a = FleetRouter(4, seed=3)
        b = FleetRouter(4, seed=3)
        c = FleetRouter(4, seed=4)
        keys = list(range(500))
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]
        assert [a.route(k) for k in keys] != [c.route(k) for k in keys]

    def test_all_replicas_receive_traffic(self):
        router = FleetRouter(4, seed=0)
        owners = {router.route(k) for k in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_add_moves_at_most_k_over_n_sessions(self):
        router = FleetRouter(4, seed=0)
        keys = list(range(1000))
        before = {k: router.route(k) for k in keys}
        router.add(4)
        after = {k: router.route(k) for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        # Consistent hashing: every moved key moves TO the new replica,
        # and in expectation only K/N of them move at all.
        assert all(after[k] == 4 for k in moved)
        assert 0 < len(moved) <= len(keys) // 4

    def test_remove_then_readd_restores_mapping(self):
        router = FleetRouter(3, seed=5)
        keys = list(range(300))
        before = {k: router.route(k) for k in keys}
        router.remove(1)
        assert all(router.route(k) != 1 for k in keys)
        router.add(1)
        assert {k: router.route(k) for k in keys} == before

    def test_membership_errors(self):
        router = FleetRouter(2, seed=0)
        with pytest.raises(ValueError, match="already on the ring"):
            router.add(1)
        with pytest.raises(ValueError, match="not on the ring"):
            router.remove(7)
        assert router.members() == [0, 1]

    def test_empty_ring_refuses_routing(self):
        router = FleetRouter(1, seed=0)
        router.remove(0)
        with pytest.raises(LookupError, match="ring is empty"):
            router.route(0)


class TestPolicies:
    def test_shed_policy_validation(self):
        with pytest.raises(ValueError):
            ShedPolicy(burn_threshold=0.0)
        with pytest.raises(ValueError):
            ShedPolicy(min_window=0)

    def test_fleet_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(n_replicas=0)
        with pytest.raises(ValueError):
            FleetConfig(vnodes=0)


class TestFleetParity:
    def test_fleet_margins_bit_identical_to_single_runtime(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        requests = make_requests(_load(parties))

        single = ServingRuntime(registry)
        baseline = {
            o.request_id: o for o in run_open_loop(single, requests)
        }

        fleet = ServingFleet(
            registry, FleetConfig(n_replicas=3, seed=1, shed=None)
        )
        for request in requests:
            fleet.submit(request)
        completions = fleet.run()

        assert len(completions) == len(requests)
        for outcome in completions:
            reference = baseline[outcome.request_id]
            assert not outcome.shed
            assert np.array_equal(outcome.margins, reference.margins)
            assert np.array_equal(
                outcome.probabilities, reference.probabilities
            )

    def test_sessions_stick_to_one_replica(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        requests = make_requests(_load(parties))
        fleet = ServingFleet(
            registry, FleetConfig(n_replicas=3, seed=1, shed=None)
        )
        by_session = {}
        for request in requests:
            replica = fleet.router.route(request.session_key())
            by_session.setdefault(request.session_id, set()).add(replica)
        assert all(len(replicas) == 1 for replicas in by_session.values())

    def test_two_runs_are_byte_identical(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        requests = make_requests(_load(parties))

        def run_once():
            fleet = ServingFleet(registry, FleetConfig(n_replicas=2, seed=9))
            for request in requests:
                fleet.submit(request)
            return fleet.run()

        first, second = run_once(), run_once()
        assert [o.request_id for o in first] == [o.request_id for o in second]
        assert [o.finished for o in first] == [o.finished for o in second]
        assert all(
            np.array_equal(a.margins, b.margins)
            for a, b in zip(first, second)
        )

    def test_replica_tracks_are_prefixed(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        tracer = Tracer()
        fleet = ServingFleet(
            registry,
            FleetConfig(n_replicas=2, seed=1, shed=None),
            tracer=tracer,
        )
        for request in make_requests(_load(parties, n_requests=24)):
            fleet.submit(request)
        fleet.run()
        tracks = {span.track for span in tracer.spans}
        assert any(track.startswith("replica0.") for track in tracks)
        assert any(track.startswith("replica1.") for track in tracks)
        assert not any(track == "requests" for track in tracks)


class TestShedding:
    def _overloaded_fleet(self, registry, n_replicas=1):
        # 20 req/s of admission capacity per replica vs. a sustained
        # 3x overload trace at a nominal 20 req/s offered (60 req/s).
        # The slow nominal rate stretches arrivals over seconds so
        # completion feedback lands while the overload is still
        # arriving — shedding needs breach evidence in the window.
        return ServingFleet(
            registry,
            FleetConfig(
                n_replicas=n_replicas,
                seed=2,
                shed=ShedPolicy(burn_threshold=1.0, min_window=4),
                slo=SLOPolicy(
                    latency_slo=0.15,
                    window=8,
                    error_budget=0.5,
                    burn_alert=4.0,
                ),
            ),
            serve_config=ServeConfig(admission_cost=0.05, max_queue=4096),
        )

    def test_overload_sheds_and_counts(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        requests = make_requests(
            _load(parties, n_requests=200, rate=20.0, trace="overload")
        )
        fleet = self._overloaded_fleet(registry)
        for request in requests:
            fleet.submit(request)
        completions = fleet.run()

        shed = [o for o in completions if o.shed]
        served = [o for o in completions if not o.rejected]
        assert shed, "sustained overload must trigger shedding"
        assert len(shed) + len(served) == len(requests)
        counters = fleet.metrics.counters("fleet.")
        assert counters["shed"] == len(shed)
        assert counters["routed"] == len(served)
        assert counters["completed"] == len(served)
        # Shed outcomes are rejections with no fabricated prediction.
        assert all(o.rejected and o.margins.size == 0 for o in shed)
        assert fleet.summary()["shed"] == len(shed)

    def test_more_replicas_shed_less(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        requests = make_requests(
            _load(parties, n_requests=200, rate=20.0, trace="overload")
        )

        def shed_count(n_replicas):
            fleet = self._overloaded_fleet(registry, n_replicas)
            for request in requests:
                fleet.submit(request)
            fleet.run()
            return fleet.metrics.get("fleet.shed")

        assert shed_count(4) < shed_count(1)

    def test_shedding_disabled_serves_everything(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        requests = make_requests(
            _load(parties, n_requests=64, rate=20.0, trace="overload")
        )
        fleet = ServingFleet(
            registry,
            FleetConfig(n_replicas=1, seed=2, shed=None),
            serve_config=ServeConfig(admission_cost=0.05, max_queue=4096),
        )
        for request in requests:
            fleet.submit(request)
        completions = fleet.run()
        assert len(completions) == len(requests)
        assert not any(o.shed for o in completions)


class TestFleetMetrics:
    def test_rollup_lands_in_shared_registry(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        shared = MetricsRegistry()
        fleet = ServingFleet(
            registry,
            FleetConfig(n_replicas=2, seed=1, shed=None),
            metrics_registry=shared,
        )
        for request in make_requests(_load(parties, n_requests=48)):
            fleet.submit(request)
        fleet.run()
        snapshot = shared.snapshot()
        assert snapshot["counters"]["fleet.routed"] == 48
        assert snapshot["counters"]["fleet.completed"] == 48
        assert "fleet.p99_max" in snapshot["gauges"]
        assert "fleet.replica0.burn_rate" in snapshot["gauges"]
        # Per-replica routed counters partition the total.
        per_replica = sum(
            snapshot["counters"].get(f"fleet.replica{i}.routed", 0)
            for i in range(2)
        )
        assert per_replica == 48
        # Replica runtimes keep private serve.* sinks: no collision.
        assert not any(
            name.startswith("serve.") for name in snapshot["counters"]
        )


class TestCanary:
    def test_identical_model_auto_promotes(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        registry.register(
            "v2", model, {k: p.cut_points for k, p in enumerate(parties)}
        )
        controller = CanaryController(
            registry,
            CanaryConfig(
                candidate="v2",
                traffic_fraction=0.5,
                decision_after=10,
                seed=3,
            ),
        )
        fleet = ServingFleet(
            registry,
            FleetConfig(n_replicas=2, seed=3, shed=None),
            canary=controller,
        )
        for request in make_requests(_load(parties)):
            fleet.submit(request)
        fleet.run()
        assert controller.state == "promoted"
        assert controller.mismatches == 0
        assert registry.active().version == "v2"
        assert controller.canary_served >= 10

    def test_bad_canary_rolls_back_with_zero_promoted_traffic(
        self, trained, trained_other
    ):
        model, parties = trained
        bad_model, bad_parties = trained_other
        registry = _make_registry(model, parties)
        registry.register(
            "v2-bad",
            bad_model,
            {k: p.cut_points for k, p in enumerate(bad_parties)},
        )
        controller = CanaryController(
            registry,
            CanaryConfig(
                candidate="v2-bad",
                traffic_fraction=0.5,
                decision_after=50,
                seed=3,
            ),
        )
        fleet = ServingFleet(
            registry,
            FleetConfig(n_replicas=2, seed=3, shed=None),
            canary=controller,
        )
        for request in make_requests(_load(parties)):
            fleet.submit(request)
        completions = fleet.run()

        assert controller.state == "rolled_back"
        assert controller.mismatches == 1
        # The hot-swap pointer never left the incumbent: zero promoted
        # traffic. Candidate-served completions are exactly the canary
        # slice's in-flight requests admitted before the rollback fired
        # — never a non-slice session, never a post-rollback admission.
        assert registry.active().version == "v1"
        by_id = {r.request_id: r for r in make_requests(_load(parties))}
        candidate_served = [
            o for o in completions if o.version == "v2-bad"
        ]
        assert candidate_served
        assert all(
            controller._in_slice(by_id[o.request_id].session_key())
            for o in candidate_served
        )
        rollback_time = [
            e for e in controller.events if e["event"] == "rolled_back"
        ][0]["time"]
        assert all(o.admitted <= rollback_time for o in candidate_served)

    def test_banded_mode_promotes_comparable_model(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        registry.register(
            "v2", model, {k: p.cut_points for k, p in enumerate(parties)}
        )
        controller = CanaryController(
            registry,
            CanaryConfig(
                candidate="v2",
                traffic_fraction=0.5,
                decision_after=10,
                seed=3,
                expect_identical=False,
                p99_band=2.0,
                min_baseline=5,
            ),
        )
        fleet = ServingFleet(
            registry,
            FleetConfig(n_replicas=2, seed=3, shed=None),
            canary=controller,
        )
        for request in make_requests(_load(parties)):
            fleet.submit(request)
        fleet.run()
        assert controller.state == "promoted"
        assert registry.active().version == "v2"

    def test_candidate_must_differ_from_active(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        with pytest.raises(ValueError, match="already the active version"):
            CanaryController(registry, CanaryConfig(candidate="v1"))

    def test_golden_margins_match_serving_runtime(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        requests = make_requests(_load(parties, n_requests=16))
        runtime = ServingRuntime(registry)
        outcomes = run_open_loop(runtime, requests)
        version = registry.active()
        by_id = {r.request_id: r for r in requests}
        for outcome in outcomes:
            golden = golden_margins(version, by_id[outcome.request_id].rows)
            assert np.array_equal(outcome.margins, golden)

    def test_slice_is_deterministic(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        registry.register(
            "v2", model, {k: p.cut_points for k, p in enumerate(parties)}
        )
        config = CanaryConfig(candidate="v2", traffic_fraction=0.3, seed=5)
        a = CanaryController(registry, config)
        b = CanaryController(registry, config)
        keys = list(range(200))
        assert [a._in_slice(k) for k in keys] == [b._in_slice(k) for k in keys]
        fraction = sum(a._in_slice(k) for k in keys) / len(keys)
        assert 0.15 < fraction < 0.45
