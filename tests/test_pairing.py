"""Tests for gradient-pair packing (crypto and protocol integration)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import VF2BoostConfig
from repro.core.trainer import FederatedTrainer
from repro.crypto.ciphertext import PaillierContext
from repro.crypto.pairing import GradHessCodec
from repro.gbdt.binning import bin_dataset
from repro.gbdt.boosting import GBDTTrainer
from repro.gbdt.params import GBDTParams

CTX = PaillierContext.create(256, seed=51, jitter=1)


class TestCodec:
    codec = GradHessCodec(CTX, grad_bound=1.0, max_count=1000)

    def test_single_pair_round_trip(self):
        cipher = self.codec.encrypt_pair(0.75, 0.2)
        sums = self.codec.decode_sums(cipher)
        assert sums.grad_sum == pytest.approx(0.75, abs=1e-6)
        assert sums.hess_sum == pytest.approx(0.2, abs=1e-6)
        assert sums.count == 1

    def test_negative_gradient(self):
        sums = self.codec.decode_sums(self.codec.encrypt_pair(-0.9, 0.01))
        assert sums.grad_sum == pytest.approx(-0.9, abs=1e-6)

    @given(
        st.lists(
            st.tuples(st.floats(-1, 1), st.floats(0, 0.25)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_accumulated_sums(self, pairs):
        total = None
        for g, h in pairs:
            cipher = self.codec.encrypt_pair(g, h)
            total = cipher if total is None else self.codec.add(total, cipher)
        sums = self.codec.decode_sums(total)
        assert sums.count == len(pairs)
        assert sums.grad_sum == pytest.approx(sum(g for g, _ in pairs), abs=1e-4)
        assert sums.hess_sum == pytest.approx(sum(h for _, h in pairs), abs=1e-4)

    def test_accumulation_never_scales(self):
        ciphers = [self.codec.encrypt_pair(0.5, 0.1) for _ in range(10)]
        before = CTX.stats.snapshot()
        total = ciphers[0]
        for cipher in ciphers[1:]:
            total = self.codec.add(total, cipher)
        assert CTX.stats.diff(before).scalings == 0

    def test_one_encryption_per_pair(self):
        before = CTX.stats.snapshot()
        self.codec.encrypt_pair(0.1, 0.1)
        assert CTX.stats.diff(before).encryptions == 1

    def test_bound_enforced(self):
        with pytest.raises(ValueError):
            self.codec.encode_pair(1.5, 0.1)
        with pytest.raises(ValueError):
            self.codec.encode_pair(0.5, -0.1)

    def test_capacity_check(self):
        small = PaillierContext.create(64, seed=5)
        with pytest.raises(ValueError):
            GradHessCodec(small, grad_bound=1.0, max_count=10**9)

    def test_zero_cipher(self):
        sums = self.codec.decode_sums(self.codec.zero())
        assert sums.count == 0
        assert sums.grad_sum == 0.0
        assert sums.hess_sum == 0.0


class TestTrainerIntegration:
    def _setup(self):
        rng = np.random.default_rng(3)
        n, d = 120, 8
        features = rng.normal(size=(n, d))
        labels = ((features @ rng.normal(size=d)) > 0).astype(float)
        params = GBDTParams(n_trees=2, n_layers=3, n_bins=6)
        full = bin_dataset(features, params.n_bins)
        parties = [
            full.subset_features(np.arange(4, 8)),
            full.subset_features(np.arange(0, 4)),
        ]
        return full, parties, labels, params

    def test_pair_packed_training_is_lossless(self):
        full, parties, labels, params = self._setup()
        plaintext = GBDTTrainer(params)
        plaintext.fit_binned(full, labels)
        config = VF2BoostConfig(
            params=params, crypto_mode="real", key_bits=256,
            pair_packing=True, histogram_packing=False, exponent_jitter=1,
        )
        result = FederatedTrainer(config).fit(parties, labels)
        assert [r.train_loss for r in result.history] == pytest.approx(
            [r.train_loss for r in plaintext.history], abs=1e-4
        )

    def test_pair_packing_halves_gradient_stream(self):
        __, parties, labels, params = self._setup()
        base_config = VF2BoostConfig(
            params=params, crypto_mode="real", key_bits=256,
            pair_packing=False, histogram_packing=False, exponent_jitter=1,
        )
        pair_config = base_config.replace(pair_packing=True)
        base_bytes = (
            FederatedTrainer(base_config).fit(parties, labels).channel.total_bytes()
        )
        pair_bytes = (
            FederatedTrainer(pair_config).fit(parties, labels).channel.total_bytes()
        )
        assert pair_bytes < 0.6 * base_bytes

    def test_counted_mode_accounts_pairs(self):
        __, parties, labels, params = self._setup()
        config = VF2BoostConfig(
            params=params, crypto_mode="counted", pair_packing=True,
            histogram_packing=False,
        )
        result = FederatedTrainer(config).fit(parties, labels)
        base = FederatedTrainer(
            config.replace(pair_packing=False)
        ).fit(parties, labels)
        assert result.channel.total_bytes() < base.channel.total_bytes()

    def test_mutual_exclusion_with_histogram_packing(self):
        with pytest.raises(ValueError):
            VF2BoostConfig(
                crypto_mode="real", pair_packing=True, histogram_packing=True
            )


class TestSchedulerIntegration:
    def test_pair_packing_near_halves_makespan(self):
        from repro.bench.costmodel import CostModel
        from repro.core.profile import analytic_trace
        from repro.core.protocol import ProtocolScheduler
        from repro.fed.cluster import PAPER_CLUSTER

        trace = analytic_trace(1_000_000, 5000, [5000], 0.01, 20, 5)
        params = GBDTParams(n_layers=5, n_bins=20)
        base = ProtocolScheduler(
            VF2BoostConfig(params=params, histogram_packing=False),
            CostModel.paper(), PAPER_CLUSTER,
        ).schedule(trace)
        pair = ProtocolScheduler(
            VF2BoostConfig(
                params=params, histogram_packing=False, pair_packing=True
            ),
            CostModel.paper(), PAPER_CLUSTER,
        ).schedule(trace)
        assert 1.6 < base.makespan / pair.makespan < 2.4
        assert pair.bytes_per_tree < 0.6 * base.bytes_per_tree
