"""Tests for the static analyzers of :mod:`repro.analysis`.

The last test class is the tier-1 CI gate: the repository itself must
pass ``python -m repro.analysis --strict`` with zero findings.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis import cryptolint, determinism, schedule, taint
from repro.analysis.astutils import PackageIndex
from repro.analysis.cli import main, run_analysis
from repro.analysis.findings import (
    Baseline,
    Finding,
    Reporter,
    Severity,
    parse_suppressions,
)
from repro.fed.simtime import SimTask

FIXTURES = Path(__file__).parent / "analysis_fixtures" / "leakypkg"

#: (rule id, fixture file the rule must fire in)
EXPECTED_RULES = [
    ("PB001", "leakypkg/fed/leaky.py"),
    ("PB002", "leakypkg/fed/rogue.py"),
    ("PB002", "leakypkg/serve/rogue_batch.py"),
    ("DET001", "leakypkg/serve/rogue_batch.py"),
    ("DET001", "leakypkg/serve/fleet_shed.py"),
    ("DET001", "leakypkg/obs/clocky.py"),
    ("DET001", "leakypkg/obs/whatif_clock.py"),
    ("DET001", "leakypkg/obs/alert_clock.py"),
    ("DET001", "leakypkg/bench/stale_profile.py"),
    ("CR001", "leakypkg/crosskey.py"),
    ("CR002", "leakypkg/crosskey.py"),
    ("CR003", "leakypkg/crypto/ciphertext.py"),
    ("DET001", "leakypkg/fed/clock.py"),
    ("DET002", "leakypkg/fed/clock.py"),
    ("DET003", "leakypkg/fed/clock.py"),
    ("DET001", "leakypkg/fed/clockplan.py"),
    ("DET002", "leakypkg/fed/clockplan.py"),
    ("CR101", "leakypkg/crypto/domains_bad.py"),
    ("CR102", "leakypkg/crypto/domains_bad.py"),
    ("CR103", "leakypkg/crypto/domains_bad.py"),
    ("CR104", "leakypkg/crypto/domains_bad.py"),
    ("CR105", "leakypkg/crypto/raw_pow.py"),
    ("SUP001", "leakypkg/unused_allow.py"),
]


@pytest.fixture(scope="module")
def fixture_reporter():
    return run_analysis(root=FIXTURES, package="leakypkg", with_schedule=False)


def _task(task_id, deps=(), start=0.0, end=1.0, resource="cpu", lane=0):
    return SimTask(
        name=f"t{task_id}",
        phase="Test",
        resource=resource,
        lane=lane,
        start=start,
        end=end,
        task_id=task_id,
        deps=tuple(deps),
    )


class TestRulesFire:
    @pytest.mark.parametrize("rule_id,file", EXPECTED_RULES)
    def test_rule_fires_in_expected_file(self, fixture_reporter, rule_id, file):
        hits = [f for f in fixture_reporter.findings if f.rule_id == rule_id]
        assert hits, f"{rule_id} did not fire on the fixture package"
        assert any(f.file == file for f in hits)

    def test_no_unexpected_rules(self, fixture_reporter):
        assert {f.rule_id for f in fixture_reporter.findings} == {
            rule for rule, _ in EXPECTED_RULES
        }

    def test_counted_crypto_function_not_flagged(self, fixture_reporter):
        # counted_add bumps self.stats.additions; only silent_add fires.
        cr3 = [f for f in fixture_reporter.findings if f.rule_id == "CR003"]
        assert len(cr3) == 1
        assert "silent_add" in cr3[0].message

    def test_strict_cli_rejects_fixture_package(self, capsys):
        rc = main(
            [
                "--root",
                str(FIXTURES),
                "--package",
                "leakypkg",
                "--strict",
                "--no-schedule",
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        for rule_id, _ in EXPECTED_RULES:
            assert rule_id in out


class TestSuppressions:
    @pytest.mark.parametrize("rule_id,file", EXPECTED_RULES)
    def test_inline_allow_silences_each_rule(self, tmp_path, fixture_reporter, rule_id, file):
        copy_root = tmp_path / "leakypkg"
        shutil.copytree(FIXTURES, copy_root)
        for finding in fixture_reporter.findings:
            if finding.rule_id != rule_id:
                continue
            # A rule may fire in several fixture files; suppress each
            # finding in the file it actually lives in.
            target = copy_root / Path(finding.file).relative_to("leakypkg")
            lines = target.read_text().splitlines()
            lines[finding.line - 1] += f"  # repro: allow[{rule_id}]"
            target.write_text("\n".join(lines) + "\n")
        reporter = run_analysis(root=copy_root, package="leakypkg", with_schedule=False)
        assert not [f for f in reporter.findings if f.rule_id == rule_id]
        assert [f for f in reporter.suppressed if f.rule_id == rule_id]

    def test_allow_on_preceding_comment_line(self, tmp_path):
        pkg = tmp_path / "pkg"
        (pkg / "fed").mkdir(parents=True)
        (pkg / "fed" / "timed.py").write_text(
            "import time\n"
            "\n"
            "def stamp():\n"
            "    # repro: allow[DET001]\n"
            "    return time.time()\n"
        )
        reporter = determinism.run(PackageIndex(pkg, package="pkg"))
        assert not reporter.findings
        assert len(reporter.suppressed) == 1

    def test_allow_file_silences_whole_module(self, tmp_path):
        pkg = tmp_path / "pkg"
        (pkg / "bench").mkdir(parents=True)
        (pkg / "bench" / "measured.py").write_text(
            "# repro: allow-file[DET001]\n"
            "import time\n"
            "\n"
            "def one():\n"
            "    return time.time()\n"
            "\n"
            "def two():\n"
            "    return time.perf_counter()\n"
        )
        reporter = determinism.run(PackageIndex(pkg, package="pkg"))
        assert not reporter.findings
        assert len(reporter.suppressed) == 2

    def test_allow_file_is_rule_specific(self, tmp_path):
        pkg = tmp_path / "pkg"
        (pkg / "bench").mkdir(parents=True)
        (pkg / "bench" / "measured.py").write_text(
            "# repro: allow-file[DET001]\n"
            "import random\n"
            "import time\n"
            "\n"
            "def one():\n"
            "    return time.time()\n"
            "\n"
            "def two():\n"
            "    return random.Random()\n"
        )
        reporter = determinism.run(PackageIndex(pkg, package="pkg"))
        assert [f.rule_id for f in reporter.findings] == ["DET002"]

    def test_parse_suppressions_shapes(self):
        allowed = parse_suppressions(
            [
                "x = 1  # repro: allow[PB001, CR001]",
                "y = 2",
                "# repro: allow-file[DET001]",
                "z = 3  # repro: allow[*]",
            ]
        )
        assert allowed[1] == {"PB001", "CR001"}
        assert allowed[0] == {"DET001"}
        assert allowed[4] == {"*"}
        assert 2 not in allowed


class TestScheduleValidator:
    def test_healthy_graph_is_clean(self):
        tasks = [
            _task(0, start=0.0, end=1.0),
            _task(1, deps=(0,), start=1.0, end=2.0),
        ]
        assert validate(tasks) == []

    def test_cycle_detected(self):
        tasks = [
            _task(0, deps=(1,), start=0.0, end=1.0, lane=0),
            _task(1, deps=(0,), start=1.0, end=2.0, lane=1),
        ]
        assert "SCH001" in {f.rule_id for f in validate(tasks)}

    def test_dangling_dependency_detected(self):
        tasks = [_task(0, deps=(7,))]
        rules = {f.rule_id for f in validate(tasks)}
        assert rules == {"SCH002"}

    def test_lane_overlap_detected(self):
        tasks = [
            _task(0, start=0.0, end=2.0, resource="cpuA", lane=3),
            _task(1, start=1.0, end=3.0, resource="cpuA", lane=3),
        ]
        rules = {f.rule_id for f in validate(tasks)}
        assert rules == {"SCH003"}

    def test_causality_violation_detected(self):
        tasks = [
            _task(0, start=0.0, end=2.0, lane=0),
            _task(1, deps=(0,), start=1.0, end=3.0, lane=1),
        ]
        rules = {f.rule_id for f in validate(tasks)}
        assert rules == {"SCH004"}

    def test_real_scheduler_graphs_validate(self):
        reporter = schedule.self_check(n_trees=1)
        assert reporter.findings == []


def validate(tasks):
    return schedule.validate_task_graph(tasks, "test")


class TestReportingLayer:
    def _finding(self, rule="PB001", file="a.py", line=3, severity=Severity.ERROR):
        return Finding(
            rule_id=rule, severity=severity, file=file, line=line, message="m"
        )

    def test_sorted_by_severity_then_location(self):
        reporter = Reporter()
        reporter.emit(self._finding(rule="PB002", severity=Severity.WARNING))
        reporter.emit(self._finding(rule="CR001", file="b.py"))
        reporter.emit(self._finding(rule="PB001", file="a.py"))
        ordered = reporter.sorted_findings()
        assert [f.rule_id for f in ordered] == ["PB001", "CR001", "PB002"]

    def test_render_format(self):
        text = self._finding().render()
        assert text == "a.py:3: error: [PB001] m"

    def test_baseline_roundtrip_and_ratchet(self, tmp_path):
        old = [self._finding(), self._finding(line=9)]
        baseline = Baseline.from_findings(old)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        # Two frozen findings: a third one in the same file is new.
        new = old + [self._finding(line=20)]
        fresh = loaded.filter_new(new)
        assert len(fresh) == 1
        assert fresh[0].line == 20
        # A different rule is new even in a known file.
        assert loaded.filter_new([self._finding(rule="CR002")])


class TestRepoGate:
    """The repository itself must stay clean — this is the CI gate."""

    def test_repo_passes_strict_analysis(self, capsys):
        rc = main(["--strict"])
        out = capsys.readouterr().out
        assert rc == 0, f"static analysis gate failed:\n{out}"

    def test_repo_taint_and_crypto_and_determinism_clean(self):
        reporter = run_analysis(with_schedule=False)
        assert reporter.findings == []
        # The deliberate disclosures are suppressed, not silently absent.
        suppressed_rules = {f.rule_id for f in reporter.suppressed}
        assert "PB001" in suppressed_rules  # LeafWeightBroadcast in trainer
        assert "DET001" in suppressed_rules  # measured-mode bench modules
