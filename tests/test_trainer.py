"""Tests for the federated trainer: losslessness, privacy, traces."""

import numpy as np
import pytest

from repro.core.config import VF2BoostConfig
from repro.core.trainer import FederatedTrainer
from repro.fed.messages import (
    CountedCipherPayload,
    EncryptedGradHessBatch,
    EncryptedHistogramMessage,
    InstancePlacement,
    PackedHistogramMessage,
    SplitAnswer,
    SplitDecision,
)
from repro.gbdt.binning import bin_dataset
from repro.gbdt.boosting import GBDTTrainer
from repro.gbdt.params import GBDTParams


class TestLosslessness:
    """The protocol must match co-located plaintext training exactly."""

    def test_counted_mode_matches_plaintext(
        self, small_classification, small_params, party_datasets, counted_config
    ):
        features, labels = small_classification
        plaintext = GBDTTrainer(small_params)
        plaintext.fit(features, labels)
        result = FederatedTrainer(counted_config).fit(*party_datasets)
        federated_losses = [r.train_loss for r in result.history]
        plaintext_losses = [r.train_loss for r in plaintext.history]
        assert federated_losses == pytest.approx(plaintext_losses, abs=1e-12)

    def test_real_crypto_matches_plaintext(
        self, small_classification, small_params, real_config
    ):
        features, labels = small_classification
        features, labels = features[:120], labels[:120]
        params = small_params.replace(n_trees=2, n_layers=3, n_bins=6)
        full = bin_dataset(features, params.n_bins)
        parties = [
            full.subset_features(np.arange(5, 10)),
            full.subset_features(np.arange(0, 5)),
        ]
        plaintext = GBDTTrainer(params)
        plaintext.fit_binned(full, labels)
        config = real_config.replace(params=params)
        result = FederatedTrainer(config).fit(parties, labels)
        federated = [r.train_loss for r in result.history]
        reference = [r.train_loss for r in plaintext.history]
        assert federated == pytest.approx(reference, abs=1e-4)

    def test_counted_equals_real_models(self, small_classification, small_params):
        features, labels = small_classification
        features, labels = features[:100], labels[:100]
        params = small_params.replace(n_trees=2, n_layers=3, n_bins=6)
        full = bin_dataset(features, params.n_bins)
        parties = [
            full.subset_features(np.arange(5, 10)),
            full.subset_features(np.arange(0, 5)),
        ]
        counted = FederatedTrainer(
            VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
        ).fit(parties, labels)
        real = FederatedTrainer(
            VF2BoostConfig.vf2boost(
                params=params, crypto_mode="real", key_bits=256, exponent_jitter=2
            )
        ).fit(parties, labels)
        for t_counted, t_real in zip(counted.model.trees, real.model.trees):
            for node_id, node in t_counted.nodes.items():
                other = t_real.nodes[node_id]
                assert node.is_leaf == other.is_leaf
                if not node.is_leaf:
                    assert (node.owner, node.feature, node.bin_index) == (
                        other.owner, other.feature, other.bin_index,
                    )

    @pytest.mark.parametrize("packing", [False, True])
    @pytest.mark.parametrize("reordered", [False, True])
    def test_real_crypto_flag_combinations(
        self, small_classification, packing, reordered
    ):
        features, labels = small_classification
        features, labels = features[:80], labels[:80]
        params = GBDTParams(n_trees=1, n_layers=3, n_bins=5)
        full = bin_dataset(features, params.n_bins)
        parties = [
            full.subset_features(np.arange(5, 10)),
            full.subset_features(np.arange(0, 5)),
        ]
        plaintext = GBDTTrainer(params)
        plaintext.fit_binned(full, labels)
        config = VF2BoostConfig(
            params=params,
            crypto_mode="real",
            key_bits=256,
            exponent_jitter=2,
            histogram_packing=packing,
            reordered_accumulation=reordered,
        )
        result = FederatedTrainer(config).fit(parties, labels)
        assert result.history[0].train_loss == pytest.approx(
            plaintext.history[0].train_loss, abs=1e-4
        )


class TestFederatedGainOverSingleParty:
    def test_federated_beats_party_b_only(self, small_classification, small_params):
        features, labels = small_classification
        train_f, valid_f = features[:300], features[300:]
        train_l, valid_l = labels[:300], labels[300:]
        params = small_params.replace(n_trees=8, n_layers=5)
        # Party B alone (columns 5..9).
        b_only = GBDTTrainer(params)
        b_only.fit(train_f[:, 5:], train_l, valid_f[:, 5:], valid_l)
        # Federated over both parties.
        full = bin_dataset(train_f, params.n_bins)
        parties = [
            full.subset_features(np.arange(5, 10)),
            full.subset_features(np.arange(0, 5)),
        ]
        from repro.bench.experiments import _bin_with_reference

        valid_codes_full = _bin_with_reference(valid_f, full)
        valid_codes = {0: valid_codes_full[:, 5:], 1: valid_codes_full[:, :5]}
        config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
        result = FederatedTrainer(config).fit(parties, train_l, valid_codes, valid_l)
        assert result.history[-1].valid_auc > b_only.history[-1].valid_auc


class TestPrivacyInvariants:
    """What crosses the channel must never expose labels or features."""

    def test_real_mode_gradient_stream_is_ciphertext(
        self, small_classification, real_config
    ):
        features, labels = small_classification
        features, labels = features[:60], labels[:60]
        params = real_config.params.replace(n_trees=1, n_layers=3, n_bins=5)
        full = bin_dataset(features, params.n_bins)
        parties = [
            full.subset_features(np.arange(5, 10)),
            full.subset_features(np.arange(0, 5)),
        ]
        result = FederatedTrainer(real_config.replace(params=params)).fit(
            parties, labels
        )
        for message in result.channel.log:
            if message.receiver != 0 and isinstance(
                message,
                (EncryptedGradHessBatch, EncryptedHistogramMessage, PackedHistogramMessage),
            ):
                assert message.carries_ciphertext_only

    def test_passive_split_disclosed_as_bin_index_only(
        self, party_datasets, counted_config
    ):
        result = FederatedTrainer(counted_config).fit(*party_datasets)
        decisions = [
            m for m in result.channel.log if isinstance(m, SplitDecision)
        ]
        assert decisions, "some splits should belong to Party A"
        for decision in decisions:
            # The only payload toward the owner is a flat bin index.
            assert decision.bin_flat_index >= 0
            assert not hasattr(decision, "threshold")

    def test_thresholds_of_passive_splits_unknown_to_model_consumers(
        self, party_datasets, counted_config
    ):
        result = FederatedTrainer(counted_config).fit(*party_datasets)
        owners = result.model.split_counts_by_owner()
        assert 1 in owners, "Party A should win some splits"
        # Placement crosses as bitmaps (one bit per instance).
        placements = [
            m
            for m in result.channel.log
            if isinstance(m, (InstancePlacement, SplitAnswer))
        ]
        assert placements
        for message in placements:
            assert message.placement.dtype == np.bool_

    def test_counted_mode_sends_only_counters(self, party_datasets, counted_config):
        result = FederatedTrainer(counted_config).fit(*party_datasets)
        bulk = [
            m for m in result.channel.log if isinstance(m, CountedCipherPayload)
        ]
        assert bulk
        assert all(m.n_ciphers > 0 for m in bulk)


class TestTraceRecording:
    def test_trace_shapes(self, party_datasets, counted_config):
        result = FederatedTrainer(counted_config).fit(*party_datasets)
        trace = result.trace
        assert len(trace.trees) == counted_config.params.n_trees
        assert trace.n_instances == party_datasets[0][0].n_instances
        assert trace.n_parties == 2

    def test_dirty_flags_match_owners(self, party_datasets, counted_config):
        result = FederatedTrainer(counted_config).fit(*party_datasets)
        for tree in result.trace.trees:
            for layer in tree.layers:
                for node in layer.nodes:
                    if node.is_split:
                        assert node.dirty == (node.owner != 0)

    def test_split_ratio_tracks_feature_share(self, small_classification):
        # With B owning 8 of 10 informative columns, B should win most splits.
        features, labels = small_classification
        params = GBDTParams(n_trees=4, n_layers=4, n_bins=10)
        full = bin_dataset(features, params.n_bins)
        parties = [
            full.subset_features(np.arange(2, 10)),  # B: 8 columns
            full.subset_features(np.arange(0, 2)),  # A: 2 columns
        ]
        config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
        result = FederatedTrainer(config).fit(parties, labels)
        assert result.trace.split_ratio_of_active() > 0.5

    def test_bytes_accounted(self, party_datasets, counted_config):
        result = FederatedTrainer(counted_config).fit(*party_datasets)
        assert result.channel.total_bytes() > 0

    def test_packing_reduces_counted_bytes(self, party_datasets, small_params):
        packed_cfg = VF2BoostConfig.vf2boost(
            params=small_params, crypto_mode="counted"
        )
        raw_cfg = packed_cfg.replace(histogram_packing=False)
        packed_bytes = (
            FederatedTrainer(packed_cfg).fit(*party_datasets).channel.bytes_toward(0)
        )
        raw_bytes = (
            FederatedTrainer(raw_cfg).fit(*party_datasets).channel.bytes_toward(0)
        )
        assert packed_bytes < raw_bytes


class TestMultiParty:
    def test_three_party_training(self, small_classification):
        features, labels = small_classification
        params = GBDTParams(n_trees=2, n_layers=4, n_bins=8)
        full = bin_dataset(features, params.n_bins)
        parties = [
            full.subset_features(np.arange(6, 10)),  # B
            full.subset_features(np.arange(0, 3)),  # A1
            full.subset_features(np.arange(3, 6)),  # A2
        ]
        config = VF2BoostConfig.vf2boost(
            params=params, crypto_mode="counted", n_passive_parties=2
        )
        result = FederatedTrainer(config).fit(parties, labels)
        assert len(result.model.trees) == 2
        assert result.trace.n_parties == 3
        # Matches plaintext co-located training.
        plaintext = GBDTTrainer(params)
        plaintext.fit(features, labels)
        assert [r.train_loss for r in result.history] == pytest.approx(
            [r.train_loss for r in plaintext.history], abs=1e-10
        )


class TestValidation:
    def test_misaligned_instances_rejected(self, party_datasets, counted_config):
        parties, labels = party_datasets
        truncated = parties[1].subset_instances(np.arange(10))
        with pytest.raises(ValueError):
            FederatedTrainer(counted_config).fit([parties[0], truncated], labels)

    def test_label_mismatch_rejected(self, party_datasets, counted_config):
        parties, labels = party_datasets
        with pytest.raises(ValueError):
            FederatedTrainer(counted_config).fit(parties, labels[:-1])

    def test_single_party_rejected(self, party_datasets, counted_config):
        parties, labels = party_datasets
        with pytest.raises(ValueError):
            FederatedTrainer(counted_config).fit(parties[:1], labels)
