"""Tests for the text formatting helpers in :mod:`repro.bench.report`."""

from repro.bench.report import (
    format_bytes,
    format_ratio,
    format_seconds,
    format_table,
    phase_table,
)


class TestScalarFormatters:
    def test_seconds_three_regimes(self):
        assert format_seconds(0.1234) == "0.123"
        assert format_seconds(1.26) == "1.3"
        assert format_seconds(99.96) == "100.0"
        assert format_seconds(100.0) == "100"
        assert format_seconds(1234.5) == "1234"

    def test_seconds_zero(self):
        assert format_seconds(0.0) == "0.000"

    def test_ratio(self):
        assert format_ratio(1.0) == "1.00x"
        assert format_ratio(25.375) == "25.38x"

    def test_bytes_unit_ladder(self):
        assert format_bytes(512) == "512.0B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(3 * 1024**2) == "3.0MB"
        assert format_bytes(5 * 1024**3) == "5.0GB"
        assert format_bytes(2 * 1024**4) == "2.0TB"

    def test_bytes_never_overflow_ladder(self):
        # Beyond TB the value keeps growing in TB rather than erroring.
        assert format_bytes(1024**5).endswith("TB")


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(
            ["name", "value"],
            [["alpha", "1"], ["b", "22"]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        header, rule, *rows = lines[1:]
        assert header.split(" | ") == ["name ", "value"]
        assert set(rule) == {"-", "+"}
        assert len(rule) == len(header)
        # Every row is padded to the same width per column.
        assert rows[0] == "alpha | 1    "
        assert rows[1] == "b     | 22   "

    def test_column_width_tracks_widest_cell(self):
        text = format_table(["h"], [["longercell"]])
        lines = text.splitlines()
        assert all(len(line) == len("longercell") for line in lines)


class TestPhaseTable:
    def test_sorted_by_descending_seconds_with_total(self):
        text = phase_table({"Split": 1.0, "Histogram": 3.0, "Leaf": 1.0})
        lines = text.splitlines()
        names = [line.split(" | ")[0].strip() for line in lines[2:]]
        # Ties broken alphabetically; total row is last.
        assert names == ["Histogram", "Leaf", "Split", "total"]
        total_row = lines[-1]
        assert "100.0%" in total_row
        assert "5.0" in total_row

    def test_share_column(self):
        text = phase_table({"A": 3.0, "B": 1.0})
        rows = text.splitlines()[2:]
        assert "75.0%" in rows[0]
        assert "25.0%" in rows[1]

    def test_zero_grand_total_uses_dashes(self):
        text = phase_table({"A": 0.0})
        for row in text.splitlines()[2:]:
            assert row.rstrip().endswith("-")

    def test_custom_title(self):
        assert phase_table({"A": 1.0}, title="Phases").splitlines()[0] == "Phases"
