"""Tests for host calibration profiles and drift detection
(:mod:`repro.bench.calibrate`)."""

import dataclasses
import json

import pytest

from repro.bench.calibrate import (
    DEFAULT_TOLERANCES,
    UNIT_COST_FIELDS,
    CalibrationProfile,
    calibrate,
    check_drift,
    host_fingerprint,
    paper_ratios,
)
from repro.bench.costmodel import CostModel


class FakeTimer:
    """Monotonic fake clock: each read advances by a fixed step."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def fake_calibrate(**kwargs):
    kwargs.setdefault("key_bits", 256)
    kwargs.setdefault("samples", 8)
    return calibrate(timer=FakeTimer(), **kwargs)


def paper_profile(**overrides):
    """A synthetic profile whose ratios match the paper exactly."""
    cost = CostModel.paper()
    if overrides:
        cost = dataclasses.replace(cost, **overrides)
    # Ideal packing: gain equals width, efficiency 1.0.
    return CalibrationProfile.from_cost_model(
        cost, key_bits=2048, packing_gain=24.0, pack_width=24
    )


class TestCalibrate:
    def test_fake_timer_is_deterministic(self):
        assert fake_calibrate().to_dict() == fake_calibrate().to_dict()

    def test_profile_covers_all_unit_costs(self):
        profile = fake_calibrate()
        assert set(profile.unit_costs) == set(UNIT_COST_FIELDS)
        assert all(value > 0 for value in profile.unit_costs.values())
        assert profile.cipher_bytes > 0
        assert profile.pack_width >= 1

    def test_host_fingerprint_recorded(self):
        profile = fake_calibrate()
        assert profile.host == host_fingerprint()
        assert "python" in profile.host

    def test_save_load_round_trip(self, tmp_path):
        profile = fake_calibrate()
        path = tmp_path / "profile.json"
        profile.save(path)
        loaded = CalibrationProfile.load(path)
        assert loaded == profile
        # The artifact itself is versioned, sorted JSON.
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert list(data["unit_costs"]) == sorted(data["unit_costs"])

    def test_cost_model_round_trip(self):
        profile = fake_calibrate()
        cost = CostModel.from_profile(profile)
        for name in UNIT_COST_FIELDS:
            assert getattr(cost, name) == profile.unit_costs[name]
        assert cost.cipher_bytes == profile.cipher_bytes
        assert profile.cost_model() == cost

    def test_from_cost_model_preserves_paper_constants(self):
        profile = paper_profile()
        assert profile.cost_model() == CostModel.paper()


class TestDrift:
    def test_paper_profile_is_drift_free(self):
        report = check_drift(paper_profile())
        assert report.ok
        assert report.failures() == []
        assert {check.name for check in report.checks} == set(DEFAULT_TOLERANCES)
        for check in report.checks:
            assert check.factor == pytest.approx(1.0)

    def test_perturbed_decryption_flags_dec_over_enc(self):
        slow_dec = paper_profile(t_dec=CostModel.paper().t_dec * 10)
        report = check_drift(slow_dec)
        assert not report.ok
        assert [check.name for check in report.failures()] == ["dec_over_enc"]

    def test_broken_packing_flags_efficiency(self):
        cost = CostModel.paper()
        profile = CalibrationProfile.from_cost_model(
            cost, key_bits=2048, packing_gain=1.0, pack_width=24
        )
        report = check_drift(profile)
        assert "packing_efficiency" in {c.name for c in report.failures()}

    def test_custom_tolerances_override_defaults(self):
        profile = paper_profile(t_dec=CostModel.paper().t_dec * 10)
        report = check_drift(profile, tolerances={"dec_over_enc": 100.0})
        assert report.ok

    def test_factor_is_symmetric(self):
        paper = CostModel.paper()
        fast = check_drift(paper_profile(t_dec=paper.t_dec / 10))
        slow = check_drift(paper_profile(t_dec=paper.t_dec * 10))
        fast_check = {c.name: c for c in fast.checks}["dec_over_enc"]
        slow_check = {c.name: c for c in slow.checks}["dec_over_enc"]
        assert fast_check.factor == pytest.approx(slow_check.factor)

    def test_lines_render_verdicts(self):
        report = check_drift(paper_profile(t_dec=CostModel.paper().t_dec * 10))
        lines = report.lines()
        assert len(lines) == len(report.checks)
        assert any("DRIFT" in line for line in lines)
        assert any(line.endswith("ok") for line in lines)

    def test_to_dict_is_json_serializable(self):
        report = check_drift(paper_profile())
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is True
        assert len(data["checks"]) == len(DEFAULT_TOLERANCES)

    def test_this_host_measurement_passes_drift(self):
        # The real-crypto measurement on the current host must land in
        # the advertised bands — this is the "same regime" guarantee
        # EXPERIMENTS.md relies on.  Tiny sample count keeps it fast.
        profile = calibrate(key_bits=256, samples=8, seed=7)
        assert check_drift(profile).ok

    def test_paper_ratio_values(self):
        ratios = paper_ratios()
        paper = CostModel.paper()
        assert ratios["dec_over_enc"] == pytest.approx(paper.t_dec / paper.t_enc)
        assert ratios["smul_over_hadd"] == pytest.approx(paper.t_smul / paper.t_hadd)
        assert ratios["packing_efficiency"] == 1.0
