"""Tests for incident post-mortem bundles (repro.obs.incident) and the
``repro incidents`` / ``repro events`` CLIs: bundle round-trips and
fingerprints, store naming, diffs, byte-identical bundles from a
crash-and-resume training rerun and a bad-canary serve rerun, and the
tier-1 ``--smoke`` wiring."""

import json

import numpy as np
import pytest

from repro.cli import _synthetic_parties, main
from repro.core.config import VF2BoostConfig
from repro.core.trainer import FederatedTrainer
from repro.fed.faults import FaultPlan
from repro.fed.retry import RetryPolicy
from repro.gbdt.binning import bin_dataset
from repro.gbdt.params import GBDTParams
from repro.obs.events import EventLog
from repro.obs.incident import (
    BUNDLE_VERSION,
    IncidentBundle,
    IncidentStore,
    TRIGGERS,
    diff_bundles,
    snapshot_incident,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.canary import CanaryConfig, CanaryController
from repro.serve.fleet import FleetConfig, ServingFleet
from repro.serve.loadgen import LoadgenConfig, make_requests
from repro.serve.registry import ModelRegistry


class TestBundle:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown incident kind"):
            IncidentBundle(kind="meteor_strike")

    def test_round_trip_and_fingerprint(self, tmp_path):
        bundle = IncidentBundle(
            kind="slo_burn",
            label="burn",
            time=2.5,
            events=[{"event": "x", "kind": "x", "subsystem": "s", "time": 1.0}],
            metrics={"counters": {"a": 3}},
            context={"rule": "burn"},
        )
        path = str(tmp_path / "b.json")
        bundle.save(path)
        back = IncidentBundle.load(path)
        assert back.to_dict() == bundle.to_dict()
        assert back.fingerprint() == bundle.fingerprint()
        assert back.to_json() == bundle.to_json()

    def test_future_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        data = IncidentBundle(kind="slo_burn").to_dict()
        data["version"] = BUNDLE_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema version"):
            IncidentBundle.load(str(path))

    def test_headline_mentions_kind_and_fingerprint(self):
        bundle = IncidentBundle(kind="canary_rollback", label="v2-bad")
        headline = bundle.headline()
        assert "canary_rollback" in headline
        assert "v2-bad" in headline
        assert bundle.fingerprint() in headline

    def test_snapshot_collects_every_surface(self):
        log = EventLog()
        log.emit(1.0, "serve.slo", "timeout", rid=1)
        registry = MetricsRegistry()
        registry.inc("serve.requests", 4)
        plan = FaultPlan(seed=1, drop_rate=0.1)
        bundle = snapshot_incident(
            "fault_recovery",
            label="train",
            time=3.0,
            event_log=log,
            registry=registry,
            fault_plan=plan,
            context={"drops": 2},
        )
        assert bundle.kind in TRIGGERS
        assert bundle.events == log.to_dicts()
        assert bundle.metrics["counters"]["serve.requests"] == 4
        assert bundle.fault_plan["plan"] == plan.to_dict()
        assert bundle.context == {"drops": 2}

    def test_snapshot_tail_is_bounded(self):
        log = EventLog()
        for i in range(10):
            log.emit(float(i), "s", "k", index=i)
        bundle = snapshot_incident("fault_recovery", event_log=log, tail=3)
        assert [e["index"] for e in bundle.events] == [7, 8, 9]


class TestStore:
    def test_deterministic_names_and_load_by_ref(self, tmp_path):
        store = IncidentStore(str(tmp_path))
        store.save(IncidentBundle(kind="slo_burn", label="one"))
        store.save(IncidentBundle(kind="canary_rollback", label="two"))
        names = [path.rsplit("/", 1)[-1] for path in store.paths()]
        assert names == [
            "incident-0001-slo-burn.json",
            "incident-0002-canary-rollback.json",
        ]
        assert store.load(1).label == "one"
        assert store.load("2").label == "two"
        assert store.load("incident-0002-canary-rollback.json").label == "two"
        with pytest.raises(LookupError, match="out of range"):
            store.load(3)

    def test_rows_summarize_each_bundle(self, tmp_path):
        store = IncidentStore(str(tmp_path))
        store.save(IncidentBundle(kind="slo_burn", label="x", time=1.5))
        (row,) = store.rows()
        assert row["kind"] == "slo_burn"
        assert row["label"] == "x"
        assert row["time"] == 1.5
        assert row["fingerprint"] == store.load(1).fingerprint()


class TestDiff:
    def test_diff_surfaces_field_changes(self):
        a = IncidentBundle(
            kind="slo_burn",
            time=1.0,
            metrics={"counters": {"drops": 2}},
            events=[{"subsystem": "s", "kind": "x"}],
            open_alerts=[{"rule": "burn"}],
            context={"resends": 1},
        )
        b = IncidentBundle(
            kind="slo_burn",
            time=2.0,
            metrics={"counters": {"drops": 5}},
            events=[{"subsystem": "s", "kind": "x"}] * 2,
            open_alerts=[],
            context={"resends": 3},
        )
        lines = "\n".join(diff_bundles(a, b))
        assert "time: 1.000000 -> 2.000000" in lines
        assert "metrics.counters.drops: 2 -> 5" in lines
        assert "events.s/x: 1 -> 2" in lines
        assert "open_alerts: -burn" in lines
        assert "context.resends: 1.0 -> 3.0" in lines

    def test_identical_bundles_diff_clean(self):
        a = IncidentBundle(kind="slo_burn", time=1.0)
        b = IncidentBundle(kind="slo_burn", time=1.0)
        assert diff_bundles(a, b) == [
            "bundles are identical in every compared field"
        ]


def _crash_train(incident_dir, checkpoint_dir):
    parties, labels = _synthetic_parties(120, 6, 8, seed=3)
    config = VF2BoostConfig.vf2boost(
        params=GBDTParams(n_trees=2, n_layers=3, n_bins=8),
        crypto_mode="counted",
    )
    trainer = FederatedTrainer(config, incident_dir=str(incident_dir))
    return trainer.fit_resilient(
        parties,
        labels,
        fault_plan=FaultPlan(seed=3, drop_rate=0.05, crash_after_trees=(0,)),
        retry_policy=RetryPolicy(max_retries=8),
        checkpoint_dir=str(checkpoint_dir),
    )


class TestTrainingIncidents:
    def test_crash_produces_byte_identical_bundles_across_reruns(
        self, tmp_path
    ):
        result_a = _crash_train(tmp_path / "inc-a", tmp_path / "ck-a")
        result_b = _crash_train(tmp_path / "inc-b", tmp_path / "ck-b")
        assert result_a.incidents
        assert len(result_a.incidents) == len(result_b.incidents)
        for path_a, path_b in zip(result_a.incidents, result_b.incidents):
            with open(path_a, "rb") as a, open(path_b, "rb") as b:
                assert a.read() == b.read()
        crash = IncidentBundle.load(result_a.incidents[0])
        assert crash.kind == "training_interrupted"
        assert crash.context["completed_trees"] == 1
        assert crash.events  # the crash captured the event tail
        assert any(e["kind"] == "crash" for e in crash.events)
        assert crash.wire_ledger  # channel traffic at the crash instant
        assert crash.fault_plan["plan"]["crash_after_trees"] == [0]


def _train_for_serving(seed):
    rng = np.random.default_rng(seed)
    n, d = 220, 8
    features = rng.normal(size=(n, d))
    labels = ((features @ rng.normal(size=d)) > 0).astype(float)
    params = GBDTParams(n_trees=3, n_layers=4, n_bins=8)
    full = bin_dataset(features, params.n_bins)
    parties = [
        full.subset_features(np.arange(4, 8)),
        full.subset_features(np.arange(0, 4)),
    ]
    config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
    return FederatedTrainer(config).fit(parties, labels).model, parties


@pytest.fixture(scope="module")
def serving_models():
    return _train_for_serving(23), _train_for_serving(29)


def _bad_canary_run(serving_models, incident_dir):
    (model, parties), (bad_model, bad_parties) = serving_models
    log = EventLog()
    registry = ModelRegistry(event_log=log)
    edges = {k: p.cut_points for k, p in enumerate(parties)}
    registry.register("v1", model, edges)
    registry.activate("v1")
    registry.register(
        "v2-bad", bad_model, {k: p.cut_points for k, p in enumerate(bad_parties)}
    )
    controller = CanaryController(
        registry,
        CanaryConfig(
            candidate="v2-bad", traffic_fraction=0.5, decision_after=50, seed=3
        ),
        event_log=log,
        incident_store=IncidentStore(str(incident_dir)),
    )
    fleet = ServingFleet(
        registry,
        FleetConfig(n_replicas=2, seed=3, shed=None),
        canary=controller,
        event_log=log,
    )
    load = LoadgenConfig(
        n_requests=96,
        feature_dims={k: p.n_features for k, p in enumerate(parties)},
        seed=11,
        mode="open",
        rate=400.0,
        n_sessions=12,
        session_skew=1.0,
    )
    for request in make_requests(load):
        fleet.submit(request)
    fleet.run()
    return controller


class TestCanaryIncidents:
    def test_bad_canary_drops_byte_identical_bundle(
        self, serving_models, tmp_path
    ):
        controller_a = _bad_canary_run(serving_models, tmp_path / "a")
        controller_b = _bad_canary_run(serving_models, tmp_path / "b")
        assert controller_a.state == "rolled_back"
        assert len(controller_a.incidents) == 1
        with open(controller_a.incidents[0], "rb") as a:
            with open(controller_b.incidents[0], "rb") as b:
                assert a.read() == b.read()
        bundle = IncidentBundle.load(controller_a.incidents[0])
        assert bundle.kind == "canary_rollback"
        assert bundle.label == "v2-bad"
        assert bundle.context["candidate"] == "v2-bad"
        assert bundle.context["incumbent"] == "v1"
        assert bundle.context["mismatches"] == 1
        kinds = {e["kind"] for e in bundle.events}
        assert "golden_mismatch" in kinds
        assert "rolled_back" in kinds
        assert "hot_swap" in kinds  # the registry activations are in the tail


class TestCLI:
    def test_incidents_smoke_is_green(self, capsys):
        assert main(["incidents", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "incident smoke OK" in out
        assert "training-interrupted" in out

    def test_incidents_list_show_diff(self, tmp_path, capsys):
        store = IncidentStore(str(tmp_path))
        store.save(IncidentBundle(kind="slo_burn", label="one", time=1.0))
        store.save(IncidentBundle(kind="slo_burn", label="two", time=2.0))
        assert main(["incidents", "list", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "slo_burn" in out and "incident-0001-slo-burn.json" in out
        assert main(["incidents", "show", "1", "--dir", str(tmp_path)]) == 0
        assert "slo_burn [one]" in capsys.readouterr().out
        assert main(["incidents", "diff", "1", "2", "--dir", str(tmp_path)]) == 0
        assert "time: 1.000000 -> 2.000000" in capsys.readouterr().out

    def test_incidents_show_requires_one_ref(self, tmp_path, capsys):
        assert main(["incidents", "show", "--dir", str(tmp_path)]) == 2

    def test_events_cli_filters_jsonl(self, tmp_path, capsys):
        log = EventLog()
        log.emit(0.5, "serve.slo", "timeout", labels={"scenario": "s"}, rid=1)
        log.emit(1.5, "trainer", "tree_end", tree=0)
        path = str(tmp_path / "events.jsonl")
        log.write_jsonl(path)
        assert main(["events", path, "--subsystem", "trainer"]) == 0
        out = capsys.readouterr().out
        assert "tree_end" in out
        assert "timeout" not in out
        assert "(1 of 2 events shown)" in out

    def test_events_cli_reads_run_report(self, tmp_path, capsys):
        log = EventLog()
        log.emit(0.5, "obs.alerts", "alert_open", labels={"rule": "burn"})
        report = {"events": log.to_dicts()}
        path = str(tmp_path / "report.json")
        with open(path, "w") as handle:
            json.dump(report, handle)
        assert main(["events", path, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records == log.to_dicts()
