"""Tests for the protocol scheduler: overlap semantics and ablations."""

import pytest

from repro.bench.costmodel import CostModel
from repro.core.config import VF2BoostConfig
from repro.core.profile import analytic_trace
from repro.core.protocol import ProtocolScheduler
from repro.fed.cluster import PAPER_CLUSTER, ClusterSpec
from repro.gbdt.params import GBDTParams

COST = CostModel.paper()
PARAMS = GBDTParams(n_layers=5, n_bins=20)


def _trace(n=1_000_000, fa=5000, fb=5000, layers=5, ratio=None, trees=1):
    return analytic_trace(
        n, fb, [fa], density=0.01, n_bins=20, n_layers=layers,
        n_trees=trees, active_split_ratio=ratio,
    )


def _schedule(trace, **flags):
    config = VF2BoostConfig(params=PARAMS, **flags)
    return ProtocolScheduler(config, COST, PAPER_CLUSTER).schedule(trace)


class TestAblationDirections:
    """Each §4/§5 optimization must speed the schedule up."""

    def test_blaster_speeds_up_root(self):
        trace = _trace()
        base = _schedule(
            trace, blaster_encryption=False, reordered_accumulation=False,
            optimistic_split=False, histogram_packing=False,
        )
        blaster = _schedule(
            trace, blaster_encryption=True, reordered_accumulation=False,
            optimistic_split=False, histogram_packing=False,
        )
        seq_root = (
            base.root_breakdown["Enc"]
            + base.root_breakdown["Comm"]
            + base.root_breakdown["HAdd"]
        )
        assert blaster.root_breakdown["RootMakespan"] < seq_root
        # Pipelined root cannot beat its slowest stage.
        slowest = max(
            blaster.root_breakdown["Enc"],
            blaster.root_breakdown["Comm"],
            blaster.root_breakdown["HAdd"],
        )
        assert blaster.root_breakdown["RootMakespan"] >= slowest * 0.99

    def test_reordered_speeds_up(self):
        trace = _trace()
        slow = _schedule(
            trace, reordered_accumulation=False, optimistic_split=False,
            histogram_packing=False, blaster_encryption=False,
        )
        fast = _schedule(
            trace, reordered_accumulation=True, optimistic_split=False,
            histogram_packing=False, blaster_encryption=False,
        )
        assert fast.makespan < slow.makespan

    def test_packing_speeds_up_and_saves_bytes(self):
        trace = _trace()
        raw = _schedule(trace, histogram_packing=False, optimistic_split=False)
        packed = _schedule(trace, histogram_packing=True, optimistic_split=False)
        assert packed.makespan < raw.makespan
        assert packed.bytes_per_tree < raw.bytes_per_tree

    def test_optimistic_speeds_up(self):
        trace = _trace()
        sync = _schedule(trace, optimistic_split=False, histogram_packing=False)
        optimistic = _schedule(trace, optimistic_split=True, histogram_packing=False)
        assert optimistic.makespan < sync.makespan

    def test_all_optimizations_best(self):
        trace = _trace()
        base = _schedule(
            trace, blaster_encryption=False, reordered_accumulation=False,
            optimistic_split=False, histogram_packing=False,
        )
        full = _schedule(trace)
        assert full.makespan < base.makespan
        assert base.makespan / full.makespan > 1.5


class TestOptimisticSensitivity:
    def test_more_active_splits_help_optimism(self):
        # Failure probability D_A/(D_A+D_B): optimism gains more when B
        # owns more splits (§4.2 Discussion, Table 2).
        gains = []
        for ratio in (0.2, 0.8):
            trace = _trace(ratio=ratio)
            sync = _schedule(trace, optimistic_split=False, histogram_packing=False)
            optimistic = _schedule(
                trace, optimistic_split=True, histogram_packing=False
            )
            gains.append(sync.makespan / optimistic.makespan)
        assert gains[1] > gains[0]

    def test_zero_dirty_case(self):
        trace = _trace(ratio=1.0)
        optimistic = _schedule(trace, optimistic_split=True, histogram_packing=False)
        sync = _schedule(trace, optimistic_split=False, histogram_packing=False)
        assert optimistic.makespan <= sync.makespan


class TestMockMode:
    def test_mock_much_faster_than_crypto(self):
        trace = _trace()
        crypto = _schedule(
            trace, blaster_encryption=False, reordered_accumulation=False,
            optimistic_split=False, histogram_packing=False,
        )
        mock = _schedule(
            trace, blaster_encryption=False, reordered_accumulation=False,
            optimistic_split=False, histogram_packing=False, crypto_mode="mock",
        )
        assert crypto.makespan / mock.makespan > 10

    def test_mock_ships_plaintext_bytes(self):
        trace = _trace()
        crypto = _schedule(trace, histogram_packing=False, optimistic_split=False)
        mock = _schedule(
            trace, histogram_packing=False, optimistic_split=False,
            crypto_mode="mock",
        )
        assert mock.bytes_per_tree < crypto.bytes_per_tree / 10


class TestScaling:
    def test_makespan_grows_with_instances(self):
        small = _schedule(_trace(n=100_000))
        large = _schedule(_trace(n=1_000_000))
        assert large.makespan > small.makespan * 3

    def test_more_workers_faster(self):
        trace = _trace()
        config = VF2BoostConfig(params=PARAMS)
        slow = ProtocolScheduler(
            config, COST, PAPER_CLUSTER.scaled_workers(4)
        ).schedule(trace)
        fast = ProtocolScheduler(
            config, COST, PAPER_CLUSTER.scaled_workers(16)
        ).schedule(trace)
        assert fast.makespan < slow.makespan
        # ... but sublinearly.
        assert slow.makespan / fast.makespan < 4.0

    def test_multi_party_slightly_slower(self):
        two = analytic_trace(500_000, 500, [500], 0.1, 20, 5)
        three = analytic_trace(500_000, 333, [333, 333], 0.1, 20, 5)
        config2 = VF2BoostConfig(params=PARAMS)
        config3 = VF2BoostConfig(params=PARAMS, n_passive_parties=2)
        t2 = ProtocolScheduler(config2, COST, PAPER_CLUSTER).schedule(two).makespan
        t3 = ProtocolScheduler(config3, COST, PAPER_CLUSTER).schedule(three).makespan
        assert t3 == pytest.approx(t2, rel=0.35)

    def test_per_tree_lengths(self):
        trace = _trace(trees=3)
        result = _schedule(trace)
        assert len(result.per_tree) == 3
        assert result.makespan == pytest.approx(sum(result.per_tree))


class TestReporting:
    def test_phase_totals_cover_known_phases(self):
        result = _schedule(_trace())
        for phase in ("Enc", "CipherComm", "BuildHistA", "FindSplitA", "FindSplitB"):
            assert phase in result.phase_totals

    def test_utilization_bounded(self):
        result = _schedule(_trace())
        for value in result.utilization.values():
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_gantt_nonempty(self):
        result = _schedule(_trace())
        assert "A1" in result.gantt
