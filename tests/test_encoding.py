"""Tests for fixed-point encoding with exponent jitter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encoding import Encoder
from repro.crypto.paillier import generate_keypair

PUBLIC, _ = generate_keypair(256, seed=3)


@pytest.fixture()
def encoder() -> Encoder:
    return Encoder(PUBLIC, base=16, exponent=8, jitter=1)


class TestEncodeDecode:
    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=60)
    def test_round_trip_close(self, value):
        enc = Encoder(PUBLIC, base=16, exponent=8)
        decoded = enc.decode(enc.encode(value))
        assert abs(decoded - value) <= 16**-8 + abs(value) * 1e-12

    def test_exact_integers(self, encoder):
        for value in (-5.0, 0.0, 3.0, 1024.0):
            assert encoder.decode(encoder.encode(value)) == value

    def test_negative_values_use_upper_range(self, encoder):
        encoded = encoder.encode(-1.0)
        assert encoded.value > PUBLIC.n - PUBLIC.max_int - 1

    def test_positive_values_use_lower_range(self, encoder):
        encoded = encoder.encode(1.0)
        assert encoded.value <= PUBLIC.max_int

    def test_overflow_raises(self, encoder):
        with pytest.raises(OverflowError):
            encoder.encode(float(PUBLIC.n))

    def test_decode_dead_zone_raises(self, encoder):
        from repro.crypto.encoding import EncodedNumber

        bad = EncodedNumber(PUBLIC, PUBLIC.n // 2, 8)
        with pytest.raises(OverflowError):
            bad.decode()

    def test_decode_foreign_key_rejected(self, encoder):
        other_pub, _ = generate_keypair(256, seed=99)
        foreign = Encoder(other_pub).encode(1.0)
        with pytest.raises(ValueError):
            encoder.decode(foreign)


class TestBaseMismatch:
    def test_decode_with_wrong_base_rejected(self, encoder):
        encoded = encoder.encode(2.5)
        with pytest.raises(ValueError, match="encoding base mismatch"):
            encoded.decode(base=2)

    def test_encoder_decode_rejects_foreign_base(self, encoder):
        # Before EncodedNumber carried its base, this decoded silently
        # to a wrong value; now the mismatch is an error.
        foreign = Encoder(PUBLIC, base=2, exponent=8).encode(2.5)
        with pytest.raises(ValueError, match="encoding base mismatch"):
            encoder.decode(foreign)

    def test_decrease_exponent_rejects_foreign_base(self, encoder):
        encoded = encoder.encode(2.5, exponent=4)
        with pytest.raises(ValueError, match="encoding base mismatch"):
            encoded.decrease_exponent_to(6, base=2)

    def test_matching_base_round_trips(self, encoder):
        encoded = encoder.encode(2.5)
        assert encoded.decode(base=16) == pytest.approx(2.5)
        assert encoded.base == 16


class TestExponentHandling:
    def test_pinned_exponent(self, encoder):
        encoded = encoder.encode(2.5, exponent=4)
        assert encoded.exponent == 4
        assert encoded.value == round(2.5 * 16**4)

    def test_decrease_exponent_preserves_value(self, encoder):
        encoded = encoder.encode(3.25, exponent=4)
        rescaled = encoded.decrease_exponent_to(7)
        assert rescaled.exponent == 7
        assert rescaled.decode() == pytest.approx(3.25)

    def test_decrease_exponent_rejects_precision_loss(self, encoder):
        encoded = encoder.encode(3.25, exponent=6)
        with pytest.raises(ValueError):
            encoded.decrease_exponent_to(4)


class TestJitter:
    def test_jitter_window(self):
        enc = Encoder(PUBLIC, exponent=8, jitter=4, rng=random.Random(0))
        assert list(enc.exponent_window()) == [8, 9, 10, 11]
        seen = {enc.encode(0.5).exponent for _ in range(200)}
        assert seen == {8, 9, 10, 11}

    def test_jitter_one_is_deterministic(self):
        enc = Encoder(PUBLIC, exponent=8, jitter=1)
        assert all(enc.encode(0.5).exponent == 8 for _ in range(10))

    def test_jittered_values_decode_identically(self):
        enc = Encoder(PUBLIC, exponent=8, jitter=5, rng=random.Random(1))
        for _ in range(50):
            assert enc.decode(enc.encode(-0.375)) == pytest.approx(-0.375)

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            Encoder(PUBLIC, jitter=0)

    def test_invalid_base_rejected(self):
        with pytest.raises(ValueError):
            Encoder(PUBLIC, base=1)
