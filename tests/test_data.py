"""Tests for synthetic generation, the dataset registry and partitioning."""

import numpy as np
import pytest

from repro.data.datasets import DATASETS, dataset_info, load_dataset
from repro.data.partition import split_features, worker_shards
from repro.data.synthetic import (
    SyntheticSpec,
    generate_classification,
    generate_sparse_classification,
)


class TestSyntheticSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(0, 5)
        with pytest.raises(ValueError):
            SyntheticSpec(10, 5, density=0.0)

    def test_informative_defaults(self):
        assert SyntheticSpec(10, 8).informative == 4
        assert SyntheticSpec(10, 8, n_informative=100).informative == 8


class TestGenerateClassification:
    def test_shapes_and_balance(self):
        spec = SyntheticSpec(500, 12, seed=1)
        features, labels = generate_classification(spec)
        assert features.shape == (500, 12)
        assert set(np.unique(labels)) <= {0.0, 1.0}
        assert 0.4 < labels.mean() < 0.6  # median threshold balances

    def test_density_respected(self):
        spec = SyntheticSpec(400, 20, density=0.3, seed=2)
        features, _ = generate_classification(spec)
        density = np.count_nonzero(features) / features.size
        assert density == pytest.approx(0.3, abs=0.05)

    def test_deterministic(self):
        spec = SyntheticSpec(100, 6, seed=5)
        f1, l1 = generate_classification(spec)
        f2, l2 = generate_classification(spec)
        assert np.array_equal(f1, f2)
        assert np.array_equal(l1, l2)

    def test_signal_is_learnable(self):
        from repro.gbdt import GBDTParams, GBDTTrainer

        spec = SyntheticSpec(1500, 10, seed=3, noise=0.3)
        features, labels = generate_classification(spec)
        trainer = GBDTTrainer(GBDTParams(n_trees=10, n_layers=5))
        trainer.fit(features[:1200], labels[:1200], features[1200:], labels[1200:])
        assert trainer.history[-1].valid_auc > 0.65


class TestGenerateSparse:
    def test_sparse_shape_and_density(self):
        spec = SyntheticSpec(300, 50, density=0.1, seed=4)
        matrix, labels = generate_sparse_classification(spec)
        assert matrix.shape == (300, 50)
        assert labels.shape == (300,)
        per_row = matrix.getnnz(axis=1)
        assert per_row.mean() == pytest.approx(5, abs=1.0)


class TestDatasetRegistry:
    def test_table3_shapes(self):
        census = dataset_info("census")
        assert census.n_instances == 22_000
        assert (census.features_a, census.features_b) == (78, 70)
        industry = dataset_info("industry")
        assert industry.n_instances == 55_000_000

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_info("mnist")

    def test_all_seven_present(self):
        assert set(DATASETS) == {
            "census", "a9a", "susy", "epsilon", "rcv1", "synthesis", "industry",
        }

    def test_scaled_shapes(self):
        n, fa, fb = dataset_info("rcv1").scaled(0.01)
        assert n == 6970
        assert fa == fb == 2300

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            dataset_info("susy").scaled(0.0)

    def test_nnz_per_instance(self):
        info = dataset_info("susy")
        assert info.nnz_per_instance == pytest.approx(18.0)


class TestLoadDataset:
    def test_split_sizes(self):
        data = load_dataset("census", scale=0.05, seed=1)
        total = data.n_train + data.valid_features.shape[0]
        assert data.valid_features.shape[0] == pytest.approx(total * 0.2, abs=2)
        assert data.train_features.shape[1] == data.features_a + data.features_b

    def test_party_slices_cover_columns(self):
        data = load_dataset("a9a", scale=0.05)
        slice_a, slice_b = data.party_feature_slices()
        assert slice_a.stop == slice_b.start
        assert slice_b.stop == data.n_features

    def test_deterministic(self):
        d1 = load_dataset("census", scale=0.05, seed=3)
        d2 = load_dataset("census", scale=0.05, seed=3)
        assert np.array_equal(d1.train_features, d2.train_features)


class TestSplitFeatures:
    def test_contiguous_blocks(self):
        partition = split_features(10, [4, 6])
        assert partition.columns_of(0).tolist() == [0, 1, 2, 3]
        assert partition.columns_of(1).tolist() == [4, 5, 6, 7, 8, 9]
        assert partition.n_parties == 2
        assert partition.n_features == 10

    def test_shuffled_covers_all(self):
        partition = split_features(12, [4, 4, 4], shuffle=True, seed=1)
        combined = np.concatenate([partition.columns_of(p) for p in range(3)])
        assert sorted(combined.tolist()) == list(range(12))

    def test_owner_of(self):
        partition = split_features(6, [3, 3])
        assert partition.owner_of(1) == 0
        assert partition.owner_of(4) == 1
        with pytest.raises(KeyError):
            partition.owner_of(99)

    def test_sum_mismatch_rejected(self):
        with pytest.raises(ValueError):
            split_features(10, [4, 4])

    def test_duplicate_columns_rejected(self):
        from repro.data.partition import VerticalPartition

        with pytest.raises(ValueError):
            VerticalPartition((np.array([0, 1]), np.array([1, 2])))


class TestWorkerShards:
    def test_cover_and_align(self):
        shards = worker_shards(103, 4)
        assert len(shards) == 4
        combined = np.concatenate(shards)
        assert np.array_equal(combined, np.arange(103))
        sizes = [s.size for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_single_worker(self):
        shards = worker_shards(10, 1)
        assert len(shards) == 1 and shards[0].size == 10

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            worker_shards(10, 0)
