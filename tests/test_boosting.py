"""Tests for the plaintext GBDT trainer (XGBoost stand-in)."""

import numpy as np
import pytest

from repro.gbdt.boosting import GBDTTrainer
from repro.gbdt.binning import bin_dataset
from repro.gbdt.params import GBDTParams


class TestTrainingDynamics:
    def test_train_loss_monotonically_decreases(self, small_classification):
        features, labels = small_classification
        trainer = GBDTTrainer(GBDTParams(n_trees=8, n_layers=4))
        trainer.fit(features, labels)
        losses = [r.train_loss for r in trainer.history]
        assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))

    def test_learns_better_than_chance(self, small_classification):
        features, labels = small_classification
        trainer = GBDTTrainer(GBDTParams(n_trees=10, n_layers=5))
        model = trainer.fit(features[:300], labels[:300], features[300:], labels[300:])
        assert trainer.history[-1].valid_auc > 0.7

    def test_validation_tracked(self, small_classification):
        features, labels = small_classification
        trainer = GBDTTrainer(GBDTParams(n_trees=3, n_layers=3))
        trainer.fit(features[:300], labels[:300], features[300:], labels[300:])
        assert all(r.valid_loss is not None for r in trainer.history)

    def test_deterministic(self, small_classification):
        features, labels = small_classification
        params = GBDTParams(n_trees=3, n_layers=4)
        m1 = GBDTTrainer(params).fit(features, labels)
        m2 = GBDTTrainer(params).fit(features, labels)
        binned = bin_dataset(features, params.n_bins)
        assert np.array_equal(
            m1.predict_margin(binned.codes), m2.predict_margin(binned.codes)
        )


class TestModelStructure:
    def test_depth_respected(self, small_classification):
        features, labels = small_classification
        params = GBDTParams(n_trees=2, n_layers=3)
        model = GBDTTrainer(params).fit(features, labels)
        for tree in model.trees:
            assert tree.max_depth() <= params.max_depth

    def test_n_trees(self, small_classification):
        features, labels = small_classification
        model = GBDTTrainer(GBDTParams(n_trees=5, n_layers=3)).fit(features, labels)
        assert len(model.trees) == 5

    def test_regression_objective(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(300, 5))
        targets = features[:, 0] * 0.5 + rng.normal(scale=0.05, size=300)
        params = GBDTParams(n_trees=15, n_layers=4, objective="squared")
        trainer = GBDTTrainer(params)
        trainer.fit(features, targets)
        assert trainer.history[-1].train_loss < trainer.history[0].train_loss * 0.7


class TestInputValidation:
    def test_label_length_mismatch(self, small_classification):
        features, labels = small_classification
        with pytest.raises(ValueError):
            GBDTTrainer(GBDTParams(n_trees=1)).fit(features, labels[:-5])


class TestEvaluate:
    def test_evaluate_reports_loss_and_auc(self, small_classification):
        features, labels = small_classification
        params = GBDTParams(n_trees=3, n_layers=4)
        trainer = GBDTTrainer(params)
        model = trainer.fit(features, labels)
        binned = bin_dataset(features, params.n_bins)
        scores = trainer.evaluate(model, binned, labels)
        assert 0 < scores["loss"] < 1
        assert 0.5 < scores["auc"] <= 1.0


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            GBDTParams(n_trees=0)
        with pytest.raises(ValueError):
            GBDTParams(n_layers=1)
        with pytest.raises(ValueError):
            GBDTParams(learning_rate=0.0)
        with pytest.raises(ValueError):
            GBDTParams(n_bins=1)
        with pytest.raises(ValueError):
            GBDTParams(reg_lambda=-1)
        with pytest.raises(ValueError):
            GBDTParams(objective="gini")

    def test_derived_properties(self):
        params = GBDTParams(n_layers=7)
        assert params.max_depth == 6
        assert params.max_leaves == 64

    def test_replace(self):
        params = GBDTParams()
        other = params.replace(n_trees=3)
        assert other.n_trees == 3
        assert params.n_trees == 20
