"""CR105 fixture: a crypto hot path exponentiating around the choke point."""


def leaky_obfuscate(r: int, n: int, n_squared: int) -> int:
    # Direct 3-arg pow: invisible to the powmod observer and pinned to
    # the built-in engine no matter which backend is selected.
    return pow(r, n, n_squared)


def counted_obfuscate(r: int, n: int, n_squared: int) -> int:
    from repro.crypto.math_utils import powmod

    return powmod(r, n, n_squared)
