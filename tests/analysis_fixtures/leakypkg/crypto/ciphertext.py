"""CR003 fixture: a crypto-layer raw op that forgets the OpStats bump."""


class Context:
    def silent_add(self, a, b):
        return self.public_key.raw_add(a, b)

    def counted_add(self, a, b):
        self.stats.additions += 1
        return self.public_key.raw_add(a, b)
