"""CR10x fixture: ciphertext-domain misuse the abstract interpreter flags.

Each method is one known-bad pattern; the line comments name the rule
the domain checker must report there.
"""


def fresh_cipher(ctx, value: float):
    return ctx.encrypt(value)


class DomainAbuse:
    def implicit_plain_add(self, ctx, grad: float):
        cipher = ctx.encrypt(grad)
        return cipher + grad  # CR101: cipher + plain via operator

    def cipher_product(self, ctx, g: float, h: float):
        cg = ctx.encrypt(g)
        ch = ctx.encrypt(h)
        return cg * ch  # CR101: Paillier cannot multiply ciphers

    def packed_operator(self, ctx, values):
        pack = pack_ciphers(ctx, [ctx.encrypt(v) for v in values])
        return pack + ctx.encrypt(0.0)  # CR101: operator on packed limbs

    def summary_flow(self, ctx, base: float):
        cipher = fresh_cipher(ctx, base)
        return cipher + 1.0  # CR101: via interprocedural return summary

    def pack_mixed_exponents(self, ctx):
        low = ctx.encrypt(1.0, exponent=-6)
        high = ctx.encrypt(2.0, exponent=-3)
        return pack_ciphers(ctx, [low, high])  # CR102: limbs share one exponent

    def raw_add_misaligned(self, ctx):
        a = ctx.encrypt(1.0, exponent=-6)
        b = ctx.encrypt(2.0, exponent=-3)
        self.stats.additions += 1
        return ctx.public_key.raw_add(a.ciphertext, b.ciphertext)  # repro: allow[CR002]

    def double_pack(self, ctx, ciphers):
        packed = pack_ciphers(ctx, ciphers)
        return pack_values(ctx, packed)  # CR103: limbs of limbs

    def decrypt_round_trip(self, ctx, cipher):
        value = ctx.decrypt(cipher)
        return ctx.encrypt(value)  # CR104: decrypt/encrypt round trip
