"""DET001 fixture: a wall-clock callable hidden in a parameter default.

``timer=time.perf_counter`` never *calls* the clock at definition
time, so the call-site check alone misses it — but every caller that
omits the argument gets the host clock anyway.  The checker must flag
the default reference itself.
"""

import time


def measure_block(work, timer=time.perf_counter):
    start = timer()
    work()
    return timer() - start
