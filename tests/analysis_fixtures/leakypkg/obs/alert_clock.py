"""DET001 fixture: an alert engine that evaluates on the wall clock.

The real :mod:`repro.obs.alerts` evaluates rules only at times the
caller injects from a *simulated* clock, so the same run opens and
closes the same alerts at the same instants; sampling ``time.time()``
inside evaluation ties every verdict to the host's wall clock and makes
two reruns disagree about which alerts fired.
"""

import time


def evaluate_alerts(rules: list, values: dict) -> list:
    now = time.time()
    return [
        {"rule": name, "opened_at": now}
        for name, limit in rules
        if values.get(name, 0.0) > limit
    ]
