"""DET001 fixture: a tracer that reads the host clock itself.

The real :mod:`repro.obs.tracer` takes an *injected* clock callable so
spans are replayable; reaching for ``time.perf_counter()`` inside an
observability module silently couples traces to wall time.
"""

import time


class SneakyTracer:
    def now(self):
        return time.perf_counter()
