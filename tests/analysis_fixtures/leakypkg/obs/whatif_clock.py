"""DET001 fixture: a what-if explorer that timestamps its predictions.

The real :mod:`repro.obs.whatif` re-prices a *recorded* task graph, so
two runs over the same graph must byte-match; stamping the result with
``time.time()`` makes every prediction unique and un-diffable.
"""

import time


def predict_makespan(baseline: float, speedup: float) -> dict:
    return {
        "predicted": baseline / speedup,
        "computed_at": time.time(),
    }
