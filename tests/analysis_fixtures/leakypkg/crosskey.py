"""CR001/CR002 fixture: cross-key arithmetic and a raw-layer bypass."""


def mix_contexts(ctx_a, ctx_b, value):
    x = ctx_a.encrypt(value)
    y = ctx_b.encrypt(value)
    return x + y


def bypass_align_scale(public_key, value):
    return public_key.raw_encrypt(value, 7)
