"""Serve-side fixtures: an undeclared batch message and a wall clock.

``UndeclaredAnswerBatch`` is a :class:`~repro.fed.messages.Message`
subclass minted inside a serving module instead of being registered in
``repro.fed.messages`` with a declared disclosure — PB002 must fire.
``stamp_batch`` reads the wall clock inside ``serve/`` — DET001 must
fire, proving the determinism scope covers the serving subsystem.
"""

import time
from dataclasses import dataclass, field

from repro.fed.messages import Message


@dataclass
class UndeclaredAnswerBatch(Message):
    batch_id: int = 0
    margins: list = field(default_factory=list)

    def payload_bytes(self, key_bits: int) -> int:
        return 16 + 8 * len(self.margins)


def stamp_batch(batch: UndeclaredAnswerBatch) -> float:
    return time.time()
