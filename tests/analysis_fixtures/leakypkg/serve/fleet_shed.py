"""Fleet fixture: a wall clock inside a load-shedding decision.

``should_shed`` consults ``time.monotonic`` to age the burn-rate
evidence instead of taking the simulated ``now`` as an argument —
DET001 must fire, proving the determinism scope covers the fleet
serving path (a host-timing-dependent shed decision would break the
byte-repeatability of every fleet bench).
"""

import time


def should_shed(burn_rate: float, last_completion: float) -> bool:
    age = time.monotonic() - last_completion
    return burn_rate >= 1.0 and age < 5.0
