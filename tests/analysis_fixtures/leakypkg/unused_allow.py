"""SUP001 fixture: a suppression whose rule never fires here."""

N_BINS = 16  # repro: allow[PB001]


def histogram_width(n_features: int) -> int:
    return n_features * N_BINS
