"""Fixture package for the static analyzers — every module here
contains a *deliberate* violation that a checker must fire on.  The
tree is parsed by :class:`repro.analysis.astutils.PackageIndex`, never
imported."""
