"""DET001/DET002 fixture: a fault schedule built from live nondeterminism.

The anti-pattern :mod:`repro.fed.faults` exists to rule out — fault
decisions drawn from the wall clock and an unseeded RNG instead of a
pure hash of an explicit seed.  Such a schedule can never be replayed,
so the bit-identity invariant would be unverifiable.
"""

import random
import time


def fresh_fault_seed():
    return int(time.time())


def should_drop(drop_rate):
    return random.random() < drop_rate
