"""PB001 fixture: label-derived plaintext shipped toward a passive party."""

from repro.fed.messages import LeafWeightBroadcast


def broadcast_raw_stats(channel, labels):
    grads = [2.0 * y for y in labels]
    total = sum(grads)
    weights = {0: total}
    channel.send(LeafWeightBroadcast(0, 1, weights=weights))
