"""PB002 fixture: a Message subclass defined outside repro.fed.messages."""

from dataclasses import dataclass, field

from repro.fed.messages import Message


@dataclass
class RogueReport(Message):
    residuals: list = field(default_factory=list)

    def payload_bytes(self, key_bits: int) -> int:
        return 8 * len(self.residuals)
