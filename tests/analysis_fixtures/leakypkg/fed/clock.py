"""DET001/DET002/DET003 fixture: nondeterminism in sim-reachable code."""

import random
import time


def timestamp():
    return time.time()


def jitter_width():
    rng = random.Random()
    return rng.randrange(4)


def first_feature():
    for feature in {"f1", "f2", "f3"}:
        return feature
    return None
