"""Shared fixtures: small deterministic keys and datasets.

Key sizes here are far below the 2048 bits the paper (and production)
use — the Paillier algebra is identical at any size, and 256-bit keys
keep the full real-crypto protocol tests fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import VF2BoostConfig
from repro.crypto.ciphertext import PaillierContext
from repro.gbdt.binning import bin_dataset
from repro.gbdt.params import GBDTParams


@pytest.fixture(scope="session")
def context() -> PaillierContext:
    """A 256-bit context with the private key and no exponent jitter."""
    return PaillierContext.create(256, seed=42, jitter=1)


@pytest.fixture(scope="session")
def jitter_context() -> PaillierContext:
    """A 256-bit context with a 4-wide exponent jitter window."""
    return PaillierContext.create(256, seed=43, jitter=4)


@pytest.fixture(scope="session")
def small_classification():
    """A small, learnable binary classification problem."""
    rng = np.random.default_rng(7)
    n, d = 400, 10
    features = rng.normal(size=(n, d))
    weights = rng.normal(size=d)
    logits = features @ weights + 0.4 * features[:, 0] * features[:, 1]
    labels = (logits + rng.normal(scale=0.3, size=n) > 0).astype(np.float64)
    return features, labels


@pytest.fixture(scope="session")
def small_params() -> GBDTParams:
    """Small tree/round counts for fast protocol tests."""
    return GBDTParams(n_trees=3, n_layers=4, n_bins=10)


@pytest.fixture()
def party_datasets(small_classification, small_params):
    """The small problem vertically split: Party B cols 5..9, A cols 0..4."""
    features, labels = small_classification
    full = bin_dataset(features, small_params.n_bins)
    dataset_b = full.subset_features(np.arange(5, 10))
    dataset_a = full.subset_features(np.arange(0, 5))
    return [dataset_b, dataset_a], labels


@pytest.fixture()
def counted_config(small_params) -> VF2BoostConfig:
    """Counted-mode config with every optimization enabled."""
    return VF2BoostConfig.vf2boost(
        params=small_params, crypto_mode="counted", key_bits=256
    )


@pytest.fixture()
def real_config(small_params) -> VF2BoostConfig:
    """Real-crypto config at a test-sized key."""
    return VF2BoostConfig.vf2boost(
        params=small_params,
        crypto_mode="real",
        key_bits=256,
        exponent_jitter=3,
        blaster_batch_size=64,
    )
