"""Tests for the Analyzer v2 passes: ciphertext domains (CR10x),
schedule races (SCH10x), disclosure conformance (PB003), the
suppression audit (SUP001), SARIF output, and analyzer edge inputs.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import conformance, domains, races
from repro.analysis.astutils import PackageIndex
from repro.analysis.cli import check_graph_file, main, run_analysis
from repro.analysis.findings import (
    Finding,
    Reporter,
    Severity,
    audit_suppressions,
    parse_comment_suppressions,
)
from repro.analysis.sarif import render_sarif
from repro.fed.simtime import SimTask

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPRO_ROOT = Path(__file__).parent.parent / "src" / "repro"
GOLDEN = Path(__file__).parent / "golden"


def _write_pkg(tmp_path, files):
    pkg = tmp_path / "pkg"
    for rel, source in files.items():
        target = pkg / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return pkg


def _task(task_id, deps=(), resource="A0", lane=0, start=0.0, end=1.0, name=None):
    return SimTask(
        name=name or f"t{task_id}",
        phase="Test",
        resource=resource,
        lane=lane,
        start=start,
        end=end,
        task_id=task_id,
        deps=tuple(deps),
    )


class TestDomainChecker:
    def _run(self, tmp_path, source):
        pkg = _write_pkg(tmp_path, {"crypto/mod.py": source})
        return domains.run(PackageIndex(pkg, package="pkg"))

    def test_legal_patterns_stay_silent(self, tmp_path):
        reporter = self._run(
            tmp_path,
            "def fine(ctx, g: float):\n"
            "    a = ctx.encrypt(g)\n"
            "    b = ctx.encrypt(2.0)\n"
            "    c = a + b\n"  # HAdd: legal
            "    d = a * 3.0\n"  # SMul: legal
            "    e = ctx.add_plain(a, g)\n"  # explicit API: legal
            "    return c, d, e\n",
        )
        assert reporter.findings == []

    def test_cipher_plus_plain_fires(self, tmp_path):
        reporter = self._run(
            tmp_path,
            "def bad(ctx, g: float):\n"
            "    c = ctx.encrypt(g)\n"
            "    return c + 1.0\n",
        )
        assert [f.rule_id for f in reporter.findings] == ["CR101"]

    def test_interprocedural_summary(self, tmp_path):
        reporter = self._run(
            tmp_path,
            "def make(ctx, v: float):\n"
            "    return ctx.encrypt(v)\n"
            "\n"
            "def use(ctx, v: float):\n"
            "    c = make(ctx, v)\n"
            "    return c + v\n",
        )
        assert [f.rule_id for f in reporter.findings] == ["CR101"]

    def test_annotation_seeds_domain(self, tmp_path):
        reporter = self._run(
            tmp_path,
            "def bad(cipher: EncryptedNumber, bias: float):\n"
            "    return cipher + bias\n",
        )
        assert [f.rule_id for f in reporter.findings] == ["CR101"]

    def test_unknown_domains_never_fire(self, tmp_path):
        reporter = self._run(
            tmp_path,
            "def opaque(a, b):\n"
            "    return a + b\n",
        )
        assert reporter.findings == []

    def test_out_of_scope_module_skipped(self, tmp_path):
        pkg = _write_pkg(
            tmp_path,
            {
                "extensions/mod.py": (
                    "def bad(ctx, g: float):\n"
                    "    return ctx.encrypt(g) + 1.0\n"
                )
            },
        )
        reporter = domains.run(PackageIndex(pkg, package="pkg"))
        assert reporter.findings == []

    def test_repo_scans_clean(self):
        reporter = domains.run(PackageIndex(REPRO_ROOT))
        assert reporter.findings == []


class TestRaceDetector:
    def test_dependency_orders_tasks(self):
        tasks = [
            _task(0, lane=0),
            _task(1, deps=(0,), lane=1, start=1.0, end=2.0),
        ]
        effects = {
            0: (frozenset(), frozenset({"x"})),
            1: (frozenset({"x"}), frozenset()),
        }
        assert races.detect_races(tasks, lambda t: effects[t.task_id]) == []

    def test_lane_fifo_orders_tasks(self):
        # Same (resource, lane): submission order is execution order.
        tasks = [_task(0, lane=0), _task(1, lane=0, start=1.0, end=2.0)]
        effects = {
            0: (frozenset(), frozenset({"x"})),
            1: (frozenset(), frozenset({"x"})),
        }
        assert races.detect_races(tasks, lambda t: effects[t.task_id]) == []

    def test_unordered_write_write_fires(self):
        tasks = [_task(0, lane=0), _task(1, lane=1)]
        effects = {
            0: (frozenset(), frozenset({"x"})),
            1: (frozenset(), frozenset({"x"})),
        }
        found = races.detect_races(tasks, lambda t: effects[t.task_id])
        assert [f.rule_id for f in found] == ["SCH101"]

    def test_unordered_read_write_fires(self):
        tasks = [_task(0, lane=0), _task(1, lane=1)]
        effects = {
            0: (frozenset(), frozenset({"x"})),
            1: (frozenset({"x"}), frozenset()),
        }
        found = races.detect_races(tasks, lambda t: effects[t.task_id])
        assert [f.rule_id for f in found] == ["SCH102"]

    def test_missing_footprint_warns_only_for_real_work(self):
        tasks = [
            _task(0, lane=0),  # duration 1.0: warns
            _task(1, lane=1, start=0.0, end=0.0),  # anchor: silent
        ]
        found = races.detect_races(tasks, lambda t: None)
        assert [f.rule_id for f in found] == ["SCH103"]
        assert found[0].severity == Severity.WARNING

    def test_real_scheduler_graphs_are_race_free(self):
        reporter = races.self_check(n_trees=1)
        assert reporter.findings == []

    def test_dropped_dependency_is_detected(self):
        # Mutation: strip the dependencies off every findA task and move
        # it to a fresh lane — the read of B.ahist loses its ordering.
        import dataclasses

        from repro.analysis.schedule import iter_self_check_graphs
        from repro.core.protocol import declared_effects

        label, _plan, graph = next(iter(iter_self_check_graphs(n_trees=1)))
        broken = [
            dataclasses.replace(t, deps=(), resource="B.mutant")
            if t.name.startswith("findA1")
            else t
            for t in graph
        ]
        rules = {f.rule_id for f in races.detect_races(broken, declared_effects, label)}
        assert "SCH102" in rules

    def test_effects_table_covers_every_real_task(self):
        from repro.analysis.schedule import iter_self_check_graphs
        from repro.core.protocol import declared_effects

        for label, _plan, graph in iter_self_check_graphs(n_trees=1):
            for task in graph:
                if task.end - task.start > 1e-9:
                    assert declared_effects(task) is not None, (label, task.name)


class TestConformance:
    def test_repo_checks_clean(self):
        reporter = conformance.check(
            PackageIndex(REPRO_ROOT),
            GOLDEN / "disclosure_conformance.json",
            opcounts_path=GOLDEN / "opcounts.json",
        )
        assert reporter.findings == []

    def test_bad_wire_ledger_fires_pb003(self):
        with open(FIXTURES / "bad_wire_ledger.json") as handle:
            ledger = json.load(handle)
        reporter = conformance.check(
            PackageIndex(REPRO_ROOT),
            GOLDEN / "disclosure_conformance.json",
            opcounts_path=GOLDEN / "opcounts.json",
            ledger=ledger,
        )
        messages = [f.message for f in reporter.findings]
        assert all(f.rule_id == "PB003" for f in reporter.findings)
        # The rogue type is called out both as unsanctioned and unexpected.
        assert any("DebugDump" in m and "no allow-list" in m for m in messages)
        # Expected-but-vanished types are reported too.
        assert any("never sent" in m for m in messages)

    def test_missing_artifact_fires_pb003(self, tmp_path):
        reporter = conformance.check(
            PackageIndex(REPRO_ROOT), tmp_path / "absent.json"
        )
        assert any(
            f.rule_id == "PB003" and "missing" in f.message
            for f in reporter.findings
        )

    def test_stale_artifact_fires_pb003(self, tmp_path):
        stale = tmp_path / "stale.json"
        with open(GOLDEN / "disclosure_conformance.json") as handle:
            artifact = json.load(handle)
        artifact["runtime_allowlist"] = artifact["runtime_allowlist"][:-1]
        stale.write_text(json.dumps(artifact))
        reporter = conformance.check(
            PackageIndex(REPRO_ROOT), stale, opcounts_path=GOLDEN / "opcounts.json"
        )
        assert any(
            f.rule_id == "PB003" and "stale" in f.message
            for f in reporter.findings
        )


class TestSuppressionAudit:
    def _audit(self, tmp_path, source, fire_rule=None):
        pkg = _write_pkg(tmp_path, {"fed/mod.py": source})
        index = PackageIndex(pkg, package="pkg")
        merged = Reporter()
        from repro.analysis import determinism

        merged.extend(determinism.run(index))
        return audit_suppressions(index.modules.values(), merged)

    def test_unused_allow_fires(self, tmp_path):
        audit = self._audit(tmp_path, "X = 1  # repro: allow[PB001]\n")
        assert [f.rule_id for f in audit.findings] == ["SUP001"]
        assert audit.findings[0].severity == Severity.WARNING

    def test_used_allow_is_silent(self, tmp_path):
        audit = self._audit(
            tmp_path,
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()  # repro: allow[DET001]\n",
        )
        assert audit.findings == []

    def test_unused_file_wide_allow_fires(self, tmp_path):
        audit = self._audit(tmp_path, "# repro: allow-file[CR001]\nX = 1\n")
        assert [f.rule_id for f in audit.findings] == ["SUP001"]
        assert audit.findings[0].line == 0
        assert "file-wide" in audit.findings[0].message

    def test_allow_sup001_silences_the_audit(self, tmp_path):
        audit = self._audit(
            tmp_path, "X = 1  # repro: allow[PB001]  # repro: allow[SUP001]\n"
        )
        assert audit.findings == []
        assert [f.rule_id for f in audit.suppressed] == ["SUP001"]

    def test_doc_examples_are_not_suppressions(self):
        source = (
            '"""Docs.\n'
            "\n"
            "    # repro: allow[PB001]\n"
            '"""\n'
            "X = 1  # repro: allow[DET003]\n"
        )
        allowed = parse_comment_suppressions(source)
        assert allowed == {5: {"DET003"}}


class TestEdgeInputs:
    def test_syntax_error_becomes_syn001(self, tmp_path):
        pkg = _write_pkg(
            tmp_path,
            {
                "fed/broken.py": "def oops(:\n",
                "fed/fine.py": "import time\n\ndef t():\n    return time.time()\n",
            },
        )
        reporter = run_analysis(root=pkg, package="pkg", with_schedule=False)
        rules = sorted(f.rule_id for f in reporter.findings)
        # The broken file is reported AND the healthy file still scanned.
        assert "SYN001" in rules
        assert "DET001" in rules
        syn = [f for f in reporter.findings if f.rule_id == "SYN001"]
        assert syn[0].file == "pkg/fed/broken.py"
        assert syn[0].line >= 1

    def test_empty_package_and_empty_module(self, tmp_path):
        pkg = _write_pkg(tmp_path, {"__init__.py": "", "fed/empty.py": ""})
        reporter = run_analysis(root=pkg, package="pkg", with_schedule=False)
        assert reporter.findings == []

    def test_allow_file_and_line_allow_interplay(self, tmp_path):
        # File-wide DET001 + line-level DET002: both silence their rule,
        # neither silences the other's, and both count as used.
        pkg = _write_pkg(
            tmp_path,
            {
                "fed/mixed.py": (
                    "# repro: allow-file[DET001]\n"
                    "import random\n"
                    "import time\n"
                    "\n"
                    "def a():\n"
                    "    return time.time()\n"
                    "\n"
                    "def b():\n"
                    "    return random.Random()  # repro: allow[DET002]\n"
                    "\n"
                    "def c():\n"
                    "    return random.Random()\n"
                )
            },
        )
        reporter = run_analysis(root=pkg, package="pkg", with_schedule=False)
        assert [f.rule_id for f in reporter.findings] == ["DET002"]  # only c()
        assert sorted({f.rule_id for f in reporter.suppressed}) == [
            "DET001",
            "DET002",
        ]
        # Both suppressions were used, so no SUP001.
        assert not [f for f in reporter.findings if f.rule_id == "SUP001"]

    def test_sorted_findings_deterministic(self):
        findings = [
            Finding("PB001", Severity.ERROR, "b.py", 2, "z"),
            Finding("PB001", Severity.ERROR, "b.py", 2, "a"),
            Finding("CR001", Severity.ERROR, "a.py", 9, "m"),
            Finding("DET001", Severity.WARNING, "a.py", 1, "m"),
        ]
        forward, backward = Reporter(), Reporter()
        for f in findings:
            forward.emit(f)
        for f in reversed(findings):
            backward.emit(f)
        assert forward.sorted_findings() == backward.sorted_findings()
        keys = [(f.file, f.line, f.message) for f in forward.sorted_findings()]
        assert keys == [
            ("a.py", 9, "m"),
            ("b.py", 2, "a"),
            ("b.py", 2, "z"),
            ("a.py", 1, "m"),
        ]


class TestSarifOutput:
    def _findings(self):
        return [
            Finding("PB001", Severity.ERROR, "repro/fed/x.py", 12, "leak", "taint"),
            Finding(
                "SCH101",
                Severity.ERROR,
                "<schedule:vf2boost:tree0>",
                0,
                "race",
                "races",
            ),
            Finding("SUP001", Severity.WARNING, "repro/y.py", 3, "unused", "audit"),
        ]

    def test_document_shape(self):
        doc = json.loads(render_sarif(self._findings()))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            "PB001",
            "SCH101",
            "SUP001",
        ]
        assert [r["level"] for r in run["results"]] == [
            "error",
            "error",
            "warning",
        ]

    def test_line_zero_findings_omit_region(self):
        doc = json.loads(render_sarif(self._findings()))
        results = doc["runs"][0]["results"]
        with_region = results[0]["locations"][0]["physicalLocation"]
        without_region = results[1]["locations"][0]["physicalLocation"]
        assert with_region["region"]["startLine"] == 12
        assert "region" not in without_region

    def test_cli_sarif_format_is_valid_json(self, capsys):
        rc = main(
            [
                "--root",
                str(FIXTURES / "leakypkg"),
                "--package",
                "leakypkg",
                "--no-schedule",
                "--format",
                "sarif",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        rule_ids = {r["ruleId"] for r in doc["runs"][0]["results"]}
        assert "PB001" in rule_ids and "CR101" in rule_ids


class TestCliV2:
    def test_graph_file_fires_sch10x(self):
        reporter = check_graph_file(FIXTURES / "racy_graph.json")
        rules = sorted(f.rule_id for f in reporter.findings)
        assert rules == ["SCH101", "SCH102", "SCH103"]

    def test_graph_flag_from_cli(self, capsys):
        rc = main(
            [
                "--root",
                str(FIXTURES / "leakypkg"),
                "--package",
                "leakypkg",
                "--no-schedule",
                "--rules",
                "SCH101,SCH102,SCH103",
                "--graph",
                str(FIXTURES / "racy_graph.json"),
                "--strict",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "SCH101" in out and "SCH102" in out and "SCH103" in out

    def test_wire_ledger_flag_fails_strict(self, capsys):
        rc = main(
            [
                "--no-schedule",
                "--strict",
                "--wire-ledger",
                str(FIXTURES / "bad_wire_ledger.json"),
            ]
        )
        assert rc == 1
        assert "PB003" in capsys.readouterr().out

    def test_emit_conformance_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "artifact.json"
        rc = main(["--emit-conformance", str(target)])
        assert rc == 0
        emitted = json.loads(target.read_text())
        checked_in = json.loads(
            (GOLDEN / "disclosure_conformance.json").read_text()
        )
        assert emitted == checked_in

    def test_verbose_prints_pass_timings(self, capsys):
        rc = main(
            [
                "--root",
                str(FIXTURES / "leakypkg"),
                "--package",
                "leakypkg",
                "--no-schedule",
                "--verbose",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "leakypkg:parse" in err
        assert "total" in err

    def test_full_strict_run_under_budget(self, capsys):
        t0 = time.perf_counter()
        rc = main(["--strict"])
        elapsed = time.perf_counter() - t0
        out = capsys.readouterr().out
        assert rc == 0, f"strict gate failed:\n{out}"
        assert elapsed < 30.0, f"analysis took {elapsed:.1f}s (budget 30s)"
