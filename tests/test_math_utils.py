"""Unit tests for the number-theory primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import math_utils


class TestIsProbablePrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 199):
            assert math_utils.is_probable_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 6, 9, 15, 21, 91, 561, 1105):
            assert not math_utils.is_probable_prime(c)

    def test_negative_numbers(self):
        assert not math_utils.is_probable_prime(-7)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes must not fool Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not math_utils.is_probable_prime(carmichael)

    def test_large_known_prime(self):
        assert math_utils.is_probable_prime(2**127 - 1)  # Mersenne prime

    def test_large_known_composite(self):
        assert not math_utils.is_probable_prime(2**128 + 1)


class TestGeneratePrime:
    def test_bit_length_exact(self):
        for bits in (16, 32, 64):
            prime = math_utils.generate_prime(bits)
            assert prime.bit_length() == bits
            assert math_utils.is_probable_prime(prime)

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            math_utils.generate_prime(4)


class TestGeneratePrimePair:
    def test_product_has_requested_bits(self):
        p, q = math_utils.generate_prime_pair(128)
        assert (p * q).bit_length() == 128
        assert p != q

    def test_primality_of_both(self):
        p, q = math_utils.generate_prime_pair(96)
        assert math_utils.is_probable_prime(p)
        assert math_utils.is_probable_prime(q)


class TestInvert:
    def test_round_trip(self):
        modulus = 1009  # prime
        for a in (2, 3, 17, 1008):
            inverse = math_utils.invert(a, modulus)
            assert (a * inverse) % modulus == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ValueError):
            math_utils.invert(6, 9)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_invert_property(self, a):
        modulus = 104729  # prime
        inverse = math_utils.invert(a % modulus or 1, modulus)
        assert ((a % modulus or 1) * inverse) % modulus == 1


class TestCrtCombine:
    @given(
        st.integers(min_value=0, max_value=10**12),
    )
    @settings(max_examples=50)
    def test_reconstructs_value(self, value):
        p, q = 1_000_003, 999_983
        value = value % (p * q)
        q_inv_p = math_utils.invert(q, p)
        combined = math_utils.crt_combine(value % p, value % q, p, q, q_inv_p)
        assert combined % (p * q) == value


class TestLcm:
    def test_basic(self):
        assert math_utils.lcm(4, 6) == 12
        assert math_utils.lcm(7, 13) == 91

    @given(st.integers(1, 10**6), st.integers(1, 10**6))
    @settings(max_examples=50)
    def test_matches_math_lcm(self, a, b):
        assert math_utils.lcm(a, b) == math.lcm(a, b)


class TestRandomHelpers:
    def test_random_below_bounds(self):
        for _ in range(50):
            assert 0 <= math_utils.random_below(100) < 100

    def test_random_coprime(self):
        n = 15  # 3 * 5
        for _ in range(50):
            r = math_utils.random_coprime(n)
            assert 1 <= r < n
            assert math.gcd(r, n) == 1
