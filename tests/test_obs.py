"""Tests for :mod:`repro.obs` — metrics, tracing, export, reports.

Includes the protocol-parity gate: the Chrome trace-event export of a
small :class:`ProtocolScheduler` run must be byte-identical across two
runs, and its per-phase durations must sum to the engine's own
phase accounting.
"""

import json

import pytest

from repro.bench.costmodel import CostModel
from repro.bench.report import phase_table
from repro.core.config import VF2BoostConfig
from repro.core.profile import analytic_trace
from repro.core.protocol import ProtocolScheduler
from repro.fed.channel import RecordingChannel
from repro.fed.cluster import PAPER_CLUSTER
from repro.fed.messages import CountedCipherPayload, SplitQuery
from repro.fed.simtime import SimEngine
from repro.gbdt.params import GBDTParams
from repro.obs import (
    Histogram,
    MetricsRegistry,
    RunReport,
    Span,
    Tracer,
    channel_report,
    chrome_trace,
    dumps_chrome_trace,
    global_registry,
    spans_from_tasks,
)


class TestMetricsRegistry:
    def test_counters_accumulate_and_prefix_filter(self):
        reg = MetricsRegistry()
        reg.inc("crypto.enc")
        reg.inc("crypto.enc", 4)
        reg.inc("channel.bytes", 100)
        assert reg.get("crypto.enc") == 5
        assert reg.counters("crypto.") == {"enc": 5}
        assert reg.get("never.seen") == 0

    def test_gauges(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3.5)
        assert reg.gauge("depth") == 3.5
        assert reg.gauge("missing", default=-1.0) == -1.0

    def test_histogram_get_or_create(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("lat")
        h2 = reg.histogram("lat")
        assert h1 is h2
        reg.observe("lat", 0.2)
        assert h1.count == 1

    def test_snapshot_shape_and_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] == {"a": 1}
        json.loads(reg.to_json())  # serializable
        reg.reset()
        assert reg.snapshot()["counters"] == {}

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()


class TestHistogram:
    def test_quantiles_and_mean(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean() == pytest.approx(2.5)
        assert h.quantile(1.0) == 5.0

    def test_snapshot_has_overflow_bucket(self):
        h = Histogram(bounds=(1.0,))
        h.observe(9.0)
        snap = h.snapshot()
        assert snap["buckets"]["overflow"] == 1


class TestHistogramCap:
    def test_below_cap_everything_is_exact(self):
        capped = Histogram(bounds=(10.0,), max_samples=8)
        uncapped = Histogram(bounds=(10.0,))
        for v in (3.0, 1.0, 7.0, 5.0):
            capped.observe(v)
            uncapped.observe(v)
        assert capped.stride == 1
        assert capped.count == uncapped.count
        assert capped.mean() == uncapped.mean()
        assert capped.quantile(0.5) == uncapped.quantile(0.5)
        assert capped.snapshot() == uncapped.snapshot()

    def test_decimation_doubles_stride_and_bounds_memory(self):
        h = Histogram(bounds=(1000.0,), max_samples=8)
        for i in range(64):
            h.observe(float(i))
        assert h.count == 64
        assert h.stride > 1
        assert len(h.samples) < 8
        # Retained samples are the index % stride == 0 arrivals.
        assert h.samples == [float(i) for i in range(64) if i % h.stride == 0]

    def test_exact_stats_survive_decimation(self):
        h = Histogram(bounds=(1000.0,), max_samples=4)
        values = [float(v) for v in (5, 1, 9, 2, 8, 3, 7, 4, 6, 10)]
        for v in values:
            h.observe(v)
        assert h.count == len(values)
        assert h.mean() == pytest.approx(sum(values) / len(values))
        assert h.snapshot()["max"] == 10.0  # max is tracked exactly forever
        assert sum(h.counts) == len(values)  # buckets are never decimated

    def test_decimation_is_deterministic(self):
        def run():
            h = Histogram(bounds=(100.0,), max_samples=4)
            for i in range(50):
                h.observe(float(i % 13))
            return h.samples, h.stride, h.snapshot()

        assert run() == run()

    def test_quantile_degrades_to_subsample_not_garbage(self):
        h = Histogram(bounds=(1e9,), max_samples=16)
        for i in range(1000):
            h.observe(float(i))
        # The subsampled median stays within a stride of the true one.
        assert abs(h.quantile(0.5) - 499.5) <= 2 * h.stride

    def test_cap_below_two_rejected(self):
        with pytest.raises(ValueError):
            Histogram(max_samples=1)


class TestTracer:
    def test_add_and_phase_totals(self):
        tracer = Tracer()
        tracer.add("a", 0.0, 1.0, category="Enc", track="B")
        tracer.add("b", 1.0, 3.0, category="Comm", track="wan")
        assert tracer.phase_totals() == {"Comm": 2.0, "Enc": 1.0}
        assert tracer.makespan == 3.0

    def test_span_context_manager_uses_injected_clock(self):
        ticks = iter([10.0, 12.5])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("work", category="Phase"):
            pass
        (span,) = tracer.spans
        assert (span.start, span.end) == (10.0, 12.5)

    def test_span_without_clock_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                pass

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            Span(name="bad", category="", track="t", start=2.0, end=1.0)

    def test_span_dict_round_trip(self):
        span = Span(
            name="s", category="C", track="t", start=0.0, end=1.5,
            lane=2, args={"tree": 1},
        )
        assert Span.from_dict(span.to_dict()) == span


def _small_schedule():
    params = GBDTParams(n_layers=3, n_bins=8)
    trace = analytic_trace(
        n_instances=10_000,
        features_active=200,
        features_passive=[200],
        density=0.01,
        n_bins=params.n_bins,
        n_layers=params.n_layers,
    )
    config = VF2BoostConfig.vf2boost(params=params)
    scheduler = ProtocolScheduler(config, CostModel.paper(), PAPER_CLUSTER)
    return scheduler.schedule(trace, collect_tasks=True)


class TestChromeTraceExport:
    def test_protocol_export_is_deterministic(self):
        """Byte-identical Chrome traces across two independent runs."""
        first = dumps_chrome_trace(_small_schedule().spans())
        second = dumps_chrome_trace(_small_schedule().spans())
        assert first == second

    def test_phase_durations_sum_to_engine_accounting(self):
        result = _small_schedule()
        spans = result.spans()
        by_cat: dict = {}
        for span in spans:
            by_cat[span.category] = by_cat.get(span.category, 0.0) + span.duration
        for phase, total in result.phase_totals.items():
            assert by_cat[phase] == pytest.approx(total)
        assert sum(by_cat.values()) == pytest.approx(
            sum(result.phase_totals.values())
        )

    def test_trace_spans_cover_engine_makespan(self):
        result = _small_schedule()
        assert max(s.end for s in result.spans()) == pytest.approx(
            result.makespan
        )

    def test_event_structure(self):
        spans = [
            Span(name="a", category="Enc", track="B", start=0.0, end=0.5),
            Span(name="b", category="Comm", track="wan", start=0.5, end=1.0),
        ]
        doc = chrome_trace(spans)
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert {m["name"] for m in metas} == {"process_name", "thread_name"}
        assert len(xs) == 2
        # ts/dur are microseconds.
        assert xs[0]["dur"] == 500000
        # Distinct tracks land on distinct pids.
        assert len({e["pid"] for e in xs}) == 2


class TestSpansFromTasks:
    def test_duck_typed_conversion(self):
        engine = SimEngine()
        a = engine.submit("B", 1.0, name="enc", phase="Enc")
        engine.submit("wan", 2.0, deps=[a], name="send", phase="Comm")
        spans = spans_from_tasks(engine.tasks, offset=10.0, args={"tree": 0})
        assert [s.category for s in spans] == ["Enc", "Comm"]
        assert spans[0].start == 10.0
        assert spans[1].args == {"tree": 0}

    def test_by_phase_groups_every_task(self):
        engine = SimEngine()
        engine.submit("B", 1.0, name="e1", phase="Enc")
        engine.submit("B", 1.0, name="e2", phase="Enc")
        engine.submit("wan", 1.0, name="c1", phase="Comm")
        groups = engine.by_phase()
        assert {k: len(v) for k, v in groups.items()} == {"Enc": 2, "Comm": 1}
        assert sum(engine.phase_breakdown().values()) == pytest.approx(3.0)


class TestChannelReport:
    def test_per_direction_and_per_type_totals(self):
        channel = RecordingChannel(256)
        channel.send(SplitQuery(0, 1))
        channel.send(CountedCipherPayload(1, 0, kind="hist", n_ciphers=2))
        report = channel_report(channel)
        assert report["total_messages"] == 2
        assert report["total_bytes"] == channel.total_bytes()
        assert "SplitQuery" in report["directions"]["0->1"]["by_type"]
        assert report["by_type"]["CountedCipherPayload"]["messages"] == 1

    def test_channel_registry_mirror(self):
        reg = MetricsRegistry()
        channel = RecordingChannel(256, registry=reg)
        channel.send(SplitQuery(0, 1))
        channel.send(SplitQuery(0, 1))
        assert reg.get("channel.messages") == 2
        assert reg.get("channel.SplitQuery.messages") == 2
        assert reg.get("channel.bytes") == channel.total_bytes()


class TestRunReport:
    def test_save_load_round_trip(self, tmp_path):
        result = _small_schedule()
        report = result.run_report(label="small", config={"n": 10_000})
        path = tmp_path / "run.report.json"
        report.save(str(path))
        loaded = RunReport.load(str(path))
        assert loaded.kind == "schedule"
        assert loaded.label == "small"
        assert loaded.phases == report.phases
        assert loaded.makespan == pytest.approx(result.makespan)
        assert len(loaded.span_objects()) == len(report.spans)

    def test_write_chrome_trace_from_report(self, tmp_path):
        result = _small_schedule()
        report = result.run_report()
        path = tmp_path / "run.trace.json"
        count = report.write_chrome_trace(str(path))
        assert count == len(report.spans)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_write_chrome_trace_without_spans_raises(self, tmp_path):
        report = RunReport(kind="serve")
        with pytest.raises(ValueError):
            report.write_chrome_trace(str(tmp_path / "t.json"))


class TestTraceCli:
    def test_trace_subcommand_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        result = _small_schedule()
        report_path = tmp_path / "run.report.json"
        result.run_report(label="cli").save(str(report_path))
        trace_path = tmp_path / "run.trace.json"
        assert main(["trace", str(report_path), "-o", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        # The CLI re-export equals a direct export of the same spans.
        assert trace_path.read_text() == dumps_chrome_trace(result.spans())

    def test_trace_subcommand_rejects_spanless_report(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "empty.report.json"
        RunReport(kind="serve").save(str(report_path))
        assert main(["trace", str(report_path)]) == 1


class TestPhaseTable:
    def test_rows_sorted_and_share_sums(self):
        rendered = phase_table({"Enc": 3.0, "Comm": 1.0}, title="phases:")
        lines = rendered.splitlines()
        assert lines[0] == "phases:"
        body = "\n".join(lines)
        assert body.index("Enc") < body.index("Comm")
        assert "75.0%" in body and "25.0%" in body
        assert "total" in body
