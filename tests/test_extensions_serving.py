"""Tests for VFL-LR, model serialization, federated inference and CLI."""

import numpy as np
import pytest

from repro.core.config import VF2BoostConfig
from repro.core.inference import FederatedPredictor
from repro.core.serialization import (
    load_model,
    model_from_payloads,
    model_to_payloads,
    save_model,
)
from repro.core.trainer import FederatedTrainer
from repro.extensions.vfl_lr import VerticalLogisticRegression, VflLrConfig
from repro.gbdt.binning import bin_dataset
from repro.gbdt.params import GBDTParams


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(17)
    n, d = 250, 8
    features = rng.normal(size=(n, d))
    labels = ((features @ rng.normal(size=d)) > 0).astype(float)
    params = GBDTParams(n_trees=3, n_layers=4, n_bins=8)
    full = bin_dataset(features, params.n_bins)
    parties = [
        full.subset_features(np.arange(4, 8)),
        full.subset_features(np.arange(0, 4)),
    ]
    config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
    result = FederatedTrainer(config).fit(parties, labels)
    codes = {0: parties[0].codes, 1: parties[1].codes}
    return result, codes, labels


class TestVflLr:
    def _data(self):
        rng = np.random.default_rng(4)
        n = 80
        features_a = rng.normal(size=(n, 3))
        features_b = rng.normal(size=(n, 3))
        margin = features_a[:, 0] - features_b[:, 1] + 0.5 * features_b[:, 0]
        labels = (margin + rng.normal(scale=0.2, size=n) > 0).astype(float)
        return features_a, features_b, labels

    def test_loss_decreases(self):
        features_a, features_b, labels = self._data()
        result = VerticalLogisticRegression(
            VflLrConfig(iterations=6, key_bits=256)
        ).fit(features_a, features_b, labels)
        assert result.losses[-1] < result.losses[0]
        assert result.validation_auc(features_a, features_b, labels) > 0.8

    def test_matches_centralized_direction(self):
        # The federated gradients must equal centralized full-batch LR
        # gradients (the masking round is exact, not approximate).
        features_a, features_b, labels = self._data()
        federated = VerticalLogisticRegression(
            VflLrConfig(iterations=4, key_bits=256, learning_rate=0.3)
        ).fit(features_a, features_b, labels)
        # Centralized reference with identical hyper-parameters.
        joined = np.hstack([features_a, features_b])
        weights = np.zeros(joined.shape[1])
        intercept = 0.0
        from repro.gbdt.loss import sigmoid

        for _ in range(4):
            prob = sigmoid(joined @ weights + intercept)
            residual = prob - labels
            grad = joined.T @ residual / len(labels)
            weights -= 0.3 * (grad + 0.01 * weights)
            intercept -= 0.3 * float(residual.mean())
        combined = np.concatenate([federated.weights_a, federated.weights_b])
        assert np.allclose(combined, weights, atol=1e-4)
        assert federated.intercept == pytest.approx(intercept, abs=1e-6)

    def test_reordered_reduces_scalings(self):
        features_a, features_b, labels = self._data()
        naive = VerticalLogisticRegression(
            VflLrConfig(iterations=2, key_bits=256, reordered_reduction=False)
        ).fit(features_a, features_b, labels)
        reordered = VerticalLogisticRegression(
            VflLrConfig(iterations=2, key_bits=256, reordered_reduction=True)
        ).fit(features_a, features_b, labels)
        assert reordered.scalings < naive.scalings / 3

    def test_channel_accounted(self):
        features_a, features_b, labels = self._data()
        result = VerticalLogisticRegression(
            VflLrConfig(iterations=2, key_bits=256)
        ).fit(features_a, features_b, labels)
        assert result.channel.total_bytes() > 0

    def test_misaligned_rejected(self):
        features_a, features_b, labels = self._data()
        with pytest.raises(ValueError):
            VerticalLogisticRegression(VflLrConfig(iterations=1)).fit(
                features_a[:-1], features_b, labels
            )


class TestSerialization:
    def test_round_trip_predictions(self, trained, tmp_path):
        result, codes, __ = trained
        files = save_model(
            result.model, str(tmp_path / "shared.json"), str(tmp_path / "private")
        )
        assert len(files) >= 2
        sidecars = [f for f in files[1:]]
        loaded = load_model(files[0], sidecars)
        original = result.model.predict_margin(codes)
        restored = loaded.predict_margin(codes)
        assert np.allclose(original, restored)

    def test_shared_payload_leaks_no_split_details(self, trained):
        result, __, ___ = trained
        payloads = model_to_payloads(result.model)
        text = str(payloads["shared"])
        assert "feature" not in text
        assert "threshold" not in text

    def test_sidecars_partition_by_owner(self, trained):
        result, __, ___ = trained
        payloads = model_to_payloads(result.model)
        owners = result.model.split_counts_by_owner()
        assert set(payloads["private"]) == set(owners)
        for owner, sidecar in payloads["private"].items():
            assert len(sidecar["splits"]) == owners[owner]

    def test_partial_sidecar_loads(self, trained):
        result, __, ___ = trained
        payloads = model_to_payloads(result.model)
        # A party reconstructing with only its own sidecar still gets
        # the full skeleton (structure + weights).
        partial = model_from_payloads(
            payloads["shared"], {0: payloads["private"].get(0, {"splits": {}})}
        )
        assert len(partial.trees) == len(result.model.trees)

    def test_version_check(self, trained):
        result, __, ___ = trained
        payloads = model_to_payloads(result.model)
        payloads["shared"]["format_version"] = 999
        with pytest.raises(ValueError):
            model_from_payloads(payloads["shared"], payloads["private"])


class TestFederatedInference:
    def test_matches_local_prediction(self, trained):
        result, codes, __ = trained
        predictor = FederatedPredictor(result.model, codes, key_bits=256)
        assert np.allclose(
            predictor.predict_margin(), result.model.predict_margin(codes)
        )

    def test_routing_queries_counted(self, trained):
        result, codes, __ = trained
        predictor = FederatedPredictor(result.model, codes, key_bits=256)
        predictor.predict_margin()
        passive_splits = result.model.split_counts_by_owner().get(1, 0)
        assert predictor.routing_queries >= passive_splits * 0  # sanity
        if passive_splits:
            assert predictor.routing_queries > 0
            assert predictor.channel.total_bytes() > 0

    def test_no_queries_when_all_splits_active(self):
        from repro.core.trainer import FederatedModel
        from repro.gbdt.tree import DecisionTree

        tree = DecisionTree()
        tree.split_node(0, owner=0, feature=0, bin_index=1, threshold=0.5, gain=1.0)
        tree.set_leaf_weight(1, -1.0)
        tree.set_leaf_weight(2, 1.0)
        model = FederatedModel(trees=[tree], learning_rate=1.0, base_score=0.0)
        codes = {0: np.array([[0], [3]], dtype=np.uint16)}
        predictor = FederatedPredictor(model, codes, key_bits=256)
        out = predictor.predict_margin()
        assert out.tolist() == [-1.0, 1.0]
        assert predictor.routing_queries == 0


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["tableX"]) == 2

    def test_run_table3(self, capsys):
        from repro.cli import main

        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "census" in out

    def test_run_table1(self, capsys):
        from repro.cli import main

        assert main(["table1"]) == 0
        assert "BlasterEnc" in capsys.readouterr().out
