"""Tests for the cluster/topology model."""

import pytest

from repro.fed.cluster import PAPER_CLUSTER, ClusterSpec


class TestValidation:
    def test_defaults_match_paper(self):
        assert PAPER_CLUSTER.n_workers == 8
        assert PAPER_CLUSTER.cores_per_worker == 16
        assert PAPER_CLUSTER.wan_bandwidth == pytest.approx(300e6 / 8)
        assert PAPER_CLUSTER.n_gateways == 3

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_workers=0)
        with pytest.raises(ValueError):
            ClusterSpec(wan_bandwidth=0)
        with pytest.raises(ValueError):
            ClusterSpec(parallel_efficiency=0)


class TestComputeLanes:
    def test_lanes_grow_with_workers(self):
        assert (
            ClusterSpec(n_workers=16).compute_lanes
            > ClusterSpec(n_workers=8).compute_lanes
            > ClusterSpec(n_workers=4).compute_lanes
        )

    def test_sublinear_scaling(self):
        # Efficiency decay: doubling workers yields < 2x lanes.
        four = ClusterSpec(n_workers=4).compute_lanes
        sixteen = ClusterSpec(n_workers=16).compute_lanes
        assert sixteen < 4 * four

    def test_minimum_one_lane(self):
        tiny = ClusterSpec(n_workers=1, cores_per_worker=1, parallel_efficiency=0.01)
        assert tiny.compute_lanes == 1


class TestScaledWorkers:
    def test_copy_semantics(self):
        scaled = PAPER_CLUSTER.scaled_workers(4)
        assert scaled.n_workers == 4
        assert PAPER_CLUSTER.n_workers == 8
        assert scaled.wan_bandwidth == PAPER_CLUSTER.wan_bandwidth


class TestAggregation:
    def test_single_worker_free(self):
        assert ClusterSpec(n_workers=1).aggregation_seconds(1e9) == 0.0

    def test_grows_with_workers(self):
        a = ClusterSpec(n_workers=4).aggregation_seconds(1e9)
        b = ClusterSpec(n_workers=16).aggregation_seconds(1e9)
        assert b > a > 0

    def test_nnz_bound_caps_traffic(self):
        spec = ClusterSpec(n_workers=8)
        unbounded = spec.aggregation_seconds(1e9)
        bounded = spec.aggregation_seconds(1e9, nnz_bytes=1e6)
        assert bounded < unbounded
        assert bounded == spec.aggregation_seconds(1e6)
