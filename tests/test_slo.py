"""Tests for the serving SLO watcher (:mod:`repro.serve.slo`) and its
integration with the serve bench / shared metrics registry."""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.slo import SLOPolicy, SLOWatcher


def ok_outcome(request_id=0, latency=0.1):
    return SimpleNamespace(
        request_id=request_id, latency=latency, rejected=False, degraded=False
    )


def degraded_outcome(request_id=0, latency=0.1, rows=3):
    return SimpleNamespace(
        request_id=request_id,
        latency=latency,
        rejected=False,
        degraded=True,
        degraded_rows=np.ones(rows, dtype=bool),
    )


def rejected_outcome(request_id=0):
    return SimpleNamespace(request_id=request_id, rejected=True)


class TestPolicy:
    def test_defaults(self):
        policy = SLOPolicy()
        assert policy.latency_slo == 0.5
        assert policy.window == 64
        assert policy.to_dict()["error_budget"] == 0.01

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SLOPolicy(window=0)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            SLOPolicy(error_budget=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(error_budget=1.5)


class TestWindowStats:
    def test_empty_window(self):
        watcher = SLOWatcher()
        assert watcher.window_p99() == 0.0
        assert watcher.breach_fraction() == 0.0
        assert watcher.burn_rate() == 0.0

    def test_p99_nearest_rank(self):
        watcher = SLOWatcher(SLOPolicy(window=100, latency_slo=10.0))
        for i in range(100):
            watcher.on_completion(ok_outcome(i, latency=float(i + 1)), now=float(i))
        assert watcher.window_p99() == 99.0

    def test_window_slides(self):
        watcher = SLOWatcher(SLOPolicy(window=4, latency_slo=0.5))
        for i in range(4):
            watcher.on_completion(ok_outcome(i, latency=1.0), now=float(i))
        assert watcher.breach_fraction() == 1.0
        # Four fast completions push all breaches out of the window.
        for i in range(4, 8):
            watcher.on_completion(ok_outcome(i, latency=0.1), now=float(i))
        assert watcher.breach_fraction() == 0.0
        assert watcher.breaches == 4  # lifetime total is not windowed

    def test_burn_rate_is_budget_scaled(self):
        watcher = SLOWatcher(SLOPolicy(window=4, error_budget=0.5, burn_alert=9.0))
        watcher.on_completion(ok_outcome(0, latency=1.0), now=0.0)
        watcher.on_completion(ok_outcome(1, latency=0.1), now=1.0)
        assert watcher.breach_fraction() == 0.5
        assert watcher.burn_rate() == 1.0


class TestBurnAlert:
    def test_episode_opens_and_closes(self):
        watcher = SLOWatcher(
            SLOPolicy(window=4, latency_slo=0.5, error_budget=0.5, burn_alert=1.0)
        )
        for i in range(4):  # all breach -> burn rate 2.0
            watcher.on_completion(ok_outcome(i, latency=1.0), now=float(i))
        assert watcher.alert_open
        assert watcher.alerts == 1
        for i in range(4, 8):  # all fast -> burn rate 0.0
            watcher.on_completion(ok_outcome(i, latency=0.1), now=float(i))
        assert not watcher.alert_open
        events = [record["event"] for record in watcher.events]
        assert events.count("burn_alert_start") == 1
        assert events.count("burn_alert_end") == 1
        # Start precedes end; one episode, not re-opened per breach.
        assert events.index("burn_alert_start") < events.index("burn_alert_end")

    def test_alert_carries_posture(self):
        watcher = SLOWatcher(
            SLOPolicy(window=2, latency_slo=0.5, error_budget=0.5, burn_alert=1.0)
        )
        watcher.on_completion(ok_outcome(0, latency=2.0), now=5.0)
        start = [e for e in watcher.events if e["event"] == "burn_alert_start"][0]
        assert start["time"] == 5.0
        # One breach in a one-item window over a 0.5 budget burns at 2.0.
        assert start["burn_rate"] == 2.0
        assert start["p99"] == 2.0


class TestEdgeCases:
    def test_window_size_accessor(self):
        watcher = SLOWatcher(SLOPolicy(window=4))
        assert watcher.window_size() == 0
        for i in range(6):
            watcher.on_completion(ok_outcome(i), now=float(i))
            assert watcher.window_size() == min(i + 1, 4)

    def test_zero_traffic_window_stays_empty(self):
        # Rejections (shed / queue-full) bypass the latency window: a
        # replica that sheds everything has NO burn evidence, not a
        # saturated window of zeros.
        watcher = SLOWatcher(SLOPolicy(window=4, burn_alert=1.0))
        for i in range(10):
            watcher.on_completion(rejected_outcome(i), now=float(i))
        assert watcher.window_size() == 0
        assert watcher.burn_rate() == 0.0
        assert not watcher.alert_open

    def test_episode_closes_exactly_at_window_boundary(self):
        # budget 0.25 with burn_alert 1.0: a single breach in a window
        # of 4 keeps the episode open. The alert must close on exactly
        # the completion that slides the last breach out of the window
        # — not one early, not one late.
        watcher = SLOWatcher(
            SLOPolicy(window=4, latency_slo=0.5, error_budget=0.25, burn_alert=1.0)
        )
        for i in range(4):
            watcher.on_completion(ok_outcome(i, latency=1.0), now=float(i))
        assert watcher.alert_open
        for i in range(4, 7):
            watcher.on_completion(ok_outcome(i, latency=0.1), now=float(i))
            # Window still holds >= 1 breach: burn >= alert threshold.
            assert watcher.alert_open, f"closed early after completion {i}"
        watcher.on_completion(ok_outcome(7, latency=0.1), now=7.0)
        assert not watcher.alert_open
        end = [e for e in watcher.events if e["event"] == "burn_alert_end"]
        assert len(end) == 1 and end[0]["time"] == 7.0

    def test_tiny_budget_burn_is_finite(self):
        # error_budget=0 is rejected at construction (see TestPolicy);
        # the smallest representable budget must still divide cleanly.
        watcher = SLOWatcher(SLOPolicy(window=2, error_budget=1e-9))
        watcher.on_completion(ok_outcome(0, latency=9.0), now=0.0)
        assert watcher.burn_rate() == pytest.approx(1e9)
        assert np.isfinite(watcher.burn_rate())


class TestEvents:
    def test_rejected_bypasses_window(self):
        watcher = SLOWatcher()
        watcher.on_completion(rejected_outcome(7), now=1.0)
        assert watcher.completions == 0
        assert watcher.events == [
            {"event": "rejected", "time": 1.0, "request_id": 7}
        ]

    def test_degraded_completion_records_rows(self):
        watcher = SLOWatcher(SLOPolicy(burn_alert=99.0))
        watcher.on_completion(degraded_outcome(3, rows=5), now=2.0)
        degraded = [e for e in watcher.events if e["event"] == "degraded"]
        assert degraded == [
            {"event": "degraded", "time": 2.0, "request_id": 3, "rows": 5}
        ]

    def test_timeout_and_exhausted_routing(self):
        watcher = SLOWatcher()
        watcher.on_timeout(party=1, batch_id=4, attempt=0, now=1.0)
        watcher.on_timeout(party=1, batch_id=4, attempt=1, now=2.0, exhausted=True)
        events = [record["event"] for record in watcher.events]
        assert events == ["timeout", "timeout", "degraded_route"]

    def test_labels_merged_into_every_event(self):
        watcher = SLOWatcher(labels={"scenario": "degraded"})
        watcher.on_timeout(party=0, batch_id=1, attempt=0, now=0.0)
        assert watcher.events[0]["scenario"] == "degraded"

    def test_event_lines_and_jsonl(self, tmp_path):
        watcher = SLOWatcher()
        watcher.on_timeout(party=0, batch_id=1, attempt=0, now=0.5)
        watcher.on_completion(ok_outcome(2), now=1.0)
        path = tmp_path / "events.jsonl"
        assert watcher.write_jsonl(path) == 1  # completions emit no event
        lines = path.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["timeout"]
        # Keys are sorted for stable diffs.
        assert lines[0].index('"batch_id"') < lines[0].index('"party"')
        # Append mode stacks a second watcher's stream.
        other = SLOWatcher(labels={"scenario": "b"})
        other.on_timeout(party=1, batch_id=2, attempt=0, now=2.0)
        other.write_jsonl(path, append=True)
        assert len(path.read_text().splitlines()) == 2

    def test_summary_counts_events(self):
        watcher = SLOWatcher(SLOPolicy(burn_alert=1e9))
        watcher.on_completion(ok_outcome(0, latency=1.0), now=0.0)
        watcher.on_timeout(party=0, batch_id=0, attempt=0, now=1.0, exhausted=True)
        summary = watcher.summary()
        assert summary["completions"] == 1
        assert summary["breaches"] == 1
        assert summary["events"] == {"degraded_route": 1, "timeout": 1}
        assert summary["policy"]["window"] == 64


class TestRegistry:
    def test_gauges_and_counters_published(self):
        registry = MetricsRegistry()
        watcher = SLOWatcher(
            SLOPolicy(window=2, latency_slo=0.5, error_budget=0.5, burn_alert=1.0),
            registry=registry,
        )
        watcher.on_completion(ok_outcome(0, latency=2.0), now=0.0)
        watcher.on_timeout(party=0, batch_id=0, attempt=0, now=1.0, exhausted=True)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["serve.slo.p99"] == 2.0
        assert snapshot["gauges"]["serve.slo.burn_rate"] == 2.0
        assert snapshot["counters"]["serve.slo.timeout"] == 1
        assert snapshot["counters"]["serve.slo.degraded_route"] == 1
        assert snapshot["counters"]["serve.slo.burn_alert_start"] == 1

    def test_no_registry_is_fine(self):
        watcher = SLOWatcher()
        watcher.on_completion(ok_outcome(0, latency=2.0), now=0.0)
        assert watcher.summary()["breaches"] == 1


class TestServeBenchIntegration:
    @pytest.fixture(scope="class")
    def smoke(self, tmp_path_factory):
        from repro.serve.bench import run_bench

        out = tmp_path_factory.mktemp("slo")
        events = out / "events.jsonl"
        report_path = out / "report.json"
        report = run_bench(
            smoke=True, events_out=str(events), report_out=str(report_path)
        )
        return report, events, report_path

    def test_slo_summaries_in_report(self, smoke):
        report, _, _ = smoke
        assert report["slo"]["completions"] > 0
        degraded = report["degraded_scenario"]["slo"]
        assert degraded["events"].get("timeout", 0) > 0
        assert degraded["events"].get("degraded_route", 0) > 0

    def test_runtime_feeds_shared_registry(self, smoke):
        # The saved RunReport snapshots the shared obs registry: the
        # SLO watcher's counters land next to the runtime's own.
        _, _, report_path = smoke
        counters = json.loads(report_path.read_text())["metrics"]["counters"]
        assert counters["serve.slo.timeout"] > 0
        assert counters["serve.slo.degraded_route"] > 0
        assert any(key.startswith("serve.") and not key.startswith("serve.slo.")
                   for key in counters)

    def test_report_references_events_artifact(self, smoke):
        _, events, report_path = smoke
        data = json.loads(report_path.read_text())
        assert data["artifacts"] == {"events": str(events)}

    def test_events_jsonl_written_with_scenario_labels(self, smoke):
        report, events, _ = smoke
        lines = [json.loads(line) for line in events.read_text().splitlines()]
        assert len(lines) == report["events_written"]
        scenarios = {line["scenario"] for line in lines}
        assert "degraded" in scenarios
