"""Tests for the online serving subsystem (repro.serve)."""

import json

import numpy as np
import pytest

from repro.core.config import VF2BoostConfig
from repro.core.inference import FederatedPredictor
from repro.core.serialization import (
    ModelFormatError,
    load_model,
    model_from_payloads,
    model_to_payloads,
    save_model,
)
from repro.core.trainer import FederatedTrainer
from repro.fed.cluster import ClusterSpec
from repro.gbdt.binning import bin_dataset
from repro.gbdt.loss import sigmoid
from repro.gbdt.params import GBDTParams
from repro.serve import bench as serve_bench
from repro.serve.batcher import MicroBatcher, RouteWork
from repro.serve.loadgen import (
    LoadgenConfig,
    make_party_delay,
    make_requests,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.metrics import Histogram, ServeMetrics
from repro.serve.registry import ModelRegistry
from repro.fed.retry import PartyHealth, RetryPolicy
from repro.serve.resilience import majority_directions
from repro.serve.session import Request, ServeConfig, ServingRuntime


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(23)
    n, d = 220, 8
    features = rng.normal(size=(n, d))
    labels = ((features @ rng.normal(size=d)) > 0).astype(float)
    params = GBDTParams(n_trees=3, n_layers=4, n_bins=8)
    full = bin_dataset(features, params.n_bins)
    parties = [
        full.subset_features(np.arange(4, 8)),  # Party B (active)
        full.subset_features(np.arange(0, 4)),  # Party A (passive)
    ]
    config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
    result = FederatedTrainer(config).fit(parties, labels)
    return result.model, parties


def _make_registry(model, parties):
    registry = ModelRegistry()
    registry.register(
        "v1",
        model,
        bin_edges={k: p.cut_points for k, p in enumerate(parties)},
        calibration_codes={k: p.codes for k, p in enumerate(parties)},
    )
    registry.activate("v1")
    return registry


def _feature_dims(parties):
    return {k: p.n_features for k, p in enumerate(parties)}


class TestRegistry:
    def test_duplicate_version_rejected(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(
                "v1", model, {k: p.cut_points for k, p in enumerate(parties)}
            )

    def test_missing_bin_edges_rejected(self, trained):
        model, parties = trained
        registry = ModelRegistry()
        # Party 1 owns passive splits but gets no edges.
        with pytest.raises(ModelFormatError, match="bin edges"):
            registry.register("v1", model, {0: parties[0].cut_points})

    def test_skeleton_without_sidecar_rejected(self, trained):
        model, parties = trained
        payloads = model_to_payloads(model)
        skeleton_only = model_from_payloads(payloads["shared"], {})
        registry = ModelRegistry()
        with pytest.raises(ModelFormatError, match="sidecar not applied"):
            registry.register(
                "v1",
                skeleton_only,
                {k: p.cut_points for k, p in enumerate(parties)},
            )

    def test_hot_swap_and_rollback(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        registry.register(
            "v2", model, {k: p.cut_points for k, p in enumerate(parties)}
        )
        assert registry.active().version == "v1"
        registry.activate("v2")
        assert registry.active().version == "v2"
        assert registry.versions() == ["v1", "v2"]
        assert registry.rollback().version == "v1"
        with pytest.raises(LookupError):
            registry.rollback()  # nothing earlier than v1

    def test_register_from_files(self, trained, tmp_path):
        model, parties = trained
        files = save_model(
            model, str(tmp_path / "shared.json"), str(tmp_path / "private")
        )
        registry = ModelRegistry()
        entry = registry.register_from_files(
            "v1",
            files[0],
            files[1:],
            bin_edges={k: p.cut_points for k, p in enumerate(parties)},
        )
        codes = {k: p.codes for k, p in enumerate(parties)}
        assert np.array_equal(
            entry.model.predict_margin(codes), model.predict_margin(codes)
        )

    def test_register_from_files_missing_sidecar(self, trained, tmp_path):
        model, parties = trained
        files = save_model(
            model, str(tmp_path / "shared.json"), str(tmp_path / "private")
        )
        # Drop every passive sidecar: registration must fail, naming
        # the missing owner.
        keep = [f for f in files[1:] if f.endswith("party0.json")]
        registry = ModelRegistry()
        with pytest.raises(ModelFormatError, match="sidecar"):
            registry.register_from_files(
                "v1",
                files[0],
                keep,
                bin_edges={k: p.cut_points for k, p in enumerate(parties)},
            )


class TestSerializationErrors:
    def test_format_version_mismatch(self, trained, tmp_path):
        model, _ = trained
        files = save_model(
            model, str(tmp_path / "shared.json"), str(tmp_path / "private")
        )
        payload = json.loads(open(files[0]).read())
        payload["format_version"] = 999
        with open(files[0], "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(ModelFormatError, match="format version"):
            load_model(files[0], files[1:])

    def test_missing_owner_sidecar_named(self, trained, tmp_path):
        model, _ = trained
        files = save_model(
            model, str(tmp_path / "shared.json"), str(tmp_path / "private")
        )
        keep = [f for f in files[1:] if f.endswith("party0.json")]
        with pytest.raises(ModelFormatError, match=r"\b1\b"):
            load_model(files[0], keep, require_complete=True)
        # Without the completeness requirement a partial load is legal
        # (a party inspecting its own sidecar).
        load_model(files[0], keep)

    def test_model_format_error_is_value_error(self):
        assert issubclass(ModelFormatError, ValueError)


class TestMicroBatcher:
    def _work(self, request_id=0):
        rows = np.arange(2)
        return RouteWork(
            request_id=request_id,
            tree_index=0,
            node_id=1,
            rows=rows,
            instance_ids=rows,
        )

    def test_size_triggered_flush(self):
        batcher = MicroBatcher(max_batch_size=3, max_delay=1.0)
        assert batcher.add(1, self._work(0), now=0.0)[0] == "timer"
        assert batcher.add(1, self._work(1), now=0.0) is None
        verdict = batcher.add(1, self._work(2), now=0.0)
        assert verdict[0] == "flush"
        assert [w.request_id for w in verdict[1]] == [0, 1, 2]
        assert batcher.pending(1) == 0

    def test_stale_timer_ignored(self):
        batcher = MicroBatcher(max_batch_size=2, max_delay=1.0)
        kind, _, generation = batcher.add(1, self._work(0), now=0.0)
        assert kind == "timer"
        batcher.add(1, self._work(1), now=0.0)  # size flush drains
        assert batcher.on_timer(1, generation) is None

    def test_timer_flush_drains(self):
        batcher = MicroBatcher(max_batch_size=10, max_delay=0.5)
        kind, deadline, generation = batcher.add(1, self._work(0), now=2.0)
        assert kind == "timer" and deadline == 2.5
        items = batcher.on_timer(1, generation)
        assert [w.request_id for w in items] == [0]
        assert batcher.on_timer(1, generation) is None

    def test_parties_batched_independently(self):
        batcher = MicroBatcher(max_batch_size=2, max_delay=1.0)
        batcher.add(1, self._work(0), now=0.0)
        batcher.add(2, self._work(1), now=0.0)
        assert batcher.pending(1) == 1 and batcher.pending(2) == 1
        assert batcher.add(1, self._work(2), now=0.0)[0] == "flush"
        assert batcher.pending(2) == 1
        assert [w.request_id for w in batcher.force_flush(2)] == [1]


class TestRuntimeParity:
    def _run(self, trained, config=None, **load_kwargs):
        model, parties = trained
        registry = _make_registry(model, parties)
        runtime = ServingRuntime(
            registry, cluster=ClusterSpec(), config=config or ServeConfig()
        )
        load = LoadgenConfig(
            n_requests=load_kwargs.pop("n_requests", 24),
            feature_dims=_feature_dims(parties),
            seed=load_kwargs.pop("seed", 5),
            **load_kwargs,
        )
        requests = make_requests(load)
        outcomes = run_closed_loop(
            runtime, requests, load_kwargs.get("concurrency", 8)
        )
        return registry.active(), requests, outcomes, runtime

    def _reference_margins(self, version, request):
        codes = {
            party: version.bin_rows(party, block)
            for party, block in sorted(request.rows.items())
        }
        offline = FederatedPredictor(version.model, codes, key_bits=256)
        return offline.predict_margin(), version.model.predict_margin(codes)

    def test_batched_margins_bit_identical(self, trained):
        version, requests, outcomes, _ = self._run(trained)
        by_id = {r.request_id: r for r in requests}
        assert len(outcomes) == len(requests)
        for outcome in outcomes:
            assert not outcome.degraded
            offline, centralized = self._reference_margins(
                version, by_id[outcome.request_id]
            )
            assert np.array_equal(outcome.margins, offline)
            assert np.array_equal(outcome.margins, centralized)
            assert np.array_equal(outcome.probabilities, sigmoid(outcome.margins))

    def test_cached_margins_bit_identical(self, trained):
        version, requests, outcomes, runtime = self._run(
            trained, n_requests=30, duplicate_fraction=0.5, concurrency=1
        )
        snapshot = runtime.snapshot()
        assert snapshot["counters"]["cache_hits"] > 0
        by_id = {r.request_id: r for r in requests}
        hits = 0
        for outcome in outcomes:
            hits += outcome.cache_hits
            offline, centralized = self._reference_margins(
                version, by_id[outcome.request_id]
            )
            assert np.array_equal(outcome.margins, offline)
            assert np.array_equal(outcome.margins, centralized)
        assert hits == snapshot["counters"]["cache_hits"]

    def test_degraded_off_late_answers_stay_exact(self, trained):
        # With degraded routing disabled, a slow party's answers arrive
        # late but are still exact: parity must hold bit-for-bit.
        model, parties = trained
        registry = _make_registry(model, parties)
        load = LoadgenConfig(
            n_requests=12,
            feature_dims=_feature_dims(parties),
            seed=11,
            slow_party=1,
            slow_probability=0.6,
            slow_delay=1.0,
        )
        runtime = ServingRuntime(
            registry,
            cluster=ClusterSpec(),
            config=ServeConfig(degraded_enabled=False, deadline=60.0),
            retry=RetryPolicy(timeout=0.25),
            party_delay=make_party_delay(load),
        )
        requests = make_requests(load)
        outcomes = run_closed_loop(runtime, requests, 4)
        by_id = {r.request_id: r for r in requests}
        version = registry.active()
        assert len(outcomes) == len(requests)
        for outcome in outcomes:
            assert not outcome.degraded
            codes = {
                party: version.bin_rows(party, block)
                for party, block in sorted(by_id[outcome.request_id].rows.items())
            }
            assert np.array_equal(
                outcome.margins, version.model.predict_margin(codes)
            )

    def test_open_loop_completes(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        runtime = ServingRuntime(registry, cluster=ClusterSpec())
        load = LoadgenConfig(
            n_requests=16,
            feature_dims=_feature_dims(parties),
            seed=3,
            mode="open",
            rate=500.0,
        )
        outcomes = run_open_loop(runtime, make_requests(load))
        assert len(outcomes) == 16
        assert all(o.finished >= o.admitted for o in outcomes)


class TestDegradedMode:
    def test_degraded_requests_flagged_and_counted(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        load = LoadgenConfig(
            n_requests=32,
            feature_dims=_feature_dims(parties),
            seed=104,
            slow_party=1,
            slow_probability=0.6,
            slow_delay=1.0,
        )
        runtime = ServingRuntime(
            registry,
            cluster=ClusterSpec(),
            retry=RetryPolicy(timeout=0.25, max_retries=2),
            party_delay=make_party_delay(load),
        )
        outcomes = run_closed_loop(runtime, make_requests(load), 8)
        degraded = [o for o in outcomes if o.degraded]
        healthy = [o for o in outcomes if not o.degraded]
        assert degraded, "fault injection produced no degraded requests"
        assert healthy, "every request degraded; scenario too aggressive"
        assert all(o.degraded_rows > 0 for o in degraded)
        snapshot = runtime.snapshot()
        assert snapshot["counters"]["degraded_requests"] == len(degraded)
        assert snapshot["counters"]["timeouts"] > 0
        assert snapshot["rates"]["degraded_rate"] > 0
        # Degraded margins are still finite, sane predictions.
        for outcome in degraded:
            assert np.all(np.isfinite(outcome.margins))

    def test_majority_directions_match_calibration(self, trained):
        model, parties = trained
        codes = {k: p.codes for k, p in enumerate(parties)}
        directions = majority_directions(model, codes)
        for (t, node_id), goes_left in directions.items():
            node = model.trees[t].nodes[node_id]
            assert node.owner != 0
            column = codes[node.owner][:, node.feature]
            left = int((column <= node.bin_index).sum())
            assert goes_left == (left * 2 >= column.size)

    def test_party_health_suspicion(self):
        health = PartyHealth(party=1)
        assert not health.suspect
        health.record_timeout()
        health.record_timeout()
        assert health.suspect
        health.record_success()
        assert not health.suspect

    def test_retry_backoff_monotone(self):
        policy = RetryPolicy(timeout=0.2, max_retries=3)
        waits = [policy.backoff(a) for a in range(1, 4)]
        assert waits == sorted(waits)
        assert policy.worst_case_wait() >= policy.timeout


class TestOfflineCoalescing:
    def test_coalesced_fewer_round_trips_same_margins(self, trained):
        model, parties = trained
        codes = {k: p.codes for k, p in enumerate(parties)}
        batched = FederatedPredictor(model, codes, key_bits=256, coalesce=True)
        naive = FederatedPredictor(model, codes, key_bits=256, coalesce=False)
        margins_batched = batched.predict_margin()
        margins_naive = naive.predict_margin()
        assert np.array_equal(margins_batched, margins_naive)
        passive_splits = model.split_counts_by_owner().get(1, 0)
        assert passive_splits > 1
        assert naive.round_trips >= passive_splits
        assert batched.round_trips < naive.round_trips
        # One round trip per (owner, layer) with remote work, at most.
        assert batched.round_trips <= len(model.trees) * 4
        assert batched.bytes_on_wire > 0
        assert naive.bytes_on_wire > 0


class TestMetrics:
    def test_histogram_quantiles(self):
        hist = Histogram(bounds=(0.1, 1.0, 10.0))
        for value in [0.05, 0.5, 0.5, 2.0, 20.0]:
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["max"] == 20.0
        assert snap["p50"] == 0.5
        assert hist.quantile(0.0) == 0.05
        assert hist.quantile(1.0) == 20.0
        assert abs(snap["mean"] - (23.05 / 5)) < 1e-12

    def test_snapshot_shape(self):
        metrics = ServeMetrics()
        metrics.inc("requests", 4)
        metrics.inc("predictions", 4)
        metrics.inc("round_trips", 2)
        metrics.latency.observe(0.01)
        metrics.wire_bytes = 1000
        snap = metrics.snapshot()
        assert snap["counters"]["requests"] == 4
        assert snap["per_1k_predictions"]["round_trips"] == 500.0
        assert snap["per_1k_predictions"]["wire_bytes"] == 250000.0
        assert json.loads(metrics.to_json())["counters"]["requests"] == 4


class TestAdmission:
    def test_queue_overflow_rejects(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        runtime = ServingRuntime(
            registry,
            cluster=ClusterSpec(),
            config=ServeConfig(max_queue=4),
        )
        load = LoadgenConfig(
            n_requests=24, feature_dims=_feature_dims(parties), seed=9
        )
        outcomes = run_open_loop(runtime, make_requests(load))
        rejected = [o for o in outcomes if o.rejected]
        assert rejected
        assert runtime.snapshot()["counters"]["rejected"] == len(rejected)

    def test_bad_row_shape_rejected(self, trained):
        model, parties = trained
        registry = _make_registry(model, parties)
        version = registry.active()
        with pytest.raises(ValueError, match="2-D"):
            version.bin_rows(0, np.zeros(4))


class TestBenchSmoke:
    def test_smoke_meets_acceptance(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        assert serve_bench.main(["--smoke", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["parity"]["margins_bit_identical"]
        assert report["config"]["concurrency"] >= 16
        assert report["ratios"]["round_trip_reduction"] >= 5.0
        assert report["degraded_scenario"]["degraded_requests"] > 0
        assert report["batched"]["snapshot"]["counters"]["requests"] > 0

    def test_smoke_emits_obs_artifacts(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        trace_out = tmp_path / "serve.trace.json"
        report_out = tmp_path / "serve.report.json"
        rc = serve_bench.main(
            [
                "--smoke",
                "--out", str(out),
                "--trace-out", str(trace_out),
                "--report-out", str(report_out),
            ]
        )
        assert rc == 0
        trace = json.loads(trace_out.read_text())
        events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert events
        run_report = json.loads(report_out.read_text())
        assert run_report["kind"] == "serve"
        assert run_report["channels"]["total_messages"] > 0
        # The trace and the report must agree on per-phase totals.
        by_cat: dict = {}
        for event in events:
            by_cat[event["cat"]] = by_cat.get(event["cat"], 0.0) + event["dur"]
        for phase, seconds in run_report["phases"].items():
            assert by_cat[phase] / 1_000_000 == pytest.approx(
                seconds, abs=1e-5
            )
