"""Tier-1 tests for regression forensics, the what-if explorer and the
observability satellites of the forensics PR: ``bench-gate --explain``,
``trace --summary``, Chrome counter tracks, per-lane tracer views and
the ``serve.resilience`` deprecation shim."""

import dataclasses
import importlib
import json
import warnings

import pytest

from repro import cli
from repro.bench.costmodel import CostModel
from repro.bench.perfdb import PerfDB, PerfEntry
from repro.obs import RunReport, Span, Tracer
from repro.obs.forensics import (
    Contribution,
    classify_scalar,
    diff_reports,
    diff_scalar_maps,
    explain_failures,
)
from repro.obs.trace_export import write_chrome_trace
from repro.obs.whatif import (
    DEFAULT_SHAPE,
    parse_speedups,
    perturb_cost,
    run_whatif,
)


class TestClassify:
    @pytest.mark.parametrize(
        "name,group",
        [
            ("ops.enc", "op"),
            ("phase.Enc", "phase"),
            ("critical.B", "critical"),
            ("critical.wait", "critical"),
            ("wire.0->1.bytes", "wire"),
            ("total_bytes", "wire"),
            ("sim_makespan", "makespan"),
            ("fleet.p99", "fleet"),
            ("canary.promotions", "fleet"),
            ("auc", "other"),
        ],
    )
    def test_groups(self, name, group):
        assert classify_scalar(name) == group


class TestDiffScalarMaps:
    def test_sorted_by_absolute_delta_then_name(self):
        contributions = diff_scalar_maps(
            {"a": 1.0, "b": 5.0, "c": 2.0},
            {"a": 2.0, "b": 1.0, "c": 3.0},
        )
        assert [c.name for c in contributions] == ["b", "a", "c"]

    def test_missing_side_diffs_against_zero(self):
        contributions = diff_scalar_maps({"gone": 3.0}, {"new": 4.0})
        by_name = {c.name: c for c in contributions}
        assert by_name["gone"].value == 0.0 and by_name["gone"].delta == -3.0
        assert by_name["new"].baseline == 0.0 and by_name["new"].delta == 4.0

    def test_zero_deltas_dropped_unless_asked(self):
        assert diff_scalar_maps({"same": 1.0}, {"same": 1.0}) == []
        kept = diff_scalar_maps({"same": 1.0}, {"same": 1.0}, include_zero=True)
        assert [c.name for c in kept] == ["same"]

    def test_deterministic(self):
        base = {f"s{i}": float(i) for i in range(20)}
        cur = {f"s{i}": float(i * 2 % 7) for i in range(20)}
        first = [c.to_dict() for c in diff_scalar_maps(base, cur)]
        second = [c.to_dict() for c in diff_scalar_maps(dict(base), dict(cur))]
        assert first == second

    def test_contribution_render(self):
        c = Contribution(name="ops.enc", group="op", baseline=10.0, value=15.0)
        assert c.render() == "ops.enc [op]: 10 -> 15 (grew 5, +50.0%)"
        z = Contribution(name="x", group="other", baseline=0.0, value=2.0)
        assert "%" not in z.render()


class TestDiffReports:
    def reports(self):
        baseline = RunReport(
            kind="schedule",
            makespan=2.0,
            phases={"Enc": 1.0, "SplitNode": 1.0},
            channels={"directions": {"0->1": {"bytes": 100, "messages": 4}}},
            critical_path={"by_resource": {"B": 1.9}, "wait_seconds": 0.1},
        )
        current = dataclasses.replace(
            baseline,
            makespan=3.0,
            phases={"Enc": 2.0, "SplitNode": 1.0},
            critical_path={"by_resource": {"B": 2.8}, "wait_seconds": 0.2},
        )
        return baseline, current

    def test_decomposition_names_guilty_phase(self):
        baseline, current = self.reports()
        diff = diff_reports(baseline, current)
        assert diff.regressed
        assert diff.makespan.delta == 1.0
        assert diff.sections["phases"][0].name == "Enc"
        assert diff.sections["critical"][0].name == "critical.B"
        assert diff.sections["wire"] == []

    def test_accepts_raw_dicts(self):
        baseline, current = self.reports()
        from_objects = diff_reports(baseline, current).to_dict()
        from_dicts = diff_reports(baseline.to_dict(), current.to_dict()).to_dict()
        assert from_objects == from_dicts

    def test_lines_mention_sections(self):
        baseline, current = self.reports()
        lines = diff_reports(baseline, current).lines()
        text = "\n".join(lines)
        assert "phases:" in text and "critical:" in text


class TestExplainFailures:
    def test_headline_then_breakdown(self):
        baseline = {"sim_makespan": 2.0, "ops.enc": 10.0}
        current = {"sim_makespan": 3.0, "ops.enc": 30.0}
        lines = explain_failures(baseline, current, {"sim_makespan"})
        assert lines[0].startswith("sim_makespan [makespan]: 2 -> 3")
        assert any("ops.enc" in line for line in lines)

    def test_flagged_but_unchanged(self):
        lines = explain_failures({"x": 1.0}, {"x": 1.0, "y": 2.0}, {"x"})
        assert lines[0] == "x: flagged but unchanged vs latest baseline"


class TestWhatIf:
    def test_parse_speedups(self):
        assert parse_speedups(["powmod=2", "wan=4"]) == {"powmod": 2.0, "wan": 4.0}
        with pytest.raises(ValueError):
            parse_speedups(["nonsense=2"])
        with pytest.raises(ValueError):
            parse_speedups(["powmod=0"])
        with pytest.raises(ValueError):
            parse_speedups(["powmod"])

    def test_perturb_cost_divides_targets(self):
        cost = CostModel.paper()
        faster = perturb_cost(cost, {"enc": 2.0})
        assert faster.t_enc == cost.t_enc / 2.0
        assert faster.t_dec == cost.t_dec  # untouched family

    def test_identity_speedup_changes_nothing(self):
        result = run_whatif({"powmod": 1.0})
        assert result.predicted_speedup == 1.0
        assert result.predicted_makespan_delta == 0.0
        assert not result.bottleneck_shifted

    def test_deterministic_and_shape_echoed(self):
        first = run_whatif({"powmod": 2.0}).to_dict()
        second = run_whatif({"powmod": 2.0}).to_dict()
        assert first == second
        assert first["shape"] == dict(sorted(DEFAULT_SHAPE.items()))

    def test_large_shape_speeds_up(self):
        shape = dict(DEFAULT_SHAPE, n_instances=20000, n_features=10)
        result = run_whatif({"powmod": 8.0}, shape=shape)
        assert result.predicted_speedup > 1.0
        assert result.predicted_makespan_delta < 0.0

    def test_fig7_multipliers(self):
        result = run_whatif({"enc": 2.0})
        assert result.fig7_multipliers() == {"enc_ops_per_s": 2.0}


class TestWhatIfCLI:
    def test_requires_an_action(self, capsys):
        assert cli.main(["whatif"]) == 2
        assert "--speedup" in capsys.readouterr().err

    def test_bad_speedup_rejected(self, capsys):
        assert cli.main(["whatif", "--speedup", "bogus=2"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_json_payload(self, capsys):
        assert cli.main(["whatif", "--speedup", "powmod=2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["whatif"]["speedups"] == {"powmod": 2.0}
        assert "predicted_speedup" in payload["whatif"]

    def test_break_even_reports_a_point_or_never(self, capsys):
        assert cli.main(["whatif", "--break-even", "powmod", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        point = payload["break_even"]
        assert point["op"] == "powmod"
        assert "factor" in point and "bottleneck_before" in point


class TestBenchGateExplain:
    def test_injected_regression_names_guilty_scalar(self, tmp_path, capsys):
        db_path = str(tmp_path / "BENCH_perf.json")
        assert cli.main(["bench-gate", "--db", db_path]) == 0
        capsys.readouterr()
        # Inject a synthetic regression into a copy of the committed
        # baseline: bump one exact op count so the rerun's measurement
        # no longer matches.
        tampered = PerfDB.load(db_path)
        last = tampered.entries[-1]
        scalars = dict(last.scalars)
        scalars["ops.enc"] = dataclasses.replace(
            scalars["ops.enc"], value=scalars["ops.enc"].value + 7
        )
        tampered.entries[-1] = PerfEntry(
            name=last.name, scalars=scalars, meta=last.meta
        )
        tampered.save(db_path)
        assert cli.main(["bench-gate", "--db", db_path, "--explain"]) == 1
        out = capsys.readouterr().out
        assert "why the gate failed" in out
        assert "ops.enc" in out
        assert "contributions (largest first):" in out

    def test_explanation_deterministic(self, tmp_path, capsys):
        db_path = str(tmp_path / "perf.json")
        assert cli.main(["bench-gate", "--db", db_path]) == 0
        tampered = PerfDB.load(db_path)
        last = tampered.entries[-1]
        scalars = dict(last.scalars)
        scalars["sim_makespan"] = dataclasses.replace(
            scalars["sim_makespan"], value=scalars["sim_makespan"].value * 2
        )
        tampered.entries[-1] = PerfEntry(
            name=last.name, scalars=scalars, meta=last.meta
        )
        tampered.save(db_path)
        capsys.readouterr()
        assert cli.main(["bench-gate", "--db", db_path, "--explain", "--json"]) == 1
        first = json.loads(capsys.readouterr().out)["explanation"]
        assert cli.main(["bench-gate", "--db", db_path, "--explain", "--json"]) == 1
        second = json.loads(capsys.readouterr().out)["explanation"]
        assert first == second
        assert any("sim_makespan" in line for line in first)


def sample_report(with_spans=True, with_counters=False):
    spans = []
    if with_spans:
        spans = [
            Span(name="enc", category="Enc", track="B", lane=0,
                 start=0.0, end=1.0).to_dict(),
            Span(name="hist", category="Hist", track="A1", lane=1,
                 start=0.5, end=2.0).to_dict(),
        ]
    metrics = {}
    if with_counters:
        metrics = {"counters": {"ops.enc": 48.0, "ops.dec": 3.0}}
    return RunReport(
        kind="schedule",
        label="unit",
        phases={"Enc": 1.0, "Hist": 1.5} if with_spans else {},
        spans=spans,
        metrics=metrics,
        makespan=2.0,
    )


class TestTraceSummary:
    def test_prints_tables_writes_nothing(self, tmp_path, capsys):
        path = tmp_path / "run.report.json"
        sample_report().save(str(path))
        before = sorted(tmp_path.iterdir())
        assert cli.main(["trace", str(path), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "per-lane utilization" in out
        assert "A1#1" in out
        assert sorted(tmp_path.iterdir()) == before  # no trace file

    def test_empty_report_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.report.json"
        sample_report(with_spans=False).save(str(path))
        assert cli.main(["trace", str(path), "--summary"]) == 1
        assert "nothing to summarize" in capsys.readouterr().err


class TestCounterTracks:
    def test_counter_events_emitted(self, tmp_path):
        report = sample_report(with_counters=True)
        out = tmp_path / "trace.json"
        report.write_chrome_trace(str(out))
        events = json.loads(out.read_text())["traceEvents"]
        counters = [e for e in events if e.get("ph") == "C"]
        assert {e["name"] for e in counters} == {"ops.enc", "ops.dec"}
        assert all(e["args"]["value"] >= 0.0 for e in counters)
        # one sample at t=0 and one at the horizon per counter
        assert len(counters) == 4

    def test_byte_deterministic(self, tmp_path):
        spans = sample_report().span_objects()
        counters = {"ops.dec": 3.0, "ops.enc": 48.0}
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(str(a), spans, counters=counters)
        write_chrome_trace(str(b), spans, counters=dict(reversed(counters.items())))
        assert a.read_bytes() == b.read_bytes()

    def test_no_counters_no_counter_events(self, tmp_path):
        out = tmp_path / "plain.json"
        sample_report().write_chrome_trace(str(out))
        events = json.loads(out.read_text())["traceEvents"]
        assert not [e for e in events if e.get("ph") == "C"]


class TestTracerLanes:
    def tracer(self):
        tracer = Tracer()
        tracer.extend(sample_report().span_objects())
        return tracer

    def test_lane_busy(self):
        busy = self.tracer().lane_busy()
        assert busy == {("A1", 1): 1.5, ("B", 0): 1.0}
        assert list(busy) == sorted(busy)

    def test_utilization_fractions(self):
        util = self.tracer().utilization()
        assert util[("A1", 1)] == pytest.approx(1.5 / 2.0)
        assert util[("B", 0)] == pytest.approx(0.5)

    def test_empty_tracer(self):
        assert Tracer().lane_busy() == {}
        assert Tracer().utilization() == {}


class TestResilienceShim:
    def test_moved_names_warn_and_resolve(self):
        import repro.fed.retry as retry
        import repro.serve.resilience as resilience

        importlib.reload(resilience)
        with pytest.warns(DeprecationWarning, match="repro.fed.retry"):
            policy = resilience.RetryPolicy
        assert policy is retry.RetryPolicy
        with pytest.warns(DeprecationWarning):
            health = resilience.PartyHealth
        assert health is retry.PartyHealth

    def test_canonical_names_do_not_warn(self):
        import repro.serve.resilience as resilience

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resilience.DegradedRouter is not None
            assert resilience.majority_directions is not None

    def test_unknown_attribute_raises(self):
        import repro.serve.resilience as resilience

        with pytest.raises(AttributeError):
            resilience.not_a_thing
