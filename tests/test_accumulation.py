"""Tests for re-ordered histogram accumulation (§5.1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.accumulation import ExponentWorkspace, naive_sum, reordered_sum
from repro.crypto.ciphertext import PaillierContext

CTX = PaillierContext.create(256, seed=15, jitter=4)


def _encrypt_many(values):
    return [CTX.encrypt(v) for v in values]


class TestCorrectness:
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_reordered_equals_naive(self, values):
        ciphers = _encrypt_many(values)
        assert CTX.decrypt(reordered_sum(CTX, ciphers)) == pytest.approx(
            CTX.decrypt(naive_sum(CTX, ciphers)), abs=1e-5
        )

    def test_sum_value(self):
        values = [random.Random(3).uniform(-1, 1) for _ in range(30)]
        total = reordered_sum(CTX, _encrypt_many(values))
        assert CTX.decrypt(total) == pytest.approx(sum(values), abs=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            reordered_sum(CTX, [])


class TestScalingCounts:
    def test_reordered_needs_at_most_e_minus_one_scalings(self):
        values = [random.Random(5).uniform(-1, 1) for _ in range(60)]
        ciphers = _encrypt_many(values)
        exponents = {c.exponent for c in ciphers}
        before = CTX.stats.snapshot()
        reordered_sum(CTX, ciphers)
        assert CTX.stats.diff(before).scalings <= len(exponents) - 1

    def test_naive_scales_much_more(self):
        rng = random.Random(6)
        values = [rng.uniform(-1, 1) for _ in range(60)]
        ciphers = _encrypt_many(values)
        before = CTX.stats.snapshot()
        naive_sum(CTX, ciphers)
        naive_scalings = CTX.stats.diff(before).scalings
        before = CTX.stats.snapshot()
        reordered_sum(CTX, ciphers)
        reordered_scalings = CTX.stats.diff(before).scalings
        assert naive_scalings > 3 * max(1, reordered_scalings)

    def test_single_exponent_needs_no_scaling(self):
        ctx = PaillierContext.create(256, seed=16, jitter=1)
        ciphers = [ctx.encrypt(float(v)) for v in range(10)]
        before = ctx.stats.snapshot()
        reordered_sum(ctx, ciphers)
        assert ctx.stats.diff(before).scalings == 0


class TestExponentWorkspace:
    def test_add_and_finalize(self):
        ws = ExponentWorkspace(CTX)
        values = [0.25, -0.5, 1.0, 2.0]
        for v in values:
            ws.add(CTX.encrypt(v))
        assert len(ws) == 4
        assert CTX.decrypt(ws.finalize()) == pytest.approx(sum(values), abs=1e-6)

    def test_exponents_sorted(self):
        ws = ExponentWorkspace(CTX)
        ws.add(CTX.encrypt(1.0, exponent=10))
        ws.add(CTX.encrypt(1.0, exponent=8))
        assert ws.exponents == [8, 10]

    def test_finalize_empty_raises(self):
        with pytest.raises(ValueError):
            ExponentWorkspace(CTX).finalize()

    def test_finalize_or_zero(self):
        empty = ExponentWorkspace(CTX)
        assert CTX.decrypt(empty.finalize_or_zero(8)) == 0.0

    def test_merge_from(self):
        a, b = ExponentWorkspace(CTX), ExponentWorkspace(CTX)
        a.add(CTX.encrypt(1.0))
        b.add(CTX.encrypt(2.0))
        b.add(CTX.encrypt(-0.5))
        a.merge_from(b)
        assert len(a) == 3
        assert CTX.decrypt(a.finalize()) == pytest.approx(2.5, abs=1e-6)

    def test_merge_does_not_scale(self):
        a, b = ExponentWorkspace(CTX), ExponentWorkspace(CTX)
        a.add(CTX.encrypt(1.0, exponent=8))
        b.add(CTX.encrypt(2.0, exponent=10))
        before = CTX.stats.snapshot()
        a.merge_from(b)
        assert CTX.stats.diff(before).scalings == 0
