"""Tier-1 smoke tests for the benchmark regression gate
(:mod:`repro.bench.perfdb` and ``python -m repro bench-gate``)."""

import dataclasses
import json

import pytest

from repro import cli
from repro.bench.perfdb import (
    GateResult,
    PerfDB,
    PerfEntry,
    PerfScalar,
    counted_scenario,
    gate,
)


def entry(name="scenario", **scalars):
    return PerfEntry(name=name, scalars=scalars)


def exact(value):
    return PerfScalar(float(value), kind="exact", direction="lower")


def measured(value, direction="higher"):
    return PerfScalar(float(value), kind="measured", direction=direction)


@pytest.fixture(scope="module")
def counted():
    return counted_scenario()


class TestPerfScalar:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            PerfScalar(1.0, kind="guessed")

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            PerfScalar(1.0, direction="sideways")

    def test_round_trip(self):
        scalar = measured(3.5, direction="lower")
        assert PerfScalar.from_dict(scalar.to_dict()) == scalar


class TestPerfDB:
    def test_missing_file_is_empty_db(self, tmp_path):
        db = PerfDB.load(tmp_path / "nope.json")
        assert db.entries == []

    def test_save_load_round_trip(self, tmp_path):
        db = PerfDB()
        db.append(entry(ops=exact(4), thr=measured(9.0)))
        db.append(entry(name="other", ops=exact(5)))
        path = tmp_path / "perf.json"
        db.save(path)
        loaded = PerfDB.load(path)
        assert loaded.entries == db.entries
        assert json.loads(path.read_text())["version"] == 1

    def test_history_filters_by_name_in_order(self):
        db = PerfDB()
        db.append(entry(ops=exact(1)))
        db.append(entry(name="other", ops=exact(2)))
        db.append(entry(ops=exact(3)))
        assert [e.scalars["ops"].value for e in db.history("scenario")] == [1, 3]


class TestGate:
    def test_bootstrap_passes(self):
        result = gate(PerfDB(), [entry(ops=exact(4))])
        assert result.ok
        assert result.verdicts[0].reason.startswith("bootstrap")

    def test_exact_bit_equal_passes(self):
        db = PerfDB([entry(ops=exact(4))])
        assert gate(db, [entry(ops=exact(4))]).ok

    def test_exact_any_change_fails_both_directions(self):
        db = PerfDB([entry(ops=exact(4))])
        for changed in (3, 5):
            result = gate(db, [entry(ops=exact(changed))])
            assert not result.ok
            assert result.failures()[0].scalar == "ops"

    def test_missing_exact_scalar_fails(self):
        db = PerfDB([entry(ops=exact(4), bytes=exact(100))])
        result = gate(db, [entry(ops=exact(4))])
        assert not result.ok
        assert result.failures()[0].reason == "exact scalar missing from new entry"

    def test_new_exact_scalar_allowed(self):
        db = PerfDB([entry(ops=exact(4))])
        assert gate(db, [entry(ops=exact(4), extra=exact(7))]).ok

    def test_measured_within_tolerance_passes(self):
        db = PerfDB([entry(thr=measured(100.0))])
        assert gate(db, [entry(thr=measured(80.0))]).ok  # within 25% rtol

    def test_measured_regression_fails_only_worse_direction(self):
        db = PerfDB([entry(thr=measured(100.0))])
        assert not gate(db, [entry(thr=measured(50.0))]).ok
        # 2x *better* throughput is never a regression.
        assert gate(db, [entry(thr=measured(200.0))]).ok

    def test_measured_lower_is_better_direction(self):
        db = PerfDB([entry(lat=measured(1.0, direction="lower"))])
        assert not gate(db, [entry(lat=measured(2.0, direction="lower"))]).ok
        assert gate(db, [entry(lat=measured(0.5, direction="lower"))]).ok

    def test_measured_window_median_and_spread(self):
        history = [entry(thr=measured(value)) for value in (90.0, 100.0, 110.0)]
        db = PerfDB(history)
        # median 100, spread 20 -> tolerance max(25, 40) = 40.
        assert gate(db, [entry(thr=measured(61.0))]).ok
        assert not gate(db, [entry(thr=measured(59.0))]).ok

    def test_lines_mark_regressions(self):
        db = PerfDB([entry(ops=exact(4))])
        result = gate(db, [entry(ops=exact(5))])
        assert any("REGRESSION" in line for line in result.lines())
        data = result.to_dict()
        assert data["ok"] is False

    def test_result_is_json_serializable(self):
        result = gate(PerfDB(), [entry(ops=exact(4))])
        assert json.loads(json.dumps(result.to_dict()))["ok"] is True


class TestCountedScenario:
    def test_deterministic_rerun_passes_gate(self, counted):
        again = counted_scenario()
        assert again == counted
        db = PerfDB([counted])
        assert gate(db, [again]).ok

    def test_all_scalars_exact_and_positive(self, counted):
        assert counted.name == "counted-train"
        for key, scalar in counted.scalars.items():
            assert scalar.kind == "exact", key
            # critical.wait is legitimately 0.0 on a stall-free
            # schedule; everything else must be strictly positive
            if key == "critical.wait":
                assert scalar.value >= 0, key
            else:
                assert scalar.value > 0, key
        assert {"ops.enc", "ops.dec", "ops.hadd", "sim_makespan"} <= set(
            counted.scalars
        )

    def test_injected_regression_is_caught(self, counted):
        db = PerfDB([counted])
        scalars = dict(counted.scalars)
        worse = scalars["ops.enc"].value * 1.2
        scalars["ops.enc"] = dataclasses.replace(scalars["ops.enc"], value=worse)
        result = gate(db, [PerfEntry(name=counted.name, scalars=scalars)])
        assert not result.ok
        assert [v.scalar for v in result.failures()] == ["ops.enc"]


class TestCLI:
    def test_bench_gate_round_trip_then_tamper(self, tmp_path, capsys):
        db_path = str(tmp_path / "BENCH_perf.json")
        # Bootstrap run: passes and seeds the database.
        assert cli.main(["bench-gate", "--db", db_path]) == 0
        assert len(PerfDB.load(db_path).history("counted-train")) == 1
        # Identical rerun: exact scalars are bit-equal, gate passes.
        assert cli.main(["bench-gate", "--db", db_path]) == 0
        assert len(PerfDB.load(db_path).history("counted-train")) == 2
        capsys.readouterr()
        # Tamper with the committed baseline: the rerun must now fail
        # and must NOT append to the database.
        tampered = PerfDB.load(db_path)
        last = tampered.entries[-1]
        scalars = dict(last.scalars)
        scalars["ops.enc"] = dataclasses.replace(
            scalars["ops.enc"], value=scalars["ops.enc"].value + 1
        )
        tampered.entries[-1] = PerfEntry(name=last.name, scalars=scalars, meta=last.meta)
        tampered.save(db_path)
        assert cli.main(["bench-gate", "--db", db_path]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert len(PerfDB.load(db_path).history("counted-train")) == 2

    def test_bench_gate_json_output(self, tmp_path, capsys):
        db_path = str(tmp_path / "perf.json")
        assert cli.main(["bench-gate", "--db", db_path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert all(v["ok"] for v in data["verdicts"])

    def test_gate_result_type(self, counted):
        assert isinstance(gate(PerfDB(), [counted]), GateResult)
