"""Tests for pluggable crypto backends and deterministic blaster lanes.

The contract under test: every backend returns bit-identical integers
for identical inputs (ciphertexts, models and golden op-count
fingerprints are therefore backend-invariant), and blaster lanes
reproduce the serial outputs *and* the serial powmod tallies no matter
how work is chunked.
"""

import random

import pytest

from repro.crypto import math_utils
from repro.crypto.backend import (
    BACKEND_NAMES,
    CrtParams,
    FastPythonBackend,
    FixedBaseTable,
    Gmpy2Backend,
    PythonBackend,
    _crt_powmod,
    auto_select,
    available_backends,
    create_backend,
)
from repro.crypto.blaster import BlasterLanes, partition
from repro.crypto.ciphertext import PaillierContext
from repro.crypto.math_utils import use_backend
from repro.crypto.packing import pack_ciphers, unpack_values
from repro.crypto.paillier import ObfuscatorPool, generate_keypair

PUBLIC, PRIVATE = generate_keypair(256, seed=42)

GMPY2_MISSING = not Gmpy2Backend.is_available()


class TestRegistry:
    def test_python_and_fast_always_available(self):
        names = available_backends()
        assert "python" in names and "fast" in names

    def test_selection_order_is_backend_names(self):
        assert available_backends() == tuple(
            name for name in BACKEND_NAMES if create_or_none(name)
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown crypto backend"):
            create_backend("openssl")

    @pytest.mark.skipif(not GMPY2_MISSING, reason="gmpy2 installed here")
    def test_unavailable_backend_raises_runtime_error(self):
        with pytest.raises(RuntimeError, match="not available"):
            create_backend("gmpy2")

    def test_auto_select_prefers_fastest_available(self):
        assert auto_select().name == available_backends()[0]

    def test_use_backend_restores_previous(self):
        before = math_utils.get_backend()
        with use_backend("fast") as active:
            assert active.name == "fast"
            assert math_utils.get_backend() is active
        assert math_utils.get_backend() is before


def create_or_none(name):
    try:
        return create_backend(name)
    except RuntimeError:
        return None


def _crt_params():
    p2 = PRIVATE.p * PRIVATE.p
    q2 = PRIVATE.q * PRIVATE.q
    return CrtParams(
        p_squared=p2,
        q_squared=q2,
        q_sq_inv=pow(q2, -1, p2),
        modulus=PUBLIC.n_squared,
    )


class TestCrtPowmod:
    def test_bit_identical_to_plain_pow(self):
        crt = _crt_params()
        rng = random.Random(3)
        for _ in range(20):
            base = rng.randrange(1, PUBLIC.n_squared)
            exponent = rng.randrange(1, PUBLIC.n)
            assert _crt_powmod(base, exponent, crt) == pow(
                base, exponent, PUBLIC.n_squared
            )

    def test_private_key_crt_params_are_cached(self):
        first = PRIVATE.crt_params()
        assert PRIVATE.crt_params() is first
        assert first.modulus == PUBLIC.n_squared

    def test_dispatch_uses_crt_only_for_matching_modulus(self):
        crt = _crt_params()
        with use_backend("fast"):
            # Mismatched modulus must take the plain path, same result.
            assert math_utils.powmod(7, 65537, PUBLIC.n, crt=crt) == pow(
                7, 65537, PUBLIC.n
            )
            assert math_utils.powmod(
                7, 65537, PUBLIC.n_squared, crt=crt
            ) == pow(7, 65537, PUBLIC.n_squared)


class TestFixedBaseTable:
    def test_bit_identical_across_exponent_range(self):
        modulus = PUBLIC.n_squared
        table = FixedBaseTable(12345, modulus, 128, build_after=0)
        rng = random.Random(4)
        exponents = [0, 1, (1 << 128) - 1] + [
            rng.randrange(1 << 128) for _ in range(30)
        ]
        for exponent in exponents:
            assert table.pow(exponent) == pow(12345, exponent, modulus)
        assert table.built

    def test_lazy_build_skips_one_shot_bases(self):
        table = FixedBaseTable(7, PUBLIC.n_squared, 64, build_after=1)
        assert table.pow(1234567) == pow(7, 1234567, PUBLIC.n_squared)
        assert not table.built  # first call served by the fallback
        assert table.pow(7654321) == pow(7, 7654321, PUBLIC.n_squared)
        assert table.built  # second call paid for the table

    def test_out_of_range_exponents_fall_back(self):
        table = FixedBaseTable(7, PUBLIC.n_squared, 16, build_after=0)
        wide = 1 << 40
        assert table.pow(wide) == pow(7, wide, PUBLIC.n_squared)
        assert table.pow(-3) == pow(7, -3, PUBLIC.n_squared)

    def test_window_one_degenerate_comb(self):
        table = FixedBaseTable(5, 1009, 10, window=1, build_after=0)
        for exponent in range(0, 1024, 37):
            assert table.pow(exponent) == pow(5, exponent, 1009)

    def test_fast_backend_caches_tables(self):
        backend = FastPythonBackend()
        first = backend.fixed_base(9, PUBLIC.n_squared, 64)
        assert backend.fixed_base(9, PUBLIC.n_squared, 32) is first
        # Wider exponents than the cached table covers force a rebuild.
        wider = backend.fixed_base(9, PUBLIC.n_squared, 128)
        assert wider is not first


def _ciphertext_trace(backend_name: str) -> list[int]:
    """Encrypt/HAdd/SMul/pack under one backend with pinned randomness."""
    with use_backend(backend_name):
        context = PaillierContext(
            PUBLIC,
            PRIVATE,
            jitter=1,
            obfuscator_rng=random.Random(99),
        )
        a = context.encrypt(1.25, exponent=4)
        b = context.encrypt(-2.5, exponent=4)
        total = context.add(a, b)
        scaled = context.multiply(a, -3)
        positive = [context.encrypt(float(v), exponent=0) for v in (11, 22, 33)]
        packed = pack_ciphers(context, positive, limb_bits=24)
        trace = [
            a.ciphertext,
            b.ciphertext,
            total.ciphertext,
            scaled.ciphertext,
            packed.ciphertext,
        ]
        assert context.decrypt(total) == pytest.approx(-1.25)
        assert context.decrypt(scaled) == pytest.approx(-3.75)
        assert unpack_values(context, packed) == [11, 22, 33]
        return trace


class TestCrossBackendBitIdentity:
    def test_all_available_backends_produce_identical_ciphertexts(self):
        traces = {
            name: _ciphertext_trace(name) for name in available_backends()
        }
        reference = traces["python"]
        for name, trace in traces.items():
            assert trace == reference, f"backend {name} diverged"

    def test_invert_parity_on_non_invertible_input(self):
        for name in available_backends():
            backend = create_backend(name)
            with pytest.raises(ValueError):
                backend.invert(6, 9)
            assert backend.invert(3, 7) == 5


class TestPartition:
    def test_contiguous_and_complete(self):
        chunks = partition(10, 3)
        assert chunks == [(0, 4), (4, 7), (7, 10)]

    def test_uneven_chunks_differ_by_at_most_one(self):
        for n_items in range(0, 40):
            for n_lanes in range(1, 9):
                chunks = partition(n_items, n_lanes)
                sizes = [stop - start for start, stop in chunks]
                assert sum(sizes) == n_items
                if sizes:
                    assert max(sizes) - min(sizes) <= 1
                    assert all(size > 0 for size in sizes)
                # contiguity: each chunk starts where the previous ended
                position = 0
                for start, stop in chunks:
                    assert start == position
                    position = stop

    def test_deterministic(self):
        assert partition(17, 4) == partition(17, 4)

    def test_more_lanes_than_items(self):
        assert partition(2, 8) == [(0, 1), (1, 2)]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition(-1, 2)
        with pytest.raises(ValueError):
            partition(4, 0)


class TestBlasterLanes:
    def test_serial_lane_matches_plain_loop(self):
        bases = [random.Random(7).randrange(1, PUBLIC.n) for _ in range(9)]
        expected = [pow(base, 65537, PUBLIC.n) for base in bases]
        with BlasterLanes(lanes=1) as lanes:
            assert lanes.powmod_batch(bases, 65537, PUBLIC.n) == expected

    def test_parallel_lanes_match_serial_bit_for_bit(self):
        rng = random.Random(8)
        bases = [rng.randrange(1, PUBLIC.n) for _ in range(10)]
        with BlasterLanes(lanes=1) as serial, BlasterLanes(lanes=3) as wide:
            assert wide.powmod_batch(
                bases, PUBLIC.n, PUBLIC.n_squared
            ) == serial.powmod_batch(bases, PUBLIC.n, PUBLIC.n_squared)

    def test_tally_folds_back_into_observer(self):
        rng = random.Random(9)
        bases = [rng.randrange(1, PUBLIC.n) for _ in range(7)]
        for n_lanes in (1, 3):
            counted = 0

            def observer():
                nonlocal counted
                counted += 1

            previous = math_utils.set_powmod_observer(observer)
            try:
                with BlasterLanes(lanes=n_lanes) as lanes:
                    lanes.powmod_batch(bases, 65537, PUBLIC.n)
            finally:
                math_utils.set_powmod_observer(previous)
            assert counted == len(bases), f"lanes={n_lanes}"

    def test_refill_pool_matches_serial_refill(self):
        serial_pool = ObfuscatorPool(PUBLIC, rng=random.Random(5))
        serial_pool.refill(6)
        serial = [serial_pool.take() for _ in range(6)]

        lane_pool = ObfuscatorPool(PUBLIC, rng=random.Random(5))
        with BlasterLanes(lanes=3) as lanes:
            lanes.refill_pool(lane_pool, 6, rng=random.Random(5))
        blasted = [lane_pool.take() for _ in range(6)]
        assert blasted == serial

    def test_batch_keys_advance_per_op(self):
        with BlasterLanes(lanes=1) as lanes:
            lanes.powmod_batch([2], 3, 1000, op="enc")
            lanes.powmod_batch([2], 3, 1000, op="enc")
            lanes.powmod_batch([2], 3, 1000, op="obfuscator")
            assert lanes._batch_counters == {"enc": 2, "obfuscator": 1}

    def test_invalid_lane_count(self):
        with pytest.raises(ValueError):
            BlasterLanes(lanes=0)


class TestObserverReplay:
    def test_observe_powmods_counts(self):
        counted = 0

        def observer():
            nonlocal counted
            counted += 1

        previous = math_utils.set_powmod_observer(observer)
        try:
            math_utils.observe_powmods(5)
        finally:
            math_utils.set_powmod_observer(previous)
        assert counted == 5

    def test_negative_tally_rejected(self):
        with pytest.raises(ValueError):
            math_utils.observe_powmods(-1)

    def test_no_observer_is_a_no_op(self):
        math_utils.observe_powmods(3)  # must not raise


class TestDefaultBackendIsPython:
    def test_module_default(self):
        assert isinstance(math_utils.get_backend(), PythonBackend)
