"""Tests for quantile sketching and dataset binning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse as sp

from repro.gbdt.binning import BinnedDataset, bin_column, bin_dataset
from repro.gbdt.quantile import QuantileSketch, propose_cut_points


class TestProposeCutPoints:
    def test_cut_count_bounded(self):
        values = np.random.default_rng(0).normal(size=1000)
        cuts = propose_cut_points(values, 20)
        assert len(cuts) <= 19
        assert np.all(np.diff(cuts) > 0)

    def test_constant_column_yields_no_cuts(self):
        assert propose_cut_points(np.full(100, 3.0), 10).size == 0

    def test_two_distinct_values(self):
        values = np.array([0.0] * 50 + [1.0] * 50)
        cuts = propose_cut_points(values, 10)
        assert len(cuts) >= 1
        codes = bin_column(values, cuts)
        assert len(np.unique(codes)) == 2

    def test_nan_ignored(self):
        values = np.array([1.0, np.nan, 2.0, 3.0, np.nan])
        cuts = propose_cut_points(values, 4)
        assert np.all(np.isfinite(cuts))

    def test_empty_and_all_nan(self):
        assert propose_cut_points(np.array([]), 4).size == 0
        assert propose_cut_points(np.array([np.nan]), 4).size == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            propose_cut_points(np.zeros((2, 2)), 4)
        with pytest.raises(ValueError):
            propose_cut_points(np.zeros(4), 1)

    @given(st.lists(st.floats(-100, 100), min_size=5, max_size=200))
    @settings(max_examples=30)
    def test_top_bin_never_empty(self, raw):
        values = np.asarray(raw)
        cuts = propose_cut_points(values, 8)
        codes = bin_column(values, cuts)
        assert np.any(codes == len(cuts))  # someone lands in the top bin


class TestBinColumn:
    def test_boundary_inclusive_left(self):
        cuts = np.array([1.0, 2.0])
        codes = bin_column(np.array([0.5, 1.0, 1.5, 2.0, 3.0]), cuts)
        # (−inf,1] -> 0, (1,2] -> 1, (2,∞) -> 2 with side="left":
        assert codes.tolist() == [0, 0, 1, 1, 2]

    def test_dtype(self):
        codes = bin_column(np.array([1.0]), np.array([0.5]))
        assert codes.dtype == np.uint16


class TestBinDataset:
    def test_dense_shape_and_range(self):
        features = np.random.default_rng(1).normal(size=(100, 5))
        binned = bin_dataset(features, 8)
        assert binned.codes.shape == (100, 5)
        assert binned.n_instances == 100
        assert binned.n_features == 5
        assert binned.codes.max() < 8

    def test_sparse_matches_dense(self):
        rng = np.random.default_rng(2)
        dense = rng.normal(size=(60, 4))
        dense[rng.random(dense.shape) < 0.7] = 0.0
        sparse = sp.csr_matrix(dense)
        b_dense = bin_dataset(dense, 6)
        b_sparse = bin_dataset(sparse, 6)
        assert np.array_equal(b_dense.codes, b_sparse.codes)

    def test_threshold_for(self):
        features = np.arange(100, dtype=np.float64).reshape(-1, 1)
        binned = bin_dataset(features, 4)
        cuts = binned.cut_points[0]
        assert binned.threshold_for(0, 0) == cuts[0]
        assert binned.threshold_for(0, len(cuts)) == float("inf")

    def test_subset_features(self):
        features = np.random.default_rng(3).normal(size=(30, 6))
        binned = bin_dataset(features, 5)
        subset = binned.subset_features(np.array([1, 3]))
        assert subset.n_features == 2
        assert np.array_equal(subset.codes[:, 0], binned.codes[:, 1])
        assert np.array_equal(subset.cut_points[0], binned.cut_points[1])

    def test_subset_instances(self):
        features = np.random.default_rng(4).normal(size=(30, 3))
        binned = bin_dataset(features, 5)
        shard = binned.subset_instances(np.array([0, 5, 7]))
        assert shard.n_instances == 3
        assert np.array_equal(shard.codes[1], binned.codes[5])

    def test_binning_preserves_order(self):
        # Larger raw values never get a smaller bin code.
        values = np.sort(np.random.default_rng(5).normal(size=200))
        binned = bin_dataset(values.reshape(-1, 1), 10)
        codes = binned.codes[:, 0].astype(int)
        assert np.all(np.diff(codes) >= 0)

    def test_mismatched_cut_points_rejected(self):
        with pytest.raises(ValueError):
            BinnedDataset(np.zeros((2, 2), dtype=np.uint16), [np.array([])], 4)

    def test_nnz_per_row(self):
        features = np.array([[0.0, 1.0], [0.0, 0.0], [2.0, 3.0]])
        binned = bin_dataset(features, 4)
        assert binned.nnz_per_row() == pytest.approx(3 / 3)


class TestQuantileSketch:
    def test_small_stream_exact(self):
        sketch = QuantileSketch(capacity=64)
        values = np.arange(50, dtype=np.float64)
        sketch.update(values)
        assert len(sketch) == 50
        cuts = sketch.cut_points(5)
        exact = propose_cut_points(values, 5)
        assert np.allclose(cuts, exact)

    def test_bounded_memory(self):
        sketch = QuantileSketch(capacity=32)
        for chunk in range(20):
            sketch.update(np.random.default_rng(chunk).normal(size=500))
        assert sketch._points.size <= 32
        assert len(sketch) == 10_000

    def test_merge(self):
        a, b = QuantileSketch(128), QuantileSketch(128)
        a.update(np.arange(0, 500, dtype=np.float64))
        b.update(np.arange(500, 1000, dtype=np.float64))
        a.merge(b)
        assert len(a) == 1000
        cuts = a.cut_points(4)
        # Quartiles of 0..999: roughly 250, 500, 750.
        assert np.allclose(cuts, [250, 500, 750], atol=40)

    def test_quantile_accuracy_large_stream(self):
        sketch = QuantileSketch(capacity=1024)
        rng = np.random.default_rng(8)
        data = rng.normal(size=20_000)
        for chunk in np.array_split(data, 10):
            sketch.update(chunk)
        cuts = sketch.cut_points(4)
        exact = np.quantile(data, [0.25, 0.5, 0.75])
        assert np.allclose(cuts, exact, atol=0.08)

    def test_rejects_small_capacity(self):
        with pytest.raises(ValueError):
            QuantileSketch(capacity=2)
