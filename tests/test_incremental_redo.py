"""Tests for the §8 future-work incremental dirty-node redo."""

import numpy as np
import pytest

from repro.bench.costmodel import CostModel
from repro.core.config import VF2BoostConfig
from repro.core.profile import analytic_trace
from repro.core.protocol import ProtocolScheduler
from repro.core.trainer import FederatedTrainer
from repro.fed.cluster import PAPER_CLUSTER
from repro.gbdt.binning import bin_dataset
from repro.gbdt.params import GBDTParams

PARAMS = GBDTParams(n_layers=7, n_bins=20)


def _trace(misplaced: float):
    trace = analytic_trace(2_000_000, 10_000, [40_000], 0.002, 20, 7)
    for tree in trace.trees:
        for layer in tree.layers:
            for node in layer.nodes:
                node.misplaced_fraction = misplaced
    return trace


def _makespan(trace, incremental: bool) -> float:
    config = VF2BoostConfig(
        params=PARAMS,
        histogram_packing=False,
        incremental_dirty_redo=incremental,
    )
    return ProtocolScheduler(config, CostModel.paper(), PAPER_CLUSTER).schedule(
        trace
    ).makespan


class TestScheduling:
    def test_pays_off_below_half_misplaced(self):
        trace = _trace(0.1)
        assert _makespan(trace, True) < _makespan(trace, False)

    def test_break_even_at_half(self):
        trace = _trace(0.5)
        assert _makespan(trace, True) == pytest.approx(
            _makespan(trace, False), rel=0.02
        )

    def test_costs_more_when_everything_moved(self):
        trace = _trace(1.0)
        assert _makespan(trace, True) >= _makespan(trace, False)

    def test_saving_monotone_in_misplacement(self):
        savings = []
        for fraction in (0.05, 0.25, 0.45):
            trace = _trace(fraction)
            savings.append(_makespan(trace, False) / _makespan(trace, True))
        assert savings[0] >= savings[1] >= savings[2]


class TestMeasuredMisplacement:
    def test_counted_runs_record_fractions(self, small_classification):
        features, labels = small_classification
        params = GBDTParams(n_trees=4, n_layers=5, n_bins=10)
        full = bin_dataset(features, params.n_bins)
        parties = [
            full.subset_features(np.arange(5, 10)),
            full.subset_features(np.arange(0, 5)),
        ]
        config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
        result = FederatedTrainer(config).fit(parties, labels)
        fractions = [
            node.misplaced_fraction
            for tree in result.trace.trees
            for layer in tree.layers
            for node in layer.nodes
            if node.dirty
        ]
        assert fractions, "some nodes should be dirty"
        assert all(0.0 <= f <= 1.0 for f in fractions)
        # Correlated features mean splits often agree on many rows: the
        # measured average must be meaningfully below total misplacement.
        assert float(np.mean(fractions)) < 0.9

    def test_clean_nodes_keep_default(self, small_classification):
        features, labels = small_classification
        params = GBDTParams(n_trees=2, n_layers=4, n_bins=10)
        full = bin_dataset(features, params.n_bins)
        parties = [
            full.subset_features(np.arange(2, 10)),
            full.subset_features(np.arange(0, 2)),
        ]
        config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
        result = FederatedTrainer(config).fit(parties, labels)
        for tree in result.trace.trees:
            for layer in tree.layers:
                for node in layer.nodes:
                    if not node.dirty:
                        assert node.misplaced_fraction == 1.0

    def test_layer_misplaced_instances(self):
        from repro.core.trace import LayerTrace, NodeTrace

        layer = LayerTrace(
            depth=1,
            nodes=[
                NodeTrace(1, 100, owner=1, dirty=True, misplaced_fraction=0.2),
                NodeTrace(2, 50, owner=0, dirty=False),
            ],
        )
        assert layer.misplaced_instances == pytest.approx(20.0)
