"""Fault injection, reliable delivery, and checkpoint/resume.

The headline invariant of ``repro.fed.faults``: under any *survivable*
fault plan — every message eventually delivered within its retry
budget — the trained model is **bit-identical** to the fault-free run.
Faults perturb when and how often bytes move, never what they say.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.config import VF2BoostConfig
from repro.core.serialization import (
    load_checkpoint,
    model_to_payloads,
    save_checkpoint,
)
from repro.core.trainer import FederatedTrainer, TrainingInterrupted
from repro.fed.channel import RecordingChannel
from repro.fed.faults import (
    FaultPlan,
    FaultyEngine,
    LaneSlowdown,
    PauseWindow,
    party_of_resource,
)
from repro.fed.messages import Ack, SplitQuery
from repro.fed.reliable import DeliveryError, ReliableChannel
from repro.fed.retry import RetryPolicy
from repro.fed.simtime import SimEngine
from repro.gbdt.params import GBDTParams


def _model_bytes(result) -> str:
    """Canonical serialized form for bit-identity comparison."""
    return json.dumps(model_to_payloads(result.model), sort_keys=True)


# ----------------------------------------------------------------------
# FaultPlan: the replayable schedule
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        a = FaultPlan(seed=9, drop_rate=0.5)
        b = FaultPlan(seed=9, drop_rate=0.5)
        for seq in range(50):
            assert a.drops_message(0, 1, seq, 0) == b.drops_message(0, 1, seq, 0)

    def test_seed_changes_the_schedule(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = FaultPlan(seed=2, drop_rate=0.5)
        decisions_a = [a.drops_message(0, 1, s, 0) for s in range(64)]
        decisions_b = [b.drops_message(0, 1, s, 0) for s in range(64)]
        assert decisions_a != decisions_b

    def test_rates_approximate_probability(self):
        plan = FaultPlan(seed=3, drop_rate=0.3)
        hits = sum(plan.drops_message(0, 1, s, 0) for s in range(2000))
        assert 0.25 < hits / 2000 < 0.35

    def test_retransmit_attempt_redraws(self):
        # The draw is keyed on the attempt too, so a retransmission can
        # succeed where the original was dropped.
        plan = FaultPlan(seed=4, drop_rate=0.5)
        outcomes = {
            plan.drops_message(0, 1, seq, 0) != plan.drops_message(0, 1, seq, 1)
            for seq in range(64)
        }
        assert True in outcomes

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_rate": -0.1},
            {"drop_rate": 1.0},
            {"duplicate_rate": 1.5},
            {"ack_drop_rate": -1e-9},
            {"delay_seconds": -0.5},
            {"crash_after_trees": (-1,)},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_pause_window_validation(self):
        with pytest.raises(ValueError):
            PauseWindow(party=0, start=1.0, end=1.0)
        with pytest.raises(ValueError):
            PauseWindow(party=0, start=-0.1, end=1.0)
        with pytest.raises(ValueError):
            LaneSlowdown(resource="A1", factor=0.5)

    def test_paused_at_and_slowdown(self):
        plan = FaultPlan(
            pauses=(PauseWindow(party=1, start=1.0, end=2.0),),
            slowdowns=(
                LaneSlowdown("A1", 2.0),
                LaneSlowdown("A1", 3.0),
            ),
        )
        assert plan.paused_at(1, 1.5) is not None
        assert plan.paused_at(1, 2.0) is None  # half-open interval
        assert plan.paused_at(0, 1.5) is None
        assert plan.slowdown_factor("A1") == 3.0  # max over matches
        assert plan.slowdown_factor("B") == 1.0

    def test_round_trip_dict(self):
        plan = FaultPlan(
            seed=11,
            drop_rate=0.1,
            duplicate_rate=0.2,
            delay_rate=0.05,
            delay_seconds=0.3,
            ack_drop_rate=0.15,
            pauses=(PauseWindow(party=1, start=0.5, end=1.5),),
            slowdowns=(LaneSlowdown("A1", 2.5),),
            crash_after_trees=(0, 2),
        )
        restored = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"seed": 1, "jitter_rate": 0.5})

    def test_is_null_and_describe(self):
        assert FaultPlan().is_null
        plan = FaultPlan(seed=7, drop_rate=0.1, crash_after_trees=(1,))
        assert not plan.is_null
        assert plan.crashes_after(1) and not plan.crashes_after(0)
        assert "drop=0.1" in plan.describe()

    def test_party_of_resource_convention(self):
        assert party_of_resource("B") == 0
        assert party_of_resource("B.dec") == 0
        assert party_of_resource("A1") == 1
        assert party_of_resource("A2.enc") == 2
        assert party_of_resource("WAN.B->A1") is None


# ----------------------------------------------------------------------
# RetryPolicy validation (regression: knobs used to be unchecked)
# ----------------------------------------------------------------------
class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"max_retries": -1},
            {"backoff_base": 0.0},
            {"backoff_base": -0.5},
            {"backoff_multiplier": 0.9},
            {"backoff_base": 0.5, "backoff_cap": 0.1},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_sequence(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_multiplier=2.0, backoff_cap=0.35
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)  # capped
        with pytest.raises(ValueError):
            policy.backoff(0)


# ----------------------------------------------------------------------
# ReliableChannel: exactly-once over a lossy wire
# ----------------------------------------------------------------------
def _reliable(plan, policy=None):
    inner = RecordingChannel(key_bits=256)
    return ReliableChannel(inner, plan=plan, policy=policy)


class TestReliableChannel:
    def test_exactly_once_in_order_under_heavy_faults(self):
        plan = FaultPlan(
            seed=21, drop_rate=0.3, duplicate_rate=0.3, ack_drop_rate=0.3
        )
        channel = _reliable(plan, RetryPolicy(max_retries=8))
        for i in range(40):
            channel.send(
                SplitQuery(sender=0, receiver=1, node_id=i, bin_flat_index=i)
            )
        received = channel.receive_all(0, 1)
        assert [m.node_id for m in received] == list(range(40))
        assert channel.counters.dedupe_dropped > 0
        assert channel.counters.resends > 0
        assert not any(isinstance(m, Ack) for m in received)

    def test_null_plan_is_pass_through(self):
        plain = RecordingChannel(key_bits=256)
        wrapped = ReliableChannel(RecordingChannel(key_bits=256), plan=None)
        for ch in (plain, wrapped):
            ch.send(SplitQuery(sender=0, receiver=1, node_id=3))
        message = wrapped.receive(0, 1)
        assert message.seq == -1  # never stamped
        assert wrapped.counters.acks == 0
        assert wrapped.total_bytes() == plain.total_bytes()
        assert wrapped.clock == 0.0

    def test_pause_window_survived(self):
        plan = FaultPlan(pauses=(PauseWindow(party=1, start=0.0, end=0.4),))
        channel = _reliable(plan, RetryPolicy(timeout=0.25, max_retries=3))
        channel.send(SplitQuery(sender=0, receiver=1, node_id=1))
        assert channel.receive(0, 1).node_id == 1
        assert channel.counters.pause_waits > 0
        assert channel.clock >= 0.4  # waited out the window

    def test_unsurvivable_plan_raises_delivery_error(self):
        plan = FaultPlan(seed=2, drop_rate=0.95)
        channel = _reliable(plan, RetryPolicy(max_retries=1))
        with pytest.raises(DeliveryError, match="attempts"):
            for i in range(30):
                channel.send(SplitQuery(sender=0, receiver=1, node_id=i))
        assert channel.counters.delivery_failures == 1

    def test_delivered_but_all_acks_lost_still_succeeds(self):
        # Close to the worst ack weather: the message lands every time,
        # the sender never hears back. Forward progress confirms it.
        plan = FaultPlan(seed=5, ack_drop_rate=0.99)
        channel = _reliable(plan, RetryPolicy(max_retries=2))
        for i in range(10):
            channel.send(SplitQuery(sender=0, receiver=1, node_id=i))
        received = channel.receive_all(0, 1)
        assert [m.node_id for m in received] == list(range(10))
        assert channel.counters.delivery_failures == 0

    def test_dropped_bytes_accounted_off_ledger(self):
        plan = FaultPlan(seed=8, drop_rate=0.4)
        channel = _reliable(plan, RetryPolicy(max_retries=10))
        for i in range(30):
            channel.send(SplitQuery(sender=0, receiver=1, node_id=i))
        assert channel.counters.drops > 0
        assert channel.counters.dropped_bytes > 0
        # Dropped transmissions never reach the inner queues.
        assert len(channel.receive_all(0, 1)) == 30

    def test_replay_is_deterministic(self):
        def run():
            plan = FaultPlan(
                seed=13, drop_rate=0.2, duplicate_rate=0.2, ack_drop_rate=0.2
            )
            channel = _reliable(plan, RetryPolicy(max_retries=8))
            for i in range(25):
                channel.send(SplitQuery(sender=0, receiver=1, node_id=i))
            return channel.summary(), [e.to_dict() for e in channel.events]

        assert run() == run()


# ----------------------------------------------------------------------
# The headline invariant: fault matrix -> bit-identical models
# ----------------------------------------------------------------------
_MATRIX_PLANS = [
    ("drops", lambda seed: FaultPlan(seed=seed, drop_rate=0.15)),
    ("duplicates", lambda seed: FaultPlan(seed=seed, duplicate_rate=0.25)),
    ("delays", lambda seed: FaultPlan(seed=seed, delay_rate=0.25)),
    (
        "mixed",
        lambda seed: FaultPlan(
            seed=seed, drop_rate=0.1, duplicate_rate=0.1, ack_drop_rate=0.1
        ),
    ),
]


class TestFaultMatrix:
    @pytest.fixture()
    def baseline(self, counted_config, party_datasets):
        parties, labels = party_datasets
        result = FederatedTrainer(counted_config).fit(parties, labels)
        return _model_bytes(result)

    @pytest.mark.parametrize("kind,make_plan", _MATRIX_PLANS)
    @pytest.mark.parametrize("seed", [1, 19])
    def test_survivable_faults_leave_model_bit_identical(
        self, counted_config, party_datasets, baseline, kind, make_plan, seed
    ):
        parties, labels = party_datasets
        result = FederatedTrainer(counted_config).fit(
            parties,
            labels,
            fault_plan=make_plan(seed),
            retry_policy=RetryPolicy(max_retries=8),
        )
        assert _model_bytes(result) == baseline
        assert result.faults[kind if kind != "mixed" else "drops"] > 0
        assert result.faults["delivery_failures"] == 0

    def test_crash_and_resume_bit_identical(
        self, counted_config, party_datasets, baseline, tmp_path
    ):
        parties, labels = party_datasets
        plan = FaultPlan(seed=5, drop_rate=0.1, crash_after_trees=(0, 1))
        result = FederatedTrainer(counted_config).fit_resilient(
            parties,
            labels,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=8),
            checkpoint_dir=str(tmp_path),
        )
        assert _model_bytes(result) == baseline
        assert result.faults["resumes"] == 2

    def test_crash_without_checkpoint_dir_rejected(
        self, counted_config, party_datasets
    ):
        parties, labels = party_datasets
        plan = FaultPlan(crash_after_trees=(0,))
        with pytest.raises(ValueError, match="checkpoint_dir"):
            FederatedTrainer(counted_config).fit(
                parties, labels, fault_plan=plan
            )

    def test_fit_raises_training_interrupted_at_crash_boundary(
        self, counted_config, party_datasets, tmp_path
    ):
        parties, labels = party_datasets
        plan = FaultPlan(crash_after_trees=(0,))
        with pytest.raises(TrainingInterrupted) as info:
            FederatedTrainer(counted_config).fit(
                parties, labels, fault_plan=plan, checkpoint_dir=str(tmp_path)
            )
        assert info.value.completed_trees == 1
        assert os.path.exists(info.value.checkpoint_path)

    def test_run_report_carries_fault_summary(
        self, counted_config, party_datasets
    ):
        parties, labels = party_datasets
        result = FederatedTrainer(counted_config).fit(
            parties,
            labels,
            fault_plan=FaultPlan(seed=3, drop_rate=0.1),
            retry_policy=RetryPolicy(max_retries=8),
        )
        report = result.run_report(label="faulted").to_dict()
        assert report["version"] >= 3  # faults field arrived in v3
        assert report["faults"]["drops"] > 0
        assert report["faults"]["plan"]["drop_rate"] == 0.1
        assert report["faults"]["recovery_seconds"] > 0


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def _interrupt(self, config, parties, labels, tmp_path, after=(1,)):
        try:
            FederatedTrainer(config).fit(
                parties,
                labels,
                fault_plan=FaultPlan(crash_after_trees=tuple(after)),
                checkpoint_dir=str(tmp_path),
            )
        except TrainingInterrupted as interrupt:
            return interrupt
        raise AssertionError("expected a crash")

    def test_resume_matches_uninterrupted(
        self, counted_config, party_datasets, tmp_path
    ):
        parties, labels = party_datasets
        baseline = FederatedTrainer(counted_config).fit(parties, labels)
        interrupt = self._interrupt(counted_config, parties, labels, tmp_path)
        resumed = FederatedTrainer(counted_config).fit(
            parties, labels, resume_from=interrupt.checkpoint_path
        )
        assert _model_bytes(resumed) == _model_bytes(baseline)
        assert [r.tree_index for r in resumed.history] == [
            r.tree_index for r in baseline.history
        ]

    def test_checkpoint_round_trip_fields(
        self, counted_config, party_datasets, tmp_path
    ):
        parties, labels = party_datasets
        interrupt = self._interrupt(counted_config, parties, labels, tmp_path)
        state = load_checkpoint(
            interrupt.checkpoint_path, config=counted_config
        )
        assert state["next_tree"] == interrupt.completed_trees
        assert len(state["margins"]) == labels.shape[0]
        assert len(state["history"]) == interrupt.completed_trees
        assert len(state["trace"].trees) == interrupt.completed_trees

    def test_fingerprint_mismatch_rejected(
        self, counted_config, party_datasets, tmp_path
    ):
        from repro.core.serialization import ModelFormatError

        parties, labels = party_datasets
        interrupt = self._interrupt(counted_config, parties, labels, tmp_path)
        other = counted_config.replace(
            params=GBDTParams(n_trees=5, n_layers=4, n_bins=10)
        )
        with pytest.raises(ModelFormatError, match="different configuration"):
            load_checkpoint(interrupt.checkpoint_path, config=other)

    def test_unknown_checkpoint_version_rejected(self, tmp_path):
        from repro.core.serialization import ModelFormatError

        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"checkpoint_format_version": 99}))
        with pytest.raises(ModelFormatError, match="version"):
            load_checkpoint(str(path))

    def test_real_crypto_resume_bit_identical(self, party_datasets, tmp_path):
        # exponent_jitter=1 pins the encoding exponent, so the resumed
        # run's ciphertext stream decodes to the exact same statistics.
        parties, labels = party_datasets
        config = VF2BoostConfig.vf2boost(
            params=GBDTParams(n_trees=2, n_layers=3, n_bins=8),
            crypto_mode="real",
            key_bits=256,
            exponent_jitter=1,
            blaster_batch_size=128,
        )
        subset = np.arange(120)
        parties = [p.subset_instances(subset) for p in parties]
        labels = labels[subset]
        baseline = FederatedTrainer(config).fit(parties, labels)
        result = FederatedTrainer(config).fit_resilient(
            parties,
            labels,
            fault_plan=FaultPlan(crash_after_trees=(0,)),
            checkpoint_dir=str(tmp_path),
        )
        assert _model_bytes(result) == _model_bytes(baseline)


# ----------------------------------------------------------------------
# Engine perturbations + SCH005
# ----------------------------------------------------------------------
@dataclass
class _FakeTask:
    task_id: int
    deps: tuple
    resource: str
    lane: int
    start: float
    end: float
    name: str = ""


class TestFaultyEngine:
    def test_straggler_stretches_duration(self):
        plan = FaultPlan(slowdowns=(LaneSlowdown("A1", 2.0),))
        healthy, faulty = SimEngine(), FaultyEngine(plan)
        for engine in (healthy, faulty):
            engine.submit("A1", 1.0, name="hist")
            engine.submit("B", 1.0, name="dec")
        assert faulty.tasks[0].end == pytest.approx(2 * healthy.tasks[0].end)
        assert faulty.tasks[1].end == pytest.approx(healthy.tasks[1].end)

    def test_pause_pushes_task_start(self):
        plan = FaultPlan(
            pauses=(
                PauseWindow(party=1, start=0.0, end=1.0),
                PauseWindow(party=1, start=1.0, end=1.5),  # chained
            )
        )
        engine = FaultyEngine(plan)
        task = engine.submit("A1", 0.5, name="hist")
        assert task.start == pytest.approx(1.5)
        untouched = engine.submit("B", 0.5, name="dec")
        assert untouched.start == pytest.approx(0.0)

    def test_scheduler_self_check_stays_clean_under_faults(self):
        from repro.analysis.schedule import self_check

        reporter = self_check(n_trees=1)
        assert reporter.findings == []

    def test_sch005_fires_on_violating_graph(self):
        from repro.analysis.schedule import validate_task_graph

        plan = FaultPlan(pauses=(PauseWindow(party=1, start=1.0, end=2.0),))
        tasks = [
            _FakeTask(0, (), "A1", 0, 1.2, 1.8, "hist"),  # inside the window
            _FakeTask(1, (0,), "B", 0, 1.8, 2.2, "dec"),
        ]
        findings = validate_task_graph(tasks, "unit", fault_plan=plan)
        assert [f.rule_id for f in findings] == ["SCH005"]
        assert "pause" in findings[0].message

    def test_sch005_ignores_wan_and_running_through(self):
        from repro.analysis.schedule import validate_task_graph

        plan = FaultPlan(pauses=(PauseWindow(party=1, start=1.0, end=2.0),))
        tasks = [
            # Starts before the window and runs through it: allowed.
            _FakeTask(0, (), "A1", 0, 0.5, 1.5, "hist"),
            # WAN resources belong to no party.
            _FakeTask(1, (), "WAN.B->A1", 0, 1.2, 1.4, "comm"),
        ]
        assert validate_task_graph(tasks, "unit", fault_plan=plan) == []


# ----------------------------------------------------------------------
# Reports, bench gate, CLI wiring
# ----------------------------------------------------------------------
class TestReporting:
    def test_run_report_faults_round_trip(self, tmp_path):
        from repro.obs.report import RunReport

        report = RunReport(
            kind="train", label="x", faults={"drops": 3, "resends": 2}
        )
        path = tmp_path / "report.json"
        report.save(str(path))
        assert RunReport.load(str(path)).faults == {"drops": 3, "resends": 2}

    def test_v2_report_without_faults_loads(self, tmp_path):
        from repro.obs.report import RunReport

        data = RunReport(kind="train", label="old").to_dict()
        data.pop("faults")
        data["version"] = 2
        path = tmp_path / "old.json"
        path.write_text(json.dumps(data))
        assert RunReport.load(str(path)).faults == {}

    def test_bench_faults_scenario_deterministic(self):
        from repro.bench.perfdb import faults_scenario

        first, second = faults_scenario(), faults_scenario()
        assert first.scalars == second.scalars
        assert first.scalars["resends"].value > 0
        assert first.scalars["sim_recovery_overhead"].value > 0


class TestCLI:
    def test_faults_smoke_sweep(self, capsys):
        from repro.cli import main

        assert main(["faults", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "identical" in out and "DIVERGED" not in out

    def test_train_with_crash_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                "train",
                "--rows", "120", "--features", "6", "--trees", "3",
                "--layers", "3", "--bins", "6",
                "--fault-seed", "3", "--drop-rate", "0.05",
                "--crash-after", "0",
                "--checkpoint-dir", str(tmp_path / "ckpts"),
                "--report-out", str(report_path),
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["faults"]["resumes"] == 1
        assert "resume(s)" in capsys.readouterr().out
