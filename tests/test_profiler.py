"""Tests for the hot-path profiler (:mod:`repro.obs.profiler`).

The load-bearing property: in counts-only mode the profiler's per-op
counts, summed over phases, equal the context's own OpStats — pinned
here against the same golden fingerprints as ``tests/test_obs_golden``.
"""

import json
from pathlib import Path

import pytest

from repro.crypto.ciphertext import PaillierContext
from repro.obs import HotPathProfiler, Tracer
from repro.obs.golden import _golden_dataset, _variant_config
from repro.obs.profiler import OP_METHODS

GOLDEN = Path(__file__).parent / "golden" / "opcounts.json"

#: profiler op name -> OpStats field
OP_FIELDS = {
    "enc": "encryptions",
    "dec": "decryptions",
    "hadd": "additions",
    "scale": "scalings",
    "smul": "scalar_multiplications",
    "padd": "plain_additions",
}


class FakeTimer:
    """Monotonic fake clock: each read advances by a fixed step."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture
def context():
    return PaillierContext.create(256, seed=11, jitter=3)


class TestInstallation:
    def test_install_uninstall_restores_methods(self, context):
        originals = {
            name: getattr(PaillierContext, name) for name in OP_METHODS
        }
        profiler = HotPathProfiler()
        profiler.install()
        try:
            for name in OP_METHODS:
                assert getattr(PaillierContext, name) is not originals[name]
        finally:
            profiler.uninstall()
        for name in OP_METHODS:
            assert getattr(PaillierContext, name) is originals[name]

    def test_second_install_rejected(self):
        with HotPathProfiler():
            with pytest.raises(RuntimeError):
                HotPathProfiler().install()

    def test_uninstall_is_idempotent(self):
        profiler = HotPathProfiler()
        profiler.install()
        profiler.uninstall()
        profiler.uninstall()  # no-op, no error
        # And a fresh profiler can install again.
        with HotPathProfiler():
            pass

    def test_records_survive_uninstall(self, context):
        with HotPathProfiler() as profiler:
            context.encrypt(1.5)
        summary = profiler.summary()
        assert summary["ops"]["enc"]["count"] == 1


class TestCounting:
    def test_counts_match_opstats(self, context):
        with HotPathProfiler() as profiler:
            ciphers = [context.encrypt(float(i)) for i in range(6)]
            total = ciphers[0]
            for cipher in ciphers[1:]:
                total = context.add(total, cipher)
            context.multiply(total, 7)
            context.decrypt(total)
        ops = profiler.summary()["ops"]
        stats = context.stats
        for op, fld in OP_FIELDS.items():
            assert ops.get(op, {}).get("count", 0) == getattr(stats, fld)

    def test_same_exponent_scale_not_counted(self, context):
        cipher = context.encrypt(2.0)
        with HotPathProfiler() as profiler:
            context.scale_to(cipher, cipher.exponent)  # no-op scale
        assert "scale" not in profiler.summary()["ops"]

    def test_positive_smul_is_one_powmod(self, context):
        cipher = context.encrypt(2.0)
        with HotPathProfiler() as profiler:
            context.multiply(cipher, 3)
        ops = profiler.summary()["ops"]
        assert ops["smul"]["count"] == 1
        assert ops["smul"]["powmods"] == 1

    def test_negative_smul_counts_the_inversion(self, context):
        cipher = context.encrypt(2.0)
        with HotPathProfiler() as profiler:
            context.multiply(cipher, -3)
        ops = profiler.summary()["ops"]
        assert ops["smul"]["count"] == 1
        # Negative scalars invert the cipher before exponentiating; the
        # inversion goes through the observed math_utils choke point,
        # so the SMul powmod tally is 2, not an undercounted 1.
        assert ops["smul"]["powmods"] == 2

    def test_unattributed_powmods_under_other(self):
        with HotPathProfiler() as profiler:
            PaillierContext.create(256, seed=3)  # keygen powmods
        summary = profiler.summary()
        assert summary["ops"]["other"]["powmods"] > 0
        assert summary["ops"]["other"]["count"] == 0

    def test_phase_attribution(self, context):
        with HotPathProfiler() as profiler:
            with profiler.phase_scope("Enc"):
                cipher = context.encrypt(1.0)
            with profiler.phase_scope("Dec"):
                context.decrypt(cipher)
        phases = profiler.summary()["phases"]
        assert set(phases) == {"Enc", "Dec"}
        assert phases["Enc"]["enc"]["count"] == 1
        assert phases["Dec"]["dec"]["count"] == 1

    def test_phase_scope_restores_previous(self):
        profiler = HotPathProfiler()
        profiler.set_phase("outer")
        with profiler.phase_scope("inner"):
            assert profiler.phase == "inner"
        assert profiler.phase == "outer"


class TestGoldenTraining:
    @pytest.mark.parametrize("variant", ["vf2boost", "secureboost"])
    def test_profiled_run_matches_golden_opcounts(self, variant):
        from repro.core.trainer import FederatedTrainer

        expected = json.loads(GOLDEN.read_text())["variants"][variant]["ops"]
        parties, labels = _golden_dataset()
        profiler = HotPathProfiler()
        result = FederatedTrainer(
            _variant_config(variant), profiler=profiler
        ).fit(parties, labels)
        ops = result.profile["ops"]
        for op, fld in OP_FIELDS.items():
            golden_total = sum(stats[fld] for stats in expected.values())
            assert ops.get(op, {}).get("count", 0) == golden_total, op

    def test_profile_lands_in_run_report(self):
        from repro.core.trainer import FederatedTrainer

        parties, labels = _golden_dataset()
        profiler = HotPathProfiler()
        result = FederatedTrainer(
            _variant_config("vf2boost"), profiler=profiler
        ).fit(parties, labels)
        report = result.run_report(label="profiled")
        assert report.profile == result.profile
        assert report.profile["ops"]["enc"]["count"] > 0
        # Round-trips through JSON.
        data = json.loads(report.to_json())
        assert data["profile"] == report.profile

    def test_unprofiled_run_has_empty_profile(self):
        from repro.core.trainer import FederatedTrainer

        parties, labels = _golden_dataset()
        result = FederatedTrainer(_variant_config("vf2boost")).fit(
            parties, labels
        )
        assert result.profile == {}


class TestTiming:
    def test_counts_only_mode_has_zero_seconds(self, context):
        with HotPathProfiler() as profiler:
            context.encrypt(1.0)
        summary = profiler.summary()
        assert summary["timed"] is False
        assert summary["ops"]["enc"]["seconds"] == 0.0

    def test_fake_timer_is_deterministic(self):
        def run():
            context = PaillierContext.create(256, seed=11, jitter=3)
            with HotPathProfiler(timer=FakeTimer()) as profiler:
                ciphers = [context.encrypt(float(i)) for i in range(4)]
                total = ciphers[0]
                for cipher in ciphers[1:]:
                    total = context.add(total, cipher)
                context.decrypt(total)
            return profiler.summary()

        assert run() == run()

    def test_self_time_excludes_nested_ops(self, context):
        # add() on mismatched exponents calls scale_to internally; the
        # parent's self-seconds must not include the child's.
        a = context.encrypt(1.0, exponent=0)
        b = context.encrypt(1.0, exponent=2)
        with HotPathProfiler(timer=FakeTimer(step=1.0)) as profiler:
            context.add(a, b)
        summary = profiler.summary()
        assert summary["timed"] is True
        if "scale" in summary["ops"]:  # aligned add triggered a scale
            total = sum(rec["seconds"] for rec in summary["ops"].values())
            # With a step-1 fake clock, total self time is bounded by
            # the 2 reads/op bookkeeping — nested time not double
            # counted means the sum is strictly less than the naive
            # sum of per-op wall spans.
            spans = sum(
                2 * rec["count"] for rec in summary["ops"].values()
            )
            assert total <= spans


class TestMergeInto:
    def test_spans_laid_end_to_end(self, context):
        with HotPathProfiler(timer=FakeTimer()) as profiler:
            with profiler.phase_scope("P"):
                context.encrypt(1.0)
                context.encrypt(2.0)
        tracer = Tracer()
        spans = profiler.merge_into(tracer, offset=10.0)
        assert spans
        assert spans[0].start == 10.0
        for prev, cur in zip(spans, spans[1:]):
            assert cur.start == prev.end
        assert spans[0].name == "P.enc"
        assert spans[0].args["count"] == 2
