"""Named dataset registry mirroring Table 3 of the paper.

The paper evaluates on five public datasets, one synthetic dataset and
one industrial dataset.  Offline, we regenerate each as a synthetic
analog that preserves the properties that drive the system's cost —
instance count, feature count, the A/B feature split, and density —
at a documented scale factor so the counted-mode benchmarks finish on
one laptop core (EXPERIMENTS.md records every factor).

Shapes from Table 3:

====================  ==========  ================  =======
dataset               #instances  #features (A/B)   density
====================  ==========  ================  =======
census                22K         78 / 70           8.78%
a9a                   32K         73 / 50           11.28%
susy                  5M          9 / 9             100%
epsilon               400K        1K / 1K           100%
rcv1                  697K        23K / 23K         0.15%
synthesis             10M         25K / 25K         0.20%
industry              55M         50K / 50K         0.03%
====================  ==========  ================  =======
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import SyntheticSpec, generate_classification

__all__ = ["DatasetInfo", "LoadedDataset", "DATASETS", "load_dataset", "dataset_info"]


@dataclass(frozen=True)
class DatasetInfo:
    """Paper-scale description of one evaluation dataset (Table 3)."""

    name: str
    n_instances: int
    features_a: int
    features_b: int
    density: float
    #: default scale-down factor applied by :func:`load_dataset`
    default_scale: float

    @property
    def n_features(self) -> int:
        """Total feature count across both parties."""
        return self.features_a + self.features_b

    @property
    def nnz_per_instance(self) -> float:
        """Average non-zeros per row (``d`` in the paper's notation)."""
        return self.density * self.n_features

    def scaled(self, scale: float) -> tuple[int, int, int]:
        """``(n_instances, features_a, features_b)`` at a scale factor.

        Feature counts shrink with ``sqrt(scale)`` so that the work per
        instance (``d``) and the histogram size shrink gently together.
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        n = max(64, int(self.n_instances * scale))
        feature_scale = scale**0.5
        fa = max(2, int(self.features_a * feature_scale))
        fb = max(2, int(self.features_b * feature_scale))
        return n, fa, fb


DATASETS: dict[str, DatasetInfo] = {
    "census": DatasetInfo("census", 22_000, 78, 70, 0.0878, 0.25),
    "a9a": DatasetInfo("a9a", 32_000, 73, 50, 0.1128, 0.25),
    "susy": DatasetInfo("susy", 5_000_000, 9, 9, 1.0, 0.002),
    "epsilon": DatasetInfo("epsilon", 400_000, 1_000, 1_000, 1.0, 0.01),
    "rcv1": DatasetInfo("rcv1", 697_000, 23_000, 23_000, 0.0015, 0.004),
    "synthesis": DatasetInfo("synthesis", 10_000_000, 25_000, 25_000, 0.002, 0.0004),
    "industry": DatasetInfo("industry", 55_000_000, 50_000, 50_000, 0.0003, 0.0001),
}


@dataclass
class LoadedDataset:
    """A realized (possibly downscaled) dataset split into train/valid."""

    info: DatasetInfo
    scale: float
    train_features: np.ndarray
    train_labels: np.ndarray
    valid_features: np.ndarray
    valid_labels: np.ndarray
    features_a: int
    features_b: int

    @property
    def n_train(self) -> int:
        """Training rows."""
        return int(self.train_features.shape[0])

    @property
    def n_features(self) -> int:
        """Total columns."""
        return int(self.train_features.shape[1])

    def party_feature_slices(self) -> tuple[slice, slice]:
        """Column slices of (Party A, Party B); B holds the tail columns."""
        return slice(0, self.features_a), slice(self.features_a, self.n_features)


def dataset_info(name: str) -> DatasetInfo:
    """Look up paper-scale metadata for a dataset name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}") from None


def load_dataset(
    name: str,
    scale: float | None = None,
    valid_fraction: float = 0.2,
    seed: int = 0,
) -> LoadedDataset:
    """Generate the synthetic analog of a named dataset.

    Args:
        name: one of the Table 3 dataset names.
        scale: scale factor in ``(0, 1]``; default per-dataset factor
            keeps counted-mode runs laptop-sized.
        valid_fraction: held-out fraction (paper: 20%).
        seed: RNG seed.
    """
    info = dataset_info(name)
    scale = info.default_scale if scale is None else scale
    n, fa, fb = info.scaled(scale)
    spec = SyntheticSpec(
        n_instances=n,
        n_features=fa + fb,
        density=max(info.density, min(1.0, 8.0 / (fa + fb))),
        # Concentrate the signal: high-dimensional analogs with diffuse
        # informative sets are unlearnable within the paper's 20-tree
        # budget, which would break every AUC ordering downstream.
        n_informative=max(2, min(48, (fa + fb) // 3)),
        seed=seed,
    )
    features, labels = generate_classification(spec)
    n_valid = max(1, int(n * valid_fraction))
    rng = np.random.default_rng(seed + 1)
    order = rng.permutation(n)
    valid_rows, train_rows = order[:n_valid], order[n_valid:]
    return LoadedDataset(
        info=info,
        scale=scale,
        train_features=features[train_rows],
        train_labels=labels[train_rows],
        valid_features=features[valid_rows],
        valid_labels=labels[valid_rows],
        features_a=fa,
        features_b=fb,
    )
