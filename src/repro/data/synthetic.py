"""Synthetic dataset generation.

The paper's ablation datasets are generated "following Section 5.2 of
[28]" (Fu et al., *An Experimental Evaluation of Large Scale GBDT
Systems*): sparse feature matrices with a controllable density, a
ground-truth linear-plus-interaction scoring function over a random
subset of *informative* features, and binary labels from the sign of
the noisy score.  We reproduce that recipe with explicit knobs for
instance count, dimensionality, density, and how informative signal is
distributed between the two parties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

__all__ = ["SyntheticSpec", "generate_classification", "generate_sparse_classification"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Recipe for one synthetic binary-classification dataset.

    Attributes:
        n_instances: row count ``N``.
        n_features: column count ``D``.
        density: fraction of non-zero cells (1.0 = dense).
        n_informative: number of columns carrying label signal.
        noise: label noise scale added to the latent score.
        interaction_pairs: count of pairwise feature interactions in the
            latent score (gives trees an edge over linear models).
        seed: RNG seed.
    """

    n_instances: int
    n_features: int
    density: float = 1.0
    n_informative: int | None = None
    noise: float = 0.5
    interaction_pairs: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_instances < 1 or self.n_features < 1:
            raise ValueError("n_instances and n_features must be positive")
        if not 0 < self.density <= 1:
            raise ValueError("density must be in (0, 1]")

    @property
    def informative(self) -> int:
        """Resolved number of informative columns."""
        if self.n_informative is None:
            return max(1, self.n_features // 2)
        return min(self.n_informative, self.n_features)


def generate_classification(spec: SyntheticSpec) -> tuple[np.ndarray, np.ndarray]:
    """Dense synthetic binary classification data.

    Returns:
        ``(features, labels)`` with labels in ``{0.0, 1.0}``.
    """
    rng = np.random.default_rng(spec.seed)
    features = rng.normal(size=(spec.n_instances, spec.n_features))
    if spec.density < 1.0:
        # Power-law column popularity, like term frequencies in text
        # corpora (rcv1-style): a few columns are dense, most are rare.
        # Uniform sparsity would leave every informative column nearly
        # always zero and the labels unlearnable at realistic densities.
        # The informative columns take the top popularity ranks — label
        # signal rides the *frequent* terms, as it does in real corpora.
        informative = _informative_columns(spec)
        ranks = np.empty(spec.n_features, dtype=np.float64)
        others = np.setdiff1d(np.arange(spec.n_features), informative)
        ranks[informative] = rng.permutation(informative.size)
        ranks[others] = informative.size + rng.permutation(others.size)
        raw = (1.0 + ranks) ** -0.7
        keep = np.clip(raw * spec.density * spec.n_features / raw.sum(), 0.0, 1.0)
        mask = rng.random(features.shape) < keep[None, :]
        features = features * mask
    labels = _labels_from_features(features, spec, rng)
    return features, labels


def generate_sparse_classification(spec: SyntheticSpec) -> tuple[sp.csr_matrix, np.ndarray]:
    """Sparse (CSR) synthetic binary classification data.

    Non-zero positions are uniform; values are standard normal. The
    labeling function sees the same matrix, so sparsity and signal are
    consistent.
    """
    rng = np.random.default_rng(spec.seed)
    nnz_per_row = max(1, int(round(spec.density * spec.n_features)))
    rows = np.repeat(np.arange(spec.n_instances), nnz_per_row)
    cols = rng.integers(0, spec.n_features, size=rows.size)
    data = rng.normal(size=rows.size)
    matrix = sp.csr_matrix(
        (data, (rows, cols)), shape=(spec.n_instances, spec.n_features)
    )
    matrix.sum_duplicates()
    dense_view = np.asarray(matrix[:, _informative_columns(spec)].todense())
    labels = _labels_from_dense_signal(dense_view, spec, rng)
    return matrix, labels


def _informative_columns(spec: SyntheticSpec) -> np.ndarray:
    """Deterministic informative column choice, spread across parties.

    Columns are taken evenly across the index range so that any
    contiguous vertical split leaves both parties with signal — the
    precondition for the paper's "federated beats Party-B-only" result.
    """
    return np.linspace(0, spec.n_features - 1, spec.informative).astype(np.int64)


def _labels_from_features(
    features: np.ndarray, spec: SyntheticSpec, rng: np.random.Generator
) -> np.ndarray:
    signal = features[:, _informative_columns(spec)]
    return _labels_from_dense_signal(signal, spec, rng)


def _labels_from_dense_signal(
    signal: np.ndarray, spec: SyntheticSpec, rng: np.random.Generator
) -> np.ndarray:
    k = signal.shape[1]
    weights = rng.normal(size=k)
    score = signal @ weights
    for _ in range(spec.interaction_pairs):
        a, b = rng.integers(0, k, size=2)
        score = score + signal[:, a] * signal[:, b]
    # Standardize before adding noise so the signal-to-noise ratio is
    # density-independent: sparse analogs (rcv1-like) would otherwise
    # drown their dilute per-row signal in the label noise.
    std = float(np.std(score))
    if std > 0:
        score = (score - float(np.mean(score))) / std
    score = score + rng.normal(scale=spec.noise, size=score.shape[0])
    return (score > np.median(score)).astype(np.float64)
