"""Private set intersection for instance alignment (§6.1 "Data Preparation").

The paper pre-processes datasets with PSI so that all parties hold the
same instance set.  We implement the classic DH-style commutative-hash
PSI under the semi-honest model: each party blinds the (hashed) join
keys with a secret exponent, exchanges blinded sets, applies its own
exponent to the other's set, and intersects the doubly-blinded values.
Neither party learns keys outside the intersection.

This is a faithful *protocol* implementation over a safe prime group —
small enough parameters are used in tests; the security parameter is
configurable.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.crypto.math_utils import generate_prime, is_probable_prime

__all__ = ["PsiParty", "intersect", "psi_align"]

_DEFAULT_GROUP_BITS = 128


def _find_safe_prime(bits: int, seed: int | None = None) -> int:
    """A prime ``p`` with ``(p-1)/2`` also prime (small demo sizes)."""
    import random

    rng = random.Random(seed)
    while True:
        if seed is None:
            q = generate_prime(bits - 1)
        else:
            q = None
            while q is None:
                candidate = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
                if is_probable_prime(candidate):
                    q = candidate
        p = 2 * q + 1
        if is_probable_prime(p):
            return p


def _hash_to_group(key: str, prime: int) -> int:
    """Hash a join key into the quadratic-residue subgroup of ``Z_p*``."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    value = int.from_bytes(digest, "big") % prime
    # Squaring maps into the QR subgroup where the blinding exponents act.
    return pow(value, 2, prime)


@dataclass
class PsiParty:
    """One participant of the DH-style PSI protocol.

    Args:
        keys: this party's instance join keys (e.g. hashed user ids).
        prime: shared group prime; both parties must agree on it.
        seed: deterministic secret exponent for tests; ``None`` draws a
            random secret.
    """

    keys: list[str]
    prime: int
    seed: int | None = None

    def __post_init__(self) -> None:
        order = (self.prime - 1) // 2
        if self.seed is None:
            self._secret = 2 + secrets.randbelow(order - 2)
        else:
            import random

            self._secret = 2 + random.Random(self.seed).randrange(order - 2)

    def blinded_set(self) -> list[int]:
        """First pass: blind own hashed keys with the secret exponent."""
        return [
            pow(_hash_to_group(key, self.prime), self._secret, self.prime)
            for key in self.keys
        ]

    def double_blind(self, blinded: list[int]) -> list[int]:
        """Second pass: apply own secret to the peer's blinded set."""
        return [pow(value, self._secret, self.prime) for value in blinded]


def intersect(party_a: PsiParty, party_b: PsiParty) -> tuple[list[str], list[str]]:
    """Run the two-party PSI protocol.

    Returns:
        ``(keys_a, keys_b)``: the intersection keys **in each party's own
        original order**, so downstream row alignment is by position.
    """
    if party_a.prime != party_b.prime:
        raise ValueError("parties must agree on the PSI group")
    blinded_a = party_a.blinded_set()
    blinded_b = party_b.blinded_set()
    double_a = party_b.double_blind(blinded_a)  # b(a(x))
    double_b = party_a.double_blind(blinded_b)  # a(b(y))
    common = set(double_a) & set(double_b)
    keys_a = [key for key, tag in zip(party_a.keys, double_a) if tag in common]
    keys_b = [key for key, tag in zip(party_b.keys, double_b) if tag in common]
    return keys_a, keys_b


def psi_align(
    keys_a: list[str],
    keys_b: list[str],
    group_bits: int = _DEFAULT_GROUP_BITS,
    seed: int | None = 0,
) -> tuple[list[int], list[int]]:
    """Convenience wrapper: intersect and return aligned row indices.

    Returns:
        ``(rows_a, rows_b)`` — positions into the two key lists such that
        ``keys_a[rows_a[i]] == keys_b[rows_b[i]]`` for every ``i``.
    """
    prime = _find_safe_prime(group_bits, seed=seed)
    a = PsiParty(keys_a, prime, seed=None if seed is None else seed + 1)
    b = PsiParty(keys_b, prime, seed=None if seed is None else seed + 2)
    common_a, common_b = intersect(a, b)
    # Sort both sides by key so positions line up deterministically.
    order = sorted(common_a)
    index_a = {key: i for i, key in enumerate(keys_a)}
    index_b = {key: i for i, key in enumerate(keys_b)}
    rows_a = [index_a[key] for key in order]
    rows_b = [index_b[key] for key in order]
    return rows_a, rows_b
