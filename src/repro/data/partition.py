"""Vertical (by-feature) and horizontal (by-worker) data partitioning.

Vertical FL gives each party a disjoint set of *columns* over the same
instance set (Figure 1).  Inside each party, instances are sharded
across workers, and the paper aligns shards across parties at the
worker level: worker ``k`` of Party A holds exactly the rows worker
``k`` of Party B holds (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VerticalPartition", "split_features", "worker_shards"]


@dataclass(frozen=True)
class VerticalPartition:
    """Assignment of global feature columns to parties.

    Attributes:
        party_columns: tuple of index arrays; entry ``p`` lists the
            global column ids owned by party ``p``. By repository
            convention party 0 is Party B (the label holder) and
            parties ``1..`` are Party A's.
    """

    party_columns: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for columns in self.party_columns:
            overlap = seen.intersection(columns.tolist())
            if overlap:
                raise ValueError(f"columns {sorted(overlap)} assigned twice")
            seen.update(columns.tolist())

    @property
    def n_parties(self) -> int:
        """Number of participating parties."""
        return len(self.party_columns)

    @property
    def n_features(self) -> int:
        """Total number of columns across parties."""
        return sum(len(columns) for columns in self.party_columns)

    def columns_of(self, party: int) -> np.ndarray:
        """Global column ids owned by one party."""
        return self.party_columns[party]

    def owner_of(self, global_column: int) -> int:
        """Party owning a global column id."""
        for party, columns in enumerate(self.party_columns):
            if global_column in columns:
                return party
        raise KeyError(f"column {global_column} is unassigned")


def split_features(
    n_features: int,
    features_per_party: list[int],
    shuffle: bool = False,
    seed: int = 0,
) -> VerticalPartition:
    """Partition column ids into per-party blocks.

    Args:
        n_features: total column count; must equal the sum of
            ``features_per_party``.
        features_per_party: sizes, party 0 (Party B) first.
        shuffle: randomize column assignment instead of contiguous blocks
            (used by the multi-party experiment, §6.4: "randomly divide
            the features into subsets on average").
        seed: RNG seed for shuffling.
    """
    if sum(features_per_party) != n_features:
        raise ValueError("features_per_party must sum to n_features")
    if any(count < 0 for count in features_per_party):
        raise ValueError("feature counts must be non-negative")
    columns = np.arange(n_features, dtype=np.int64)
    if shuffle:
        columns = np.random.default_rng(seed).permutation(columns)
    blocks: list[np.ndarray] = []
    offset = 0
    for count in features_per_party:
        blocks.append(np.sort(columns[offset : offset + count]))
        offset += count
    return VerticalPartition(tuple(blocks))


def worker_shards(n_instances: int, n_workers: int) -> list[np.ndarray]:
    """Contiguous row shards, aligned across parties (§3.1).

    Returns ``n_workers`` index arrays covering ``range(n_instances)``
    with sizes differing by at most one.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    boundaries = np.linspace(0, n_instances, n_workers + 1).astype(np.int64)
    return [
        np.arange(boundaries[k], boundaries[k + 1], dtype=np.int64)
        for k in range(n_workers)
    ]
