"""Data substrate: synthetic generation, Table 3 registry, partitioning, PSI."""

from repro.data.datasets import (
    DATASETS,
    DatasetInfo,
    LoadedDataset,
    dataset_info,
    load_dataset,
)
from repro.data.partition import VerticalPartition, split_features, worker_shards
from repro.data.psi import PsiParty, intersect, psi_align
from repro.data.synthetic import (
    SyntheticSpec,
    generate_classification,
    generate_sparse_classification,
)

__all__ = [
    "DATASETS",
    "DatasetInfo",
    "LoadedDataset",
    "PsiParty",
    "SyntheticSpec",
    "VerticalPartition",
    "dataset_info",
    "generate_classification",
    "generate_sparse_classification",
    "intersect",
    "load_dataset",
    "psi_align",
    "split_features",
    "worker_shards",
]
