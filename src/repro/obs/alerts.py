"""Declarative, deterministic alert engine over the metrics registry.

An :class:`AlertEngine` holds a list of :class:`AlertRule`\\ s and is
evaluated explicitly at simulated-clock instants
(:meth:`AlertEngine.evaluate`); it never reads a wall clock and keeps
no hidden timers, so two identical runs open and close exactly the
same alert episodes at exactly the same timestamps.  Rule kinds:

* ``"threshold"`` — a gauge or counter compared against a bound
  (``op`` is ``">="`` or ``"<="``);
* ``"rate"`` — a counter's increase over a sliding time window
  (``window`` simulated seconds) exceeds ``value``.  The window is
  exact: an increment stops counting at the first evaluation whose
  timestamp is at least ``window`` past it, so an alert opened by a
  burst closes precisely one window after the burst ends;
* ``"burn_rate"`` — sugar for a ``>=`` threshold on the SLO watcher's
  ``serve.slo.burn_rate`` gauge (see :mod:`repro.serve.slo`);
* ``"band"`` — a gauge leaving the closed interval ``[low, high]``
  (calibration / golden-metric drift).

Transitions are emitted as ``alert_open`` / ``alert_close`` events into
a shared :class:`~repro.obs.events.EventLog` (subsystem
``"obs.alerts"``) and overlay the Chrome trace export as instant
events (:meth:`AlertEngine.instant_events`).  A rule with
``incident=True`` additionally snapshots an
:class:`~repro.obs.incident.IncidentBundle` the moment it opens — the
SLO-burn trigger of the flight recorder.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "AlertEngine",
    "AlertRule",
    "band_rule",
    "burn_rate_rule",
    "rate_rule",
    "threshold_rule",
]

_KINDS = ("threshold", "rate", "burn_rate", "band")


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert condition.

    Attributes:
        name: unique rule name (the alert's identity in events).
        kind: one of ``threshold`` / ``rate`` / ``burn_rate`` / ``band``.
        metric: registry name read at evaluation (gauge for
            threshold/burn_rate/band, counter for rate).
        op: threshold comparison, ``">="`` (default) or ``"<="``.
        value: threshold bound, burn-rate bound, or rate limit
            (maximum counter increase per window before firing).
        window: sliding-window seconds (rate rules only).
        low / high: the allowed closed band (band rules only).
        incident: snapshot an incident bundle when this rule opens
            (requires the engine to hold an incident store).
    """

    name: str
    kind: str
    metric: str
    op: str = ">="
    value: float = 0.0
    window: float = 0.0
    low: float = 0.0
    high: float = 0.0
    incident: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.op not in (">=", "<="):
            raise ValueError(f"op must be '>=' or '<=', got {self.op!r}")
        if self.kind == "rate" and self.window <= 0.0:
            raise ValueError("rate rules need a positive window")
        if self.kind == "band" and self.low > self.high:
            raise ValueError("band low must be <= high")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "op": self.op,
            "value": self.value,
            "window": self.window,
            "low": self.low,
            "high": self.high,
            "incident": self.incident,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AlertRule":
        return cls(**data)


def threshold_rule(
    name: str, metric: str, value: float, op: str = ">=", **kwargs
) -> AlertRule:
    """A gauge/counter threshold rule."""
    return AlertRule(
        name=name, kind="threshold", metric=metric, op=op, value=value, **kwargs
    )


def rate_rule(
    name: str, metric: str, window: float, limit: float, **kwargs
) -> AlertRule:
    """Fire when ``metric`` (a counter) grows more than ``limit`` per
    ``window`` simulated seconds."""
    return AlertRule(
        name=name, kind="rate", metric=metric, window=window, value=limit,
        **kwargs,
    )


def burn_rate_rule(
    name: str,
    value: float = 1.0,
    metric: str = "serve.slo.burn_rate",
    **kwargs,
) -> AlertRule:
    """Fire while the SLO burn-rate gauge is at or above ``value``."""
    return AlertRule(
        name=name, kind="burn_rate", metric=metric, value=value, **kwargs
    )


def band_rule(
    name: str, metric: str, low: float, high: float, **kwargs
) -> AlertRule:
    """Fire while a gauge sits outside the closed ``[low, high]`` band."""
    return AlertRule(
        name=name, kind="band", metric=metric, low=low, high=high, **kwargs
    )


@dataclass
class _RuleState:
    """Mutable per-rule evaluation state."""

    open_episode: dict | None = None
    #: (time, counter value) samples for rate rules, oldest first
    samples: deque = field(default_factory=deque)


class AlertEngine:
    """Evaluates rules against a registry on the injected clock.

    Args:
        registry: the shared
            :class:`~repro.obs.metrics.MetricsRegistry` read at every
            evaluation.
        rules: the rule list; names must be unique.  Evaluation order
            is the list order (deterministic).
        event_log: optional :class:`~repro.obs.events.EventLog` that
            receives ``alert_open`` / ``alert_close`` events.
        labels: constant labels merged into every emitted event.
        incident_store: optional
            :class:`~repro.obs.incident.IncidentStore`; rules flagged
            ``incident=True`` snapshot a bundle there when they open.
        incident_context: extra JSON-ready context attached to those
            bundles (e.g. the producing scenario's config).
    """

    def __init__(
        self,
        registry,
        rules: list[AlertRule],
        event_log=None,
        labels: dict | None = None,
        incident_store=None,
        incident_context: dict | None = None,
    ) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError("alert rule names must be unique")
        self.registry = registry
        self.rules = list(rules)
        self.event_log = event_log
        self.labels = dict(labels or {})
        self.incident_store = incident_store
        self.incident_context = dict(incident_context or {})
        self.episodes: list[dict] = []
        self.evaluations = 0
        self.incidents: list[str] = []
        self._state = {rule.name: _RuleState() for rule in self.rules}

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _observe(self, rule: AlertRule, state: _RuleState, now: float):
        """(observed value, firing?) for one rule at ``now``."""
        if rule.kind == "rate":
            current = float(self.registry.get(rule.metric))
            samples = state.samples
            samples.append((now, current))
            # Drop samples once a full window has passed them; the
            # newest dropped sample's value stays as the baseline via
            # the next retained sample being >= it... keep exactly one
            # sample at or before the window start as the baseline.
            while len(samples) > 1 and samples[1][0] <= now - rule.window:
                samples.popleft()
            baseline = samples[0][1]
            delta = current - baseline
            return delta, delta > rule.value
        value = float(self.registry.gauge(rule.metric, 0.0))
        if rule.kind == "threshold" and not value:
            # A threshold rule may watch a counter instead of a gauge.
            counter = self.registry.get(rule.metric)
            if counter:
                value = float(counter)
        if rule.kind == "band":
            return value, value < rule.low or value > rule.high
        if rule.op == "<=":
            return value, value <= rule.value
        return value, value >= rule.value

    def evaluate(self, now: float) -> list[dict]:
        """Evaluate every rule at simulated time ``now``.

        Returns the transitions that occurred, in rule order (each a
        reference into :attr:`episodes`).
        """
        self.evaluations += 1
        transitions: list[dict] = []
        for rule in self.rules:
            state = self._state[rule.name]
            value, firing = self._observe(rule, state, now)
            if firing and state.open_episode is None:
                episode = {
                    "rule": rule.name,
                    "kind": rule.kind,
                    "metric": rule.metric,
                    "opened": now,
                    "value": value,
                }
                state.open_episode = episode
                self.episodes.append(episode)
                transitions.append(episode)
                self._emit("alert_open", now, rule, value)
                if rule.incident and self.incident_store is not None:
                    self._snapshot(rule, now, value)
            elif not firing and state.open_episode is not None:
                episode = state.open_episode
                episode["closed"] = now
                episode["close_value"] = value
                state.open_episode = None
                transitions.append(episode)
                self._emit("alert_close", now, rule, value)
        return transitions

    def _emit(self, kind: str, now: float, rule: AlertRule, value) -> None:
        if self.event_log is None:
            return
        self.event_log.emit(
            now,
            "obs.alerts",
            kind,
            labels={**self.labels, "rule": rule.name},
            metric=rule.metric,
            value=value,
        )

    def _snapshot(self, rule: AlertRule, now: float, value) -> None:
        from repro.obs.incident import snapshot_incident

        bundle = snapshot_incident(
            "slo_burn",
            label=rule.name,
            time=now,
            event_log=self.event_log,
            registry=self.registry,
            alerts=self,
            context={
                **self.incident_context,
                "rule": rule.to_dict(),
                "value": value,
            },
        )
        self.incidents.append(self.incident_store.save(bundle))

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def open_alerts(self) -> list[dict]:
        """Currently-open episodes, in rule order."""
        return [
            dict(self._state[rule.name].open_episode)
            for rule in self.rules
            if self._state[rule.name].open_episode is not None
        ]

    def instant_events(self) -> list[dict]:
        """Alert transitions as Chrome-trace instant-event descriptors.

        Each open (and close, when present) becomes one
        ``{"name", "time", "args"}`` dict the trace exporter renders as
        a ``ph: "i"`` instant on a synthetic ``alerts`` process.
        """
        instants: list[dict] = []
        for episode in self.episodes:
            instants.append(
                {
                    "name": f"alert_open:{episode['rule']}",
                    "time": episode["opened"],
                    "args": {
                        "metric": episode["metric"],
                        "value": episode["value"],
                    },
                }
            )
            if "closed" in episode:
                instants.append(
                    {
                        "name": f"alert_close:{episode['rule']}",
                        "time": episode["closed"],
                        "args": {
                            "metric": episode["metric"],
                            "value": episode["close_value"],
                        },
                    }
                )
        return instants

    def summary(self) -> dict:
        """JSON-ready posture (the RunReport v5 ``alerts`` field)."""
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "evaluations": self.evaluations,
            "episodes": [dict(episode) for episode in self.episodes],
            "open": self.open_alerts(),
            "incidents": list(self.incidents),
        }
