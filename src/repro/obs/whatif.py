"""What-if explorer: re-price a schedule under perturbed unit costs.

The ROADMAP's next performance items (pluggable crypto backends,
SecureBoost+/Batch-HE-style packing — PAPERS.md) all amount to *make
one op family cheaper*.  Whether that buys wall-clock time depends on
whether the op sits on the critical path, and by how much — exactly
what this module answers *before* any implementation work: it
schedules the same workload twice, once at baseline costs and once
under a perturbed :class:`~repro.bench.costmodel.CostModel`, then
compares makespans, phase totals, Figure-7 throughput implications and
the critical-path bottleneck (:mod:`repro.obs.critical`).

Speedups are named by op family (``repro whatif --speedup powmod=2``):

========== =====================================================
name       CostModel fields divided by the factor
========== =====================================================
enc        ``t_enc``
dec        ``t_dec``
hadd       ``t_hadd``
scale      ``t_scale``
smul       ``t_smul``, ``t_smul_small``
powmod     ``t_enc``, ``t_dec``, ``t_smul``, ``t_smul_small`` —
           every modular-exponentiation-bound op, the knob a faster
           powmod backend (gmp, CRT, batching) actually turns
plain      ``t_plain_accum``, ``t_split_bin``
wan        cross-party bandwidth (ClusterSpec, not CostModel)
========== =====================================================

:func:`break_even` sweeps a factor grid until the critical-path
bottleneck leaves its baseline resource — past that point further
speedup of the same op family is wasted (Amdahl knee).

Deterministic end to end: the scheduler is a pure function of
(config, cost, cluster, trace) and the comparisons are plain float
arithmetic — no clocks, no RNG (DET001-clean).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "SPEEDUP_TARGETS",
    "WhatIfResult",
    "break_even",
    "parse_speedups",
    "perturb_cost",
    "run_whatif",
]

#: op family -> CostModel fields the family's speedup divides
SPEEDUP_TARGETS = {
    "enc": ("t_enc",),
    "dec": ("t_dec",),
    "hadd": ("t_hadd",),
    "scale": ("t_scale",),
    "smul": ("t_smul", "t_smul_small"),
    "powmod": ("t_enc", "t_dec", "t_smul", "t_smul_small"),
    "plain": ("t_plain_accum", "t_split_bin"),
    "wan": (),  # handled on the ClusterSpec, not the CostModel
}

#: op family -> Figure 7 throughput scalars it scales (bench-gate names)
_FIG7_SCALARS = {
    "enc": ("enc_ops_per_s",),
    "dec": ("dec_ops_per_s", "dec_packed_values_per_s"),
    "hadd": ("hadd_reordered_ops_per_s",),
    "powmod": (
        "enc_ops_per_s",
        "dec_ops_per_s",
        "dec_packed_values_per_s",
    ),
}

#: default workload: the golden 48x6 two-tree scenario every other
#: regression guard in the repo is pinned to (obs/golden.py)
DEFAULT_SHAPE = {
    "n_instances": 48,
    "n_features": 6,
    "n_trees": 2,
    "n_layers": 3,
    "n_bins": 4,
}

#: break-even sweep grid (geometric-ish, deterministic)
_FACTOR_GRID = (1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0,
                32.0, 48.0, 64.0, 96.0, 128.0)


def parse_speedups(items: list[str]) -> dict[str, float]:
    """Parse ``["powmod=2", "wan=4"]`` into ``{name: factor}``.

    Raises:
        ValueError: unknown op family, bad syntax, or factor <= 0.
    """
    speedups: dict[str, float] = {}
    for item in items:
        name, sep, raw = item.partition("=")
        name = name.strip()
        if not sep:
            raise ValueError(f"expected name=factor, got {item!r}")
        if name not in SPEEDUP_TARGETS:
            known = ", ".join(sorted(SPEEDUP_TARGETS))
            raise ValueError(f"unknown op family {name!r} (known: {known})")
        factor = float(raw)
        if factor <= 0:
            raise ValueError(f"speedup factor must be > 0, got {factor!r}")
        speedups[name] = factor
    return speedups


def perturb_cost(cost, speedups: dict[str, float]):
    """A copy of ``cost`` with each op family's fields divided."""
    changes: dict[str, float] = {}
    for name, factor in speedups.items():
        for field_name in SPEEDUP_TARGETS[name]:
            current = changes.get(field_name, getattr(cost, field_name))
            changes[field_name] = current / factor
    return replace(cost, **changes) if changes else cost


def _perturb_cluster(cluster, speedups: dict[str, float]):
    """A copy of ``cluster`` with the WAN sped up, if requested."""
    factor = speedups.get("wan")
    if not factor:
        return cluster
    return replace(
        cluster,
        wan_bandwidth=cluster.wan_bandwidth * factor,
        wan_latency=cluster.wan_latency / factor,
    )


@dataclass(frozen=True)
class _Summary:
    """One priced schedule, reduced to what the comparison needs."""

    makespan: float
    phases: dict
    by_resource: dict
    bottleneck: str
    wait_seconds: float


def _summarize(result) -> _Summary:
    """Reduce a ScheduleResult (scheduled with tasks) for comparison."""
    section = result.critical_path_section()
    return _Summary(
        makespan=result.makespan,
        phases=dict(sorted(result.phase_totals.items())),
        by_resource=dict(section.get("by_resource", {})),
        bottleneck=section.get("bottleneck", ""),
        wait_seconds=float(section.get("wait_seconds", 0.0)),
    )


@dataclass
class WhatIfResult:
    """Baseline vs perturbed pricing of one workload."""

    speedups: dict
    shape: dict
    baseline: _Summary
    variant: _Summary

    @property
    def predicted_makespan_delta(self) -> float:
        """Seconds saved (negative = the variant is faster)."""
        return self.variant.makespan - self.baseline.makespan

    @property
    def predicted_speedup(self) -> float:
        """End-to-end speedup factor (baseline / variant)."""
        if self.variant.makespan <= 0:
            return 1.0
        return self.baseline.makespan / self.variant.makespan

    @property
    def bottleneck_shifted(self) -> bool:
        """Did the critical-path bottleneck change resource?"""
        return self.baseline.bottleneck != self.variant.bottleneck

    def fig7_multipliers(self) -> dict[str, float]:
        """Predicted Figure-7 throughput multipliers per gate scalar."""
        multipliers: dict[str, float] = {}
        for name, factor in sorted(self.speedups.items()):
            for scalar in _FIG7_SCALARS.get(name, ()):
                multipliers[scalar] = multipliers.get(scalar, 1.0) * factor
        return multipliers

    def to_dict(self) -> dict:
        from repro.obs.forensics import diff_scalar_maps

        return {
            "speedups": dict(sorted(self.speedups.items())),
            "shape": dict(sorted(self.shape.items())),
            "baseline": {
                "makespan": self.baseline.makespan,
                "bottleneck": self.baseline.bottleneck,
                "critical_by_resource": self.baseline.by_resource,
                "phases": self.baseline.phases,
            },
            "variant": {
                "makespan": self.variant.makespan,
                "bottleneck": self.variant.bottleneck,
                "critical_by_resource": self.variant.by_resource,
                "phases": self.variant.phases,
            },
            "predicted_makespan_delta": self.predicted_makespan_delta,
            "predicted_speedup": self.predicted_speedup,
            "bottleneck_shifted": self.bottleneck_shifted,
            "fig7_multipliers": self.fig7_multipliers(),
            "phase_deltas": [
                c.to_dict()
                for c in diff_scalar_maps(self.baseline.phases,
                                          self.variant.phases)
            ],
        }

    def lines(self) -> list[str]:
        """Human-readable report (the ``repro whatif`` output)."""
        from repro.obs.forensics import diff_scalar_maps

        knobs = ", ".join(
            f"{name} x{factor:g}"
            for name, factor in sorted(self.speedups.items())
        )
        out = [
            f"what-if: {knobs or '(no perturbation)'}",
            f"  makespan: {self.baseline.makespan:.3f}s -> "
            f"{self.variant.makespan:.3f}s "
            f"(predicted speedup {self.predicted_speedup:.2f}x)",
            f"  bottleneck: {self.baseline.bottleneck or '-'} -> "
            f"{self.variant.bottleneck or '-'}"
            + ("  [SHIFTED]" if self.bottleneck_shifted else ""),
        ]
        for scalar, factor in sorted(self.fig7_multipliers().items()):
            out.append(f"  fig7 {scalar}: predicted x{factor:g}")
        deltas = diff_scalar_maps(self.baseline.phases, self.variant.phases)
        if deltas:
            out.append("  phase deltas:")
            for contribution in deltas[:8]:
                out.append("    " + contribution.render())
        return out


def _schedule(shape: dict, cost, cluster, config=None):
    """Price the shape's analytic trace with task collection on."""
    from repro.core.config import VF2BoostConfig
    from repro.core.profile import analytic_trace
    from repro.core.protocol import ProtocolScheduler
    from repro.gbdt.params import GBDTParams

    if config is None:
        config = VF2BoostConfig.vf2boost(
            params=GBDTParams(
                n_trees=shape["n_trees"],
                n_layers=shape["n_layers"],
                n_bins=shape["n_bins"],
            ),
        )
    half = shape["n_features"] // 2
    trace = analytic_trace(
        shape["n_instances"],
        half,
        [shape["n_features"] - half],
        density=1.0,
        n_bins=shape["n_bins"],
        n_layers=shape["n_layers"],
        n_trees=shape["n_trees"],
    )
    scheduler = ProtocolScheduler(config, cost, cluster)
    return scheduler.schedule(trace, collect_tasks=True)


def run_whatif(
    speedups: dict[str, float],
    shape: dict | None = None,
    cost=None,
    cluster=None,
    config=None,
) -> WhatIfResult:
    """Price a workload at baseline and perturbed costs.

    Args:
        speedups: op-family factors (:func:`parse_speedups` output).
        shape: workload dims (defaults to :data:`DEFAULT_SHAPE`).
        cost: baseline :class:`CostModel` (default ``CostModel.paper()``
            — pass ``CostModel.from_profile(...)`` to explore from a
            host calibration instead).
        cluster: :class:`ClusterSpec` (default the paper's §6.1 one).
        config: protocol config override (default vf2boost at shape).
    """
    from repro.bench.costmodel import CostModel
    from repro.fed.cluster import PAPER_CLUSTER

    shape = dict(shape or DEFAULT_SHAPE)
    cost = cost or CostModel.paper()
    cluster = cluster or PAPER_CLUSTER
    baseline = _schedule(shape, cost, cluster, config=config)
    variant = _schedule(
        shape,
        perturb_cost(cost, speedups),
        _perturb_cluster(cluster, speedups),
        config=config,
    )
    return WhatIfResult(
        speedups=dict(speedups),
        shape=shape,
        baseline=_summarize(baseline),
        variant=_summarize(variant),
    )


def break_even(
    op: str,
    shape: dict | None = None,
    cost=None,
    cluster=None,
    config=None,
) -> dict:
    """Smallest grid factor at which the bottleneck shifts off ``op``.

    Sweeps :data:`_FACTOR_GRID` and returns the first factor whose
    perturbed schedule has a different critical-path bottleneck
    resource than the baseline — the point past which speeding this op
    family up further stops paying (the makespan is now owned by
    another lane).  ``factor`` is ``None`` when the bottleneck never
    shifts within the grid (the op family is not what binds, or binds
    beyond 128x).
    """
    if op not in SPEEDUP_TARGETS:
        known = ", ".join(sorted(SPEEDUP_TARGETS))
        raise ValueError(f"unknown op family {op!r} (known: {known})")
    result = None
    for factor in _FACTOR_GRID:
        result = run_whatif(
            {op: factor}, shape=shape, cost=cost, cluster=cluster,
            config=config,
        )
        if result.bottleneck_shifted:
            return {
                "op": op,
                "factor": factor,
                "bottleneck_before": result.baseline.bottleneck,
                "bottleneck_after": result.variant.bottleneck,
                "makespan_before": result.baseline.makespan,
                "makespan_after": result.variant.makespan,
                "speedup_at_shift": result.predicted_speedup,
            }
    return {
        "op": op,
        "factor": None,
        "bottleneck_before": result.baseline.bottleneck if result else "",
        "bottleneck_after": result.variant.bottleneck if result else "",
        "makespan_before": result.baseline.makespan if result else 0.0,
        "makespan_after": result.variant.makespan if result else 0.0,
        "speedup_at_shift": result.predicted_speedup if result else 1.0,
    }
