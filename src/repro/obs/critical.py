"""Critical-path extraction and makespan attribution for task graphs.

The paper's end-to-end numbers are governed by the *critical path*
through the overlapped schedule (Figures 4–6), not by any single op
count: shaving an op that only ever runs in slack time buys nothing.
This module walks a recorded :class:`~repro.fed.simtime.SimEngine` task
graph backwards from the finishing task and recovers

* the exact chain of tasks (and scheduler-imposed waits) whose
  durations *telescope bit-exactly* to the engine's makespan,
* per-task **slack** — how much a task could grow before the makespan
  moves — computed with the same float arithmetic the scheduler used,
  so on-path tasks get a slack of exactly ``0.0``, and
* a makespan **attribution** keyed by ``(resource, lane, phase, op)``,
  the decision input for the what-if explorer
  (:mod:`repro.obs.whatif`) and the ROADMAP's crypto-backend work.

Everything is duck-typed over ``SimTask``-shaped objects (``name`` /
``phase`` / ``resource`` / ``lane`` / ``start`` / ``end`` / ``task_id``
/ ``deps``), so the module imports nothing from the rest of the
package and works on graphs loaded back from ``export_graph()`` JSON.

Why a backward walk instead of longest-path over dependency edges: the
engine's lanes are FIFO, so a task can be delayed by the *previous
task on its lane* without any declared dependency edge.  The walk
therefore considers both edge kinds — a predecessor is either a
dependency or the lane predecessor — and whichever one *released* the
task (finished exactly at its start) is the binding constraint.  When
nothing released it (a ``not_before`` bound or a fault-injected pause
window set the start), the gap becomes an explicit ``wait`` segment so
the path stays contiguous and the bit-exact invariant survives fault
injection.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

__all__ = [
    "CriticalPath",
    "PathSegment",
    "compute_slack",
    "critical_gantt",
    "critical_path",
    "critical_path_section",
    "op_of",
]

#: leading alphabetic stem of a task name — the "op" attribution key
#: (matches the stems ``repro.core.protocol.declared_effects`` parses:
#: enc, gh, hist, merge, findB, opt, agg, pack, histcomm, findA, ...)
_OP_RE = re.compile(r"^[A-Za-z]+")

#: op/phase labels of synthesized wait segments (never a task name)
WAIT = "(wait)"


def op_of(name: str) -> str:
    """Attribution stem of a task name (``"enc2.0[3]"`` -> ``"enc"``)."""
    match = _OP_RE.match(name or "")
    return match.group(0) if match else "(anon)"


@dataclass(frozen=True)
class PathSegment:
    """One contiguous piece of the critical path.

    Attributes:
        kind: ``"task"`` (a scheduled task bound the makespan here) or
            ``"wait"`` (the path was stalled by a ``not_before`` bound
            or a fault-injected pause — nothing was running).
        name: task name, or ``"(wait)"``.
        phase: task phase tag, or ``"(wait)"``.
        resource: resource the segment occupied (for waits: the
            resource of the task that was waiting).
        lane: lane index within the resource.
        start: segment start, simulated seconds.
        end: segment end, simulated seconds.
        task_id: the task's engine id; ``-1`` for waits.
        op: attribution stem (:func:`op_of`), ``"(wait)"`` for waits.
    """

    kind: str
    name: str
    phase: str
    resource: str
    lane: int
    start: float
    end: float
    task_id: int = -1
    op: str = ""

    @property
    def duration(self) -> float:
        """Segment length in simulated seconds."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready representation (RunReport ``critical_path``)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "phase": self.phase,
            "resource": self.resource,
            "lane": self.lane,
            "start": self.start,
            "end": self.end,
            "task_id": self.task_id,
            "op": self.op,
        }


@dataclass
class CriticalPath:
    """The extracted path plus the makespan it must account for.

    The headline invariant: :attr:`total` equals :attr:`makespan`
    *bit-exactly*.  The total is computed by telescoping (last end
    minus first start) rather than summing durations, because float
    summation of ``end - start`` differences is not associative; the
    telescoped form is exact as long as the segments are contiguous,
    which :meth:`self_check` verifies bit-by-bit.
    """

    segments: list[PathSegment]
    makespan: float

    @property
    def total(self) -> float:
        """Path length in seconds; bit-equal to :attr:`makespan`."""
        if not self.segments:
            return 0.0
        return self.segments[-1].end - self.segments[0].start

    @property
    def task_ids(self) -> set[int]:
        """Engine ids of on-path tasks (waits excluded)."""
        return {s.task_id for s in self.segments if s.kind == "task"}

    @property
    def wait_seconds(self) -> float:
        """Total stalled time along the path."""
        return sum(s.duration for s in self.segments if s.kind == "wait")

    def self_check(self) -> None:
        """Assert the bit-exact contiguity invariant.

        Raises:
            ValueError: when the path does not start at 0.0, has a
                non-contiguous joint, or does not end at the makespan.
        """
        if not self.segments:
            if self.makespan != 0.0:
                raise ValueError(
                    f"empty path cannot cover makespan {self.makespan!r}"
                )
            return
        if self.segments[0].start != 0.0:
            raise ValueError(
                f"path starts at {self.segments[0].start!r}, not 0.0"
            )
        for prev, here in zip(self.segments, self.segments[1:]):
            if prev.end != here.start:
                raise ValueError(
                    f"path gap: {prev.name!r} ends at {prev.end!r} but "
                    f"{here.name!r} starts at {here.start!r}"
                )
        if self.segments[-1].end != self.makespan:
            raise ValueError(
                f"path ends at {self.segments[-1].end!r}, "
                f"makespan is {self.makespan!r}"
            )

    def attribution(self) -> list[dict]:
        """Makespan attribution rows, largest contribution first.

        Each row: ``{resource, lane, phase, op, seconds, share}`` with
        ``share`` relative to the path total.  Wait segments appear
        under op/phase ``"(wait)"`` so stalled time is never silently
        folded into a real op.
        """
        buckets: dict[tuple[str, int, str, str], float] = {}
        for segment in self.segments:
            key = (segment.resource, segment.lane, segment.phase, segment.op)
            buckets[key] = buckets.get(key, 0.0) + segment.duration
        total = self.total
        rows = [
            {
                "resource": resource,
                "lane": lane,
                "phase": phase,
                "op": op,
                "seconds": seconds,
                "share": seconds / total if total > 0 else 0.0,
            }
            for (resource, lane, phase, op), seconds in buckets.items()
        ]
        rows.sort(
            key=lambda r: (
                -r["seconds"], r["resource"], r["lane"], r["phase"], r["op"]
            )
        )
        return rows

    def by_resource(self) -> dict[str, float]:
        """Path seconds per resource, keys sorted (waits under the
        resource whose lane stalled)."""
        totals: dict[str, float] = {}
        for segment in self.segments:
            totals[segment.resource] = (
                totals.get(segment.resource, 0.0) + segment.duration
            )
        return dict(sorted(totals.items()))

    def bottleneck(self) -> str:
        """Resource holding the most path seconds (``""`` if empty)."""
        totals = self.by_resource()
        if not totals:
            return ""
        return max(totals.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "makespan": self.makespan,
            "total": self.total,
            "wait_seconds": self.wait_seconds,
            "bottleneck": self.bottleneck(),
            "segments": [s.to_dict() for s in self.segments],
            "attribution": self.attribution(),
        }


def _lane_predecessors(tasks: list) -> dict[int, object]:
    """task_id -> the previous task on the same (resource, lane).

    Lanes are FIFO in submission order, so walking the task list in
    ``task_id`` order recovers the implicit lane edges the engine never
    records as ``deps``.
    """
    ordered = sorted(tasks, key=lambda t: t.task_id)
    last: dict[tuple[str, int], object] = {}
    pred: dict[int, object] = {}
    for task in ordered:
        key = (task.resource, task.lane)
        if key in last:
            pred[task.task_id] = last[key]
        last[key] = task
    return pred


def _task_segment(task) -> PathSegment:
    return PathSegment(
        kind="task",
        name=task.name,
        phase=task.phase,
        resource=task.resource,
        lane=task.lane,
        start=task.start,
        end=task.end,
        task_id=task.task_id,
        op=op_of(task.name),
    )


def _wait_segment(task, start: float) -> PathSegment:
    return PathSegment(
        kind="wait",
        name=WAIT,
        phase=WAIT,
        resource=task.resource,
        lane=task.lane,
        start=start,
        end=task.start,
        op=WAIT,
    )


def critical_path(tasks: Iterable) -> CriticalPath:
    """Extract the critical path of a recorded task graph.

    Walks backwards from the task that finishes last.  At each step the
    binding predecessor is the dependency or lane predecessor that
    finished exactly at the current task's start (ties broken by
    latest end, then smallest ``task_id`` — deterministic for a given
    graph).  When no candidate released the task, the gap down to the
    latest candidate end (or 0.0) becomes an explicit wait segment.

    Returns:
        A :class:`CriticalPath` whose :meth:`~CriticalPath.self_check`
        invariant holds by construction.
    """
    tasks = list(tasks)
    if not tasks:
        return CriticalPath(segments=[], makespan=0.0)
    by_id = {task.task_id: task for task in tasks}
    lane_pred = _lane_predecessors(tasks)
    makespan = max(task.end for task in tasks)

    current = min(
        (task for task in tasks if task.end == makespan),
        key=lambda t: t.task_id,
    )
    segments = [_task_segment(current)]
    while current.start > 0.0:
        candidates = [by_id[d] for d in current.deps if d in by_id]
        if current.task_id in lane_pred:
            candidates.append(lane_pred[current.task_id])
        releasing = [c for c in candidates if c.end == current.start]
        if releasing:
            current = min(releasing, key=lambda c: (-c.end, c.task_id))
        else:
            # A not_before bound or fault pause set this start: record
            # the stall explicitly, then resume from the candidate that
            # finished last (the tightest real constraint below it).
            anchor = max((c.end for c in candidates), default=0.0)
            segments.append(_wait_segment(current, anchor))
            if not candidates:
                break
            current = min(candidates, key=lambda c: (-c.end, c.task_id))
        segments.append(_task_segment(current))
    segments.reverse()
    return CriticalPath(segments=segments, makespan=makespan)


def compute_slack(tasks: Iterable) -> dict[int, float]:
    """Per-task slack: seconds a task may grow before the makespan does.

    A backward pass over both edge kinds (dependencies and lane FIFO
    order).  The bound through a successor ``s`` is computed as
    ``s.start + (latest_end(s) - s.end)`` — the same two floats the
    scheduler subtracted — so a task on the critical path comes out
    with a slack of exactly ``0.0``, not merely a small number.
    """
    tasks = sorted(tasks, key=lambda t: t.task_id)
    if not tasks:
        return {}
    by_id = {task.task_id: task for task in tasks}
    makespan = max(task.end for task in tasks)
    successors: dict[int, list] = {task.task_id: [] for task in tasks}
    for task in tasks:
        for dep in task.deps:
            if dep in successors:
                successors[dep].append(task)
    for task_id, pred in _lane_predecessors(tasks).items():
        successors[pred.task_id].append(by_id[task_id])

    latest_end: dict[int, float] = {}
    # deps and lane edges both point from lower to higher task_id, so
    # reverse submission order is a reverse-topological order.
    for task in reversed(tasks):
        bound = makespan
        for succ in successors[task.task_id]:
            through = succ.start + (latest_end[succ.task_id] - succ.end)
            if through < bound:
                bound = through
        latest_end[task.task_id] = bound
    return {task.task_id: latest_end[task.task_id] - task.end for task in tasks}


def critical_gantt(tasks: Iterable, path: CriticalPath | None = None,
                   width: int = 72) -> str:
    """ASCII Gantt chart with the critical path overlaid.

    Same layout as :meth:`SimEngine.gantt` (one row per lane, one
    symbol per phase initial), but on-path tasks render UPPERCASE,
    off-path tasks lowercase, and path waits as ``*`` on the stalled
    lane — so the chain that owns the makespan is visible at a glance.
    """
    tasks = list(tasks)
    if not tasks:
        return "(empty schedule)"
    if path is None:
        path = critical_path(tasks)
    on_path = path.task_ids
    horizon = max(task.end for task in tasks)
    if horizon <= 0:
        return "(empty schedule)"
    rows: dict[tuple[str, int], list] = {}
    for task in tasks:
        rows.setdefault((task.resource, task.lane), []).append(task)
    label_width = max(len(f"{r}#{l}") for r, l in rows)

    def cell_range(start: float, end: float) -> range:
        lo = int(start / horizon * (width - 1))
        hi = max(lo + 1, int(end / horizon * (width - 1)) + 1)
        return range(lo, min(hi, width))

    lines = []
    waits = [s for s in path.segments if s.kind == "wait" and s.duration > 0]
    for (resource, lane), row_tasks in sorted(rows.items()):
        cells = [" "] * width
        for task in row_tasks:
            symbol = (task.phase or task.name or "?")[0]
            symbol = (
                symbol.upper() if task.task_id in on_path else symbol.lower()
            )
            for k in cell_range(task.start, task.end):
                cells[k] = symbol
        for wait in waits:
            if (wait.resource, wait.lane) != (resource, lane):
                continue
            for k in cell_range(wait.start, wait.end):
                if cells[k] == " ":
                    cells[k] = "*"
        label = f"{resource}#{lane}".ljust(label_width)
        lines.append(f"{label} |{''.join(cells)}|")
    lines.append(f"{'':{label_width}}  0{'.' * (width - 8)}{horizon:8.2f}s")
    lines.append(
        f"{'':{label_width}}  critical path UPPERCASE, waits *; "
        f"path = {path.total:.2f}s over {len(on_path)} tasks"
    )
    return "\n".join(lines)


def critical_path_section(
    task_graphs: Iterable[Iterable],
    per_tree: Iterable[float] | None = None,
) -> dict:
    """RunReport v4 ``critical_path`` section for a multi-tree run.

    Trees run serialized (``ScheduleResult.makespan`` is the sum of
    per-tree makespans), so the run's critical path is the per-tree
    paths laid end-to-end; the run ``total`` is the left-to-right sum
    of per-tree telescoped totals — the same reduction ``schedule()``
    applies to per-tree makespans, so the bit-exact invariant lifts to
    the whole run.

    Args:
        task_graphs: per-tree task lists (``ScheduleResult.task_graphs``).
        per_tree: per-tree makespans; defaults to each graph's own.

    Returns:
        ``{}`` when there are no graphs; otherwise a dict with
        ``makespan``/``total``/``wait_seconds``, per-tree summaries
        (tree-local segments plus their global ``offset``), the merged
        attribution, the bottleneck resource and a slack summary.
    """
    graphs = [list(graph) for graph in task_graphs]
    if not graphs:
        return {}
    spans = list(per_tree) if per_tree is not None else None

    trees = []
    attribution: dict[tuple[str, int, str, str], float] = {}
    resource_seconds: dict[str, float] = {}
    zero_slack = 0
    max_slack = 0.0
    offset = 0.0
    total = 0.0
    makespan = 0.0
    for index, graph in enumerate(graphs):
        path = critical_path(graph)
        path.self_check()
        slack = compute_slack(graph)
        zero_slack += sum(1 for value in slack.values() if value == 0.0)
        if slack:
            max_slack = max(max_slack, max(slack.values()))
        trees.append(
            {
                "tree": index,
                "offset": offset,
                "makespan": path.makespan,
                "total": path.total,
                "wait_seconds": path.wait_seconds,
                "tasks_on_path": len(path.task_ids),
                "segments": [s.to_dict() for s in path.segments],
            }
        )
        for row in path.attribution():
            key = (row["resource"], row["lane"], row["phase"], row["op"])
            attribution[key] = attribution.get(key, 0.0) + row["seconds"]
        for name, seconds in path.by_resource().items():
            resource_seconds[name] = resource_seconds.get(name, 0.0) + seconds
        tree_span = spans[index] if spans is not None else path.makespan
        offset += tree_span
        makespan += tree_span
        total += path.total
    run_total = total if total > 0 else 0.0
    rows = [
        {
            "resource": resource,
            "lane": lane,
            "phase": phase,
            "op": op,
            "seconds": seconds,
            "share": seconds / run_total if run_total > 0 else 0.0,
        }
        for (resource, lane, phase, op), seconds in attribution.items()
    ]
    rows.sort(
        key=lambda r: (
            -r["seconds"], r["resource"], r["lane"], r["phase"], r["op"]
        )
    )
    bottleneck = ""
    if resource_seconds:
        bottleneck = max(
            resource_seconds.items(), key=lambda kv: (kv[1], kv[0])
        )[0]
    return {
        "makespan": makespan,
        "total": total,
        "wait_seconds": sum(tree["wait_seconds"] for tree in trees),
        "bottleneck": bottleneck,
        "by_resource": dict(sorted(resource_seconds.items())),
        "attribution": rows,
        "slack": {"zero_slack_tasks": zero_slack, "max_slack": max_slack},
        "trees": trees,
    }


def tasks_from_graph(data: Mapping) -> list:
    """Rebuild duck-typed tasks from ``SimEngine.export_graph()`` JSON.

    Returns lightweight records (not :class:`SimTask`) carrying the
    attributes every function in this module reads, so a graph exported
    on one host can be analyzed anywhere without importing the engine.
    """

    @dataclass(frozen=True)
    class _Task:
        name: str
        phase: str
        resource: str
        lane: int
        start: float
        end: float
        task_id: int
        deps: tuple
        party: object = None

    return [
        _Task(
            name=item["name"],
            phase=item["phase"],
            resource=item["resource"],
            lane=int(item["lane"]),
            start=float(item["start"]),
            end=float(item["end"]),
            task_id=int(item["task_id"]),
            deps=tuple(item.get("deps", ())),
            party=item.get("party"),
        )
        for item in data["tasks"]
    ]
