"""Deterministic Chrome trace-event export.

Converts spans (:mod:`repro.obs.tracer`) into the Chrome trace-event
JSON format understood by Perfetto (https://ui.perfetto.dev) and
chrome://tracing, turning the repo's schedule Gantt data into openable
artifacts that reproduce the paper's Figures 4–6.

Mapping: each distinct span ``track`` becomes a Chrome *process* row
named after it, each ``(track, lane)`` pair becomes a *thread* within
it, and every span becomes one complete ("X") event with microsecond
timestamps.  Output is byte-deterministic: pid/tid assignment comes
from sorted track/lane names, events are emitted in a stable sort
order, and serialization uses sorted keys with fixed separators.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.obs.tracer import Span

__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "dumps_chrome_trace",
    "write_chrome_trace",
]

_US = 1_000_000  # seconds -> microseconds, Chrome's trace unit


def chrome_trace_events(spans: Iterable[Span]) -> list[dict]:
    """Spans -> Chrome trace-event dicts (metadata rows first)."""
    spans = list(spans)
    tracks = sorted({span.track for span in spans})
    pids = {track: pid for pid, track in enumerate(tracks, start=1)}
    lanes = sorted({(span.track, span.lane) for span in spans})
    tids = {key: tid for tid, key in enumerate(lanes, start=1)}

    events: list[dict] = []
    for track in tracks:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pids[track],
                "tid": 0,
                "args": {"name": track},
            }
        )
    for track, lane in lanes:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pids[track],
                "tid": tids[(track, lane)],
                "args": {"name": f"{track}/lane{lane}"},
            }
        )
    ordered = sorted(
        spans, key=lambda s: (s.track, s.lane, s.start, s.end, s.name)
    )
    for span in ordered:
        events.append(
            {
                "name": span.name,
                "cat": span.category or "uncategorized",
                "ph": "X",
                "ts": round(span.start * _US, 3),
                "dur": round(span.duration * _US, 3),
                "pid": pids[span.track],
                "tid": tids[(span.track, span.lane)],
                "args": dict(sorted(span.args.items())),
            }
        )
    return events


def chrome_trace(spans: Iterable[Span]) -> dict:
    """Full trace document: {"traceEvents": [...], ...}."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }


def dumps_chrome_trace(spans: Iterable[Span]) -> str:
    """Serialize with repeatable bytes (sorted keys, no whitespace)."""
    return json.dumps(chrome_trace(spans), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(path: str, spans: Iterable[Span]) -> None:
    """Write a Perfetto-loadable trace file to ``path``."""
    with open(path, "w") as handle:
        handle.write(dumps_chrome_trace(spans))
