"""Deterministic Chrome trace-event export.

Converts spans (:mod:`repro.obs.tracer`) into the Chrome trace-event
JSON format understood by Perfetto (https://ui.perfetto.dev) and
chrome://tracing, turning the repo's schedule Gantt data into openable
artifacts that reproduce the paper's Figures 4–6.

Mapping: each distinct span ``track`` becomes a Chrome *process* row
named after it, each ``(track, lane)`` pair becomes a *thread* within
it, and every span becomes one complete ("X") event with microsecond
timestamps.  Output is byte-deterministic: pid/tid assignment comes
from sorted track/lane names, events are emitted in a stable sort
order, and serialization uses sorted keys with fixed separators.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping

from repro.obs.tracer import Span

__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "dumps_chrome_trace",
    "write_chrome_trace",
]

_US = 1_000_000  # seconds -> microseconds, Chrome's trace unit

#: process name of the synthetic counter rows
_COUNTER_TRACK = "counters"

#: process name of the synthetic alert instant-event row
_ALERT_TRACK = "alerts"


def chrome_trace_events(
    spans: Iterable[Span],
    counters: Mapping[str, float] | None = None,
    instants: Iterable[Mapping] | None = None,
) -> list[dict]:
    """Spans -> Chrome trace-event dicts (metadata rows first).

    Args:
        spans: the intervals to export.
        counters: optional flat ``name -> value`` map (e.g. a
            :meth:`MetricsRegistry.counters` snapshot); each becomes a
            Chrome counter ("C") track under a synthetic ``counters``
            process, so Perfetto plots op totals alongside the spans.
            Values are run totals sampled once at the trace start and
            once at its end — constant tracks, not time series (the
            registry keeps no per-sample history).  Emission order is
            sorted by name, keeping the export byte-deterministic.
        instants: optional ``{"name", "time", "args"}`` descriptors
            (e.g. :meth:`AlertEngine.instant_events`); each becomes a
            globally-scoped instant ("i") event on a synthetic
            ``alerts`` process, so alert open/close markers overlay the
            span timeline.  Emission order is sorted by (time, name).
    """
    spans = list(spans)
    tracks = sorted({span.track for span in spans})
    pids = {track: pid for pid, track in enumerate(tracks, start=1)}
    lanes = sorted({(span.track, span.lane) for span in spans})
    tids = {key: tid for tid, key in enumerate(lanes, start=1)}

    events: list[dict] = []
    for track in tracks:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pids[track],
                "tid": 0,
                "args": {"name": track},
            }
        )
    for track, lane in lanes:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pids[track],
                "tid": tids[(track, lane)],
                "args": {"name": f"{track}/lane{lane}"},
            }
        )
    if counters:
        counter_pid = len(tracks) + 1
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": counter_pid,
                "tid": 0,
                "args": {"name": _COUNTER_TRACK},
            }
        )
        horizon = max((span.end for span in spans), default=0.0)
        sample_times = [0.0]
        if horizon > 0:
            sample_times.append(round(horizon * _US, 3))
        for name, value in sorted(counters.items()):
            for ts in sample_times:
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": ts,
                        "pid": counter_pid,
                        "tid": 0,
                        "args": {"value": float(value)},
                    }
                )
    instants = list(instants or [])
    if instants:
        instant_pid = len(tracks) + (2 if counters else 1)
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": instant_pid,
                "tid": 0,
                "args": {"name": _ALERT_TRACK},
            }
        )
        for item in sorted(
            instants,
            key=lambda d: (float(d.get("time", 0.0)), str(d.get("name", ""))),
        ):
            events.append(
                {
                    "name": str(item.get("name", "")),
                    "ph": "i",
                    "s": "g",
                    "ts": round(float(item.get("time", 0.0)) * _US, 3),
                    "pid": instant_pid,
                    "tid": 0,
                    "args": dict(sorted(dict(item.get("args", {})).items())),
                }
            )
    ordered = sorted(
        spans, key=lambda s: (s.track, s.lane, s.start, s.end, s.name)
    )
    for span in ordered:
        events.append(
            {
                "name": span.name,
                "cat": span.category or "uncategorized",
                "ph": "X",
                "ts": round(span.start * _US, 3),
                "dur": round(span.duration * _US, 3),
                "pid": pids[span.track],
                "tid": tids[(span.track, span.lane)],
                "args": dict(sorted(span.args.items())),
            }
        )
    return events


def chrome_trace(
    spans: Iterable[Span],
    counters: Mapping[str, float] | None = None,
    instants: Iterable[Mapping] | None = None,
) -> dict:
    """Full trace document: {"traceEvents": [...], ...}."""
    return {
        "traceEvents": chrome_trace_events(
            spans, counters=counters, instants=instants
        ),
        "displayTimeUnit": "ms",
    }


def dumps_chrome_trace(
    spans: Iterable[Span],
    counters: Mapping[str, float] | None = None,
    instants: Iterable[Mapping] | None = None,
) -> str:
    """Serialize with repeatable bytes (sorted keys, no whitespace)."""
    return json.dumps(
        chrome_trace(spans, counters=counters, instants=instants),
        sort_keys=True,
        separators=(",", ":"),
    )


def write_chrome_trace(
    path: str,
    spans: Iterable[Span],
    counters: Mapping[str, float] | None = None,
    instants: Iterable[Mapping] | None = None,
) -> None:
    """Write a Perfetto-loadable trace file to ``path``."""
    with open(path, "w") as handle:
        handle.write(
            dumps_chrome_trace(spans, counters=counters, instants=instants)
        )
