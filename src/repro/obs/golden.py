"""Golden op-count regression guard.

The paper's speedups are *counting* arguments: blaster encryption and
pair packing change how many Enc operations run, re-ordered
accumulation trades scalings for plain HAdds, histogram packing divides
the Dec count and the A->B bytes by the pack width ``t``.  A silent
regression in any of those counts invalidates every performance claim
while all functional tests stay green — the model is still correct, it
is just secretly more expensive.

This module trains a tiny (but real-crypto: every Paillier operation
physically executes) two-party run at a fixed shape for the full
VF2Boost configuration and the SecureBoost-style unoptimized baseline,
and reduces each run to its exact cost fingerprint: per-party
Enc/Dec/HAdd/Scale/SMul counts, bytes on the wire, and per-message-type
byte totals.  ``tests/golden/opcounts.json`` pins the expected
fingerprints; ``tests/test_obs_golden.py`` fails tier-1 on any drift.

Everything is seeded (dataset, keygen, exponent jitter), so the counts
are exact integers, not tolerances.  Regenerate after an *intentional*
cost change with::

    PYTHONPATH=src python -m repro.obs.golden tests/golden/opcounts.json

and justify the new numbers in the commit message.
"""

from __future__ import annotations

import json
import sys

import numpy as np

__all__ = ["GOLDEN_SHAPE", "golden_fingerprint", "golden_fingerprints"]

#: the fixed workload shape every golden count is pinned at
GOLDEN_SHAPE = {
    "n_instances": 48,
    "n_features": 6,
    "n_trees": 2,
    "n_layers": 3,
    "n_bins": 4,
    "key_bits": 256,
    "blaster_batch_size": 16,
    "seed": 20210614,  # the paper's SIGMOD publication date
}


def _variant_config(variant: str):
    """The named protocol variant at the golden shape."""
    from repro.core.config import VF2BoostConfig
    from repro.gbdt.params import GBDTParams

    params = GBDTParams(
        n_trees=GOLDEN_SHAPE["n_trees"],
        n_layers=GOLDEN_SHAPE["n_layers"],
        n_bins=GOLDEN_SHAPE["n_bins"],
    )
    common = dict(
        params=params,
        crypto_mode="real",
        key_bits=GOLDEN_SHAPE["key_bits"],
        blaster_batch_size=GOLDEN_SHAPE["blaster_batch_size"],
        seed=GOLDEN_SHAPE["seed"],
    )
    if variant == "vf2boost":
        return VF2BoostConfig.vf2boost(**common)
    if variant == "secureboost":
        return VF2BoostConfig.vf_gbdt(**common)
    raise ValueError(f"unknown golden variant {variant!r}")


def _golden_dataset():
    """The fixed two-party vertical partition (seeded, shape-pinned)."""
    from repro.gbdt.binning import bin_dataset

    rng = np.random.default_rng(GOLDEN_SHAPE["seed"])
    n, d = GOLDEN_SHAPE["n_instances"], GOLDEN_SHAPE["n_features"]
    features = rng.normal(size=(n, d))
    labels = ((features @ rng.normal(size=d)) > 0).astype(float)
    full = bin_dataset(features, GOLDEN_SHAPE["n_bins"])
    half = d // 2
    parties = [
        full.subset_features(np.arange(0, half)),  # Party B (active)
        full.subset_features(np.arange(half, d)),  # Party A (passive)
    ]
    return parties, labels


def golden_fingerprint(variant: str) -> dict:
    """Train one variant at the golden shape; return its cost fingerprint.

    The fingerprint holds only exact, seeded-deterministic integers:
    per-party op counts, total/bytes-per-direction wire accounting and
    per-message-type byte totals.
    """
    from repro.core.trainer import FederatedTrainer

    parties, labels = _golden_dataset()
    result = FederatedTrainer(_variant_config(variant)).fit(parties, labels)
    channel = result.channel
    return {
        "ops": {
            str(party): stats.to_dict()
            for party, stats in sorted(result.crypto_stats.items())
        },
        "bytes_on_wire": channel.total_bytes(),
        "bytes_by_direction": {
            f"{src}->{dst}": stats.bytes
            for (src, dst), stats in sorted(channel.stats.items())
        },
        "bytes_by_type": {
            name: stats.bytes for name, stats in sorted(channel.by_type.items())
        },
        "messages": sum(stats.messages for stats in channel.stats.values()),
    }


def golden_fingerprints() -> dict:
    """Fingerprints of every guarded variant, plus the shape they pin."""
    return {
        "shape": dict(GOLDEN_SHAPE),
        "variants": {
            variant: golden_fingerprint(variant)
            for variant in ("vf2boost", "secureboost")
        },
    }


def main(argv: list[str] | None = None) -> int:
    """Regenerate the golden file: ``python -m repro.obs.golden <path>``."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.golden <output.json>", file=sys.stderr)
        return 2
    data = golden_fingerprints()
    with open(argv[0], "w") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {argv[0]}")
    return 0


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    raise SystemExit(main())
