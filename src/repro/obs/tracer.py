"""Span-based tracing with an explicit, injected clock.

A :class:`Span` is one named interval on a ``(track, lane)`` pair —
the same shape as a row in the paper's Gantt charts (Figures 4–6):
track = party/resource, lane = pipeline slot, category = protocol
phase.  Real runs and simulated runs emit identical spans; the only
difference is where the timestamps come from, so the :class:`Tracer`
never reads a clock itself.  Callers either pass explicit start/end
times (:meth:`Tracer.add`) or inject a clock callable at construction
and use the :meth:`Tracer.span` context manager.

``spans_from_tasks`` adapts any iterable of ``SimEngine``-style task
objects (``name``/``phase``/``resource``/``lane``/``start``/``end``
attributes, duck-typed to keep this module dependency-free) into spans,
which the Chrome exporter in :mod:`repro.obs.trace_export` turns into
an artifact openable in Perfetto.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "spans_from_tasks"]


@dataclass(frozen=True)
class Span:
    """One named time interval on a (track, lane) pair.

    Attributes:
        name: what happened ("Enc g/h", "RoundTrip", ...).
        category: coarse grouping — protocol phase or serve stage.
        track: who did it (a resource/party name; Chrome "thread").
        lane: sub-slot within the track (pipeline stage, batch id).
        start: interval start, seconds (simulated or wall, caller's
            choice — a single trace must not mix the two).
        end: interval end, seconds; must be >= start.
        args: extra JSON-ready key/values shown in the trace viewer.
    """

    name: str
    category: str
    track: str
    start: float
    end: float
    lane: int = 0
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"span {self.name!r} ends before it starts "
                f"({self.end} < {self.start})"
            )

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready representation (used by RunReport)."""
        return {
            "name": self.name,
            "category": self.category,
            "track": self.track,
            "lane": self.lane,
            "start": self.start,
            "end": self.end,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            category=data["category"],
            track=data["track"],
            lane=int(data.get("lane", 0)),
            start=float(data["start"]),
            end=float(data["end"]),
            args=dict(data.get("args", {})),
        )


class Tracer:
    """Collects spans; timestamps always come from the caller.

    Args:
        clock: optional zero-argument callable returning the current
            time in seconds.  Required only for the :meth:`span`
            context manager; :meth:`add` works without one.  Injecting
            the clock keeps this module free of wall-clock reads (the
            determinism lint's DET001 contract) — a simulated run
            passes ``lambda: engine.now`` and a real run passes
            ``time.perf_counter`` at its own call site.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock
        self.spans: list[Span] = []

    def add(
        self,
        name: str,
        start: float,
        end: float,
        *,
        category: str = "",
        track: str = "main",
        lane: int = 0,
        **args: object,
    ) -> Span:
        """Record a span with explicit timestamps; returns it."""
        span = Span(
            name=name,
            category=category,
            track=track,
            lane=lane,
            start=float(start),
            end=float(end),
            args=dict(args),
        )
        self.spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        category: str = "",
        track: str = "main",
        lane: int = 0,
        **args: object,
    ) -> Iterator[None]:
        """Time a block using the injected clock."""
        if self._clock is None:
            raise RuntimeError("Tracer.span() needs a clock; use add()")
        start = self._clock()
        try:
            yield
        finally:
            self.spans.append(
                Span(
                    name=name,
                    category=category,
                    track=track,
                    lane=lane,
                    start=start,
                    end=self._clock(),
                    args=dict(args),
                )
            )

    def extend(self, spans: Iterable[Span]) -> None:
        """Append pre-built spans (e.g. from ``spans_from_tasks``)."""
        self.spans.extend(spans)

    def phase_totals(self) -> dict[str, float]:
        """Summed span duration per category, keys sorted."""
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span.category] = totals.get(span.category, 0.0) + span.duration
        return dict(sorted(totals.items()))

    def lane_busy(self) -> dict[tuple[str, int], float]:
        """Busy seconds per (track, lane), keys sorted.

        The span-side equivalent of ``SimEngine.lane_utilization()``
        before dividing by the horizon — what ``repro trace --summary``
        tabulates from a saved report without re-running the producer.
        """
        busy: dict[tuple[str, int], float] = {}
        for span in self.spans:
            key = (span.track, span.lane)
            busy[key] = busy.get(key, 0.0) + span.duration
        return dict(sorted(busy.items()))

    def utilization(self) -> dict[tuple[str, int], float]:
        """Busy fraction per (track, lane) over the makespan."""
        horizon = self.makespan
        if horizon <= 0:
            return {key: 0.0 for key in self.lane_busy()}
        return {
            key: busy / horizon for key, busy in self.lane_busy().items()
        }

    @property
    def makespan(self) -> float:
        """Latest span end (0.0 when empty); starts are clamped at 0."""
        return max((span.end for span in self.spans), default=0.0)


def spans_from_tasks(
    tasks: Iterable[object],
    *,
    offset: float = 0.0,
    args: dict | None = None,
) -> list[Span]:
    """Adapt SimEngine-style tasks into spans.

    Duck-typed over ``name``/``phase``/``resource``/``lane``/``start``/
    ``end`` attributes so this module stays import-free.  ``offset``
    shifts all timestamps — used to lay consecutive per-tree engines
    end-to-end on one global timeline.
    """
    spans = []
    for task in tasks:
        spans.append(
            Span(
                name=task.name,
                category=task.phase,
                track=task.resource,
                lane=task.lane,
                start=task.start + offset,
                end=task.end + offset,
                args=dict(args or {}),
            )
        )
    return spans
