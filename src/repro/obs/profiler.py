"""Deterministic hot-path profiler for the real Paillier choke points.

Every physically executed crypto operation funnels through two narrow
necks: the :class:`~repro.crypto.ciphertext.PaillierContext` op methods
(one per priced unit cost of §5 — Enc/Dec/HAdd/Scale/SMul/PAdd) and the
single ``powmod`` wrapper in :mod:`repro.crypto.math_utils` that every
modular exponentiation goes through.  The :class:`HotPathProfiler`
instruments both while installed and attributes each sample to
``(phase, op)`` — *phase* is a protocol label the caller scopes
(``"GradEnc"``, ``"Histogram"``, ...), *op* the unit-cost name.

Determinism contract: the profiler never reads a clock itself.  With no
``timer`` injected it runs in counts-only mode — op and powmod counts
are exact, seeded-deterministic integers that must equal the context's
own :class:`~repro.crypto.ciphertext.OpStats` (the golden op-count
guard extends to profiler output).  Injecting a ``timer`` callable adds
per-op *self* seconds (child op time is subtracted, so summing over ops
never double-counts nested calls such as the scale inside an aligned
HAdd); real runs inject ``time.perf_counter`` at their own call site,
tests inject a fake monotonic counter.

Only one profiler can be installed at a time; installation patches
class attributes process-wide and is reversed exactly by
:meth:`HotPathProfiler.uninstall` (or the context-manager protocol).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["HotPathProfiler", "OP_METHODS"]

#: PaillierContext method -> unit-cost op name; mirrors exactly the
#: methods that bump OpStats (``decrypt`` delegates to
#: ``decrypt_encoded`` and is deliberately absent — patching it too
#: would double-count).
OP_METHODS: dict[str, str] = {
    "encrypt": "enc",
    "encrypt_encoded": "enc",
    "decrypt_encoded": "dec",
    "decrypt_raw": "dec",
    "add": "hadd",
    "scale_to": "scale",
    "multiply": "smul",
    "multiply_raw": "smul",
    "add_plain": "padd",
    "add_plain_raw": "padd",
}

#: label for powmods observed outside any patched op (keygen,
#: obfuscator precompute) and for samples taken before a phase is set
OTHER = "other"
UNPHASED = "unphased"

#: the at-most-one installed profiler (class patching is process-wide)
_ACTIVE: list["HotPathProfiler | None"] = [None]


@dataclass
class _OpRecord:
    """Accumulated samples of one ``(phase, op)`` cell."""

    count: int = 0
    seconds: float = 0.0
    powmods: int = 0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "seconds": self.seconds,
            "powmods": self.powmods,
        }


class HotPathProfiler:
    """Attribute crypto hot-path work to protocol phase and op.

    Args:
        timer: optional zero-argument callable returning seconds.
            ``None`` (the default) keeps the profiler fully
            deterministic: counts only, all durations zero.  Callers
            outside the simulation scope may inject
            ``time.perf_counter`` for real self-time attribution.

    Use as a context manager (install on enter, uninstall on exit);
    records survive uninstall so :meth:`summary` can run afterwards.
    """

    def __init__(self, timer: Callable[[], float] | None = None) -> None:
        self._timer = timer
        self.phase: str = ""
        self._records: dict[tuple[str, str], _OpRecord] = {}
        #: open wrapper frames: [record, start_seconds, child_seconds]
        self._frames: list[list] = []
        self._installed = False
        self._saved_methods: dict[str, object] = {}
        self._saved_observer: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Install / uninstall
    # ------------------------------------------------------------------
    def install(self) -> "HotPathProfiler":
        """Patch the choke points; returns self. At most one at a time."""
        if self._installed:
            raise RuntimeError("profiler is already installed")
        if _ACTIVE[0] is not None:
            raise RuntimeError("another HotPathProfiler is already installed")
        # Imported lazily: obs modules stay import-free of the rest of
        # the package (ciphertext itself imports repro.obs.metrics).
        from repro.crypto import math_utils
        from repro.crypto.ciphertext import PaillierContext

        for method_name, op in sorted(OP_METHODS.items()):
            original = getattr(PaillierContext, method_name)
            self._saved_methods[method_name] = original
            setattr(
                PaillierContext,
                method_name,
                self._wrap(original, method_name, op),
            )
        self._saved_observer = math_utils.set_powmod_observer(self._on_powmod)
        _ACTIVE[0] = self
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the patched methods and the powmod observer."""
        if not self._installed:
            return
        from repro.crypto import math_utils
        from repro.crypto.ciphertext import PaillierContext

        for method_name, original in sorted(self._saved_methods.items()):
            setattr(PaillierContext, method_name, original)
        self._saved_methods.clear()
        math_utils.set_powmod_observer(self._saved_observer)
        self._saved_observer = None
        _ACTIVE[0] = None
        self._installed = False

    def __enter__(self) -> "HotPathProfiler":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # Phase scoping
    # ------------------------------------------------------------------
    def set_phase(self, name: str) -> None:
        """Attribute subsequent samples to protocol phase ``name``."""
        self.phase = name

    @contextmanager
    def phase_scope(self, name: str) -> Iterator[None]:
        """Scope the phase label over a block, restoring the previous."""
        previous = self.phase
        self.phase = name
        try:
            yield
        finally:
            self.phase = previous

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _record(self, phase: str, op: str) -> _OpRecord:
        key = (phase or UNPHASED, op)
        record = self._records.get(key)
        if record is None:
            record = self._records[key] = _OpRecord()
        return record

    def _on_powmod(self) -> None:
        if self._frames:
            self._frames[-1][0].powmods += 1
        else:
            self._record(self.phase, OTHER).powmods += 1

    def _wrap(self, method, method_name: str, op: str):
        profiler = self

        def wrapper(context, *args, **kwargs):
            if method_name == "scale_to":
                # Mirror OpStats: a same-exponent scale_to is a no-op
                # and is not counted as a scaling.
                number = kwargs.get("number", args[0] if args else None)
                exponent = kwargs.get(
                    "exponent", args[1] if len(args) > 1 else None
                )
                if number is not None and exponent == number.exponent:
                    return method(context, *args, **kwargs)
            record = profiler._record(profiler.phase, op)
            timer = profiler._timer
            start = timer() if timer is not None else 0.0
            frame = [record, start, 0.0]
            profiler._frames.append(frame)
            try:
                return method(context, *args, **kwargs)
            finally:
                profiler._frames.pop()
                elapsed = (timer() - start) if timer is not None else 0.0
                record.count += 1
                # Self time: subtract nested patched-op time so op
                # totals sum without double counting.
                record.seconds += max(0.0, elapsed - frame[2])
                if profiler._frames:
                    profiler._frames[-1][2] += elapsed

        wrapper.__name__ = method_name
        wrapper.__doc__ = getattr(method, "__doc__", None)
        wrapper.__wrapped__ = method
        return wrapper

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    @property
    def timed(self) -> bool:
        """Whether a timer was injected (durations are meaningful)."""
        return self._timer is not None

    def reset(self) -> None:
        """Drop all accumulated records (keeps the installation state)."""
        self._records.clear()

    def summary(self) -> dict:
        """JSON-ready per-op and per-phase totals.

        Shape: ``{"timed": bool, "ops": {op: {count, seconds,
        powmods}}, "phases": {phase: {op: {...}}}}``.  In counts-only
        mode all ``seconds`` are 0.0 and the counts are exact.
        """
        ops: dict[str, dict] = {}
        phases: dict[str, dict] = {}
        for (phase, op), record in sorted(self._records.items()):
            entry = record.to_dict()
            aggregate = ops.setdefault(
                op, {"count": 0, "seconds": 0.0, "powmods": 0}
            )
            for key, value in entry.items():
                aggregate[key] += value
            phases.setdefault(phase, {})[op] = entry
        return {"timed": self.timed, "ops": ops, "phases": phases}

    def counters(self) -> dict[str, float]:
        """Flat ``name -> value`` map of the accumulated counts.

        Keys: ``ops.{op}.count`` / ``ops.{op}.powmods`` plus
        ``phase.{phase}.{op}.count`` — the shape the regression differ
        (:func:`repro.obs.forensics.diff_scalar_maps`) and the Chrome
        counter-event export consume directly.  Counts only (exact in
        any mode); seconds stay in :meth:`summary`.
        """
        flat: dict[str, float] = {}
        for (phase, op), record in sorted(self._records.items()):
            ops_count = f"ops.{op}.count"
            ops_powmods = f"ops.{op}.powmods"
            flat[ops_count] = flat.get(ops_count, 0.0) + record.count
            flat[ops_powmods] = flat.get(ops_powmods, 0.0) + record.powmods
            flat[f"phase.{phase}.{op}.count"] = float(record.count)
        return flat

    def merge_into(
        self,
        tracer,
        offset: float | None = None,
        track: str = "profiler",
    ) -> list:
        """Lay one span per ``(phase, op)`` cell onto a Tracer.

        Spans are laid end to end starting at ``offset`` (the tracer's
        current makespan when omitted), category = phase, duration =
        the cell's self seconds (zero-length in counts-only mode), with
        ``count``/``powmods`` attached as span args.  Returns the spans.
        """
        cursor = tracer.makespan if offset is None else offset
        spans = []
        for (phase, op), record in sorted(self._records.items()):
            span = tracer.add(
                f"{phase}.{op}",
                cursor,
                cursor + record.seconds,
                category=phase,
                track=track,
                count=record.count,
                powmods=record.powmods,
            )
            cursor = span.end
            spans.append(span)
        return spans
