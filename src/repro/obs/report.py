"""RunReport: one JSON artifact per run, with everything attached.

A :class:`RunReport` bundles what the paper's evaluation sections keep
re-deriving: a metrics snapshot (crypto op counts, channel traffic,
serve counters), a per-phase time breakdown (Tables 1–2), per-channel
and per-party totals (§6.2), and optionally the raw spans so the
associated Chrome trace can be regenerated later with ``repro trace``.

Emitters: :meth:`repro.core.trainer.TrainResult.run_report`,
:meth:`repro.core.protocol.ScheduleResult.run_report`, the serve bench
(``--report-out``) and the ``benchmarks/`` scripts (``--obs-dir``).
The builders here are duck-typed (a "channel" is anything with
``stats``/``by_type`` shaped like :class:`repro.fed.channel.ChannelStats`)
so this module imports nothing from the rest of the package beyond the
tracer/exporter it fronts.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.obs.tracer import Span
from repro.obs.trace_export import write_chrome_trace

__all__ = ["RunReport", "channel_report"]

#: schema version for saved report files; version 2 added the
#: ``profile`` (hot-path profiler summary) and ``artifacts`` (paths of
#: sidecar files such as SLO event logs) fields; version 3 added the
#: ``faults`` field (fault-injection / recovery summary of a reliable
#: channel); version 4 added the ``critical_path`` field (critical-path
#: segments, makespan attribution and slack summary from
#: :mod:`repro.obs.critical`); version 5 added the flight-recorder
#: fields ``events`` (unified event-log tail,
#: :mod:`repro.obs.events`), ``alerts`` (alert-engine summary,
#: :mod:`repro.obs.alerts`) and ``incidents`` (paths of incident
#: bundles snapshotted during the run, :mod:`repro.obs.incident`).
#: All optional with empty defaults, so older files load unchanged.
REPORT_VERSION = 5


def channel_report(channel) -> dict:
    """JSON-ready traffic summary of a RecordingChannel-like object.

    Expects ``channel.stats`` mapping ``(sender, receiver)`` to objects
    with ``messages``/``bytes``/``by_type`` attributes and a channel
    level ``channel.by_type`` of the same shape (duck-typed).
    """
    directions = {}
    for (sender, receiver), stats in sorted(channel.stats.items()):
        directions[f"{sender}->{receiver}"] = {
            "messages": stats.messages,
            "bytes": stats.bytes,
            "by_type": {
                name: {"messages": per.messages, "bytes": per.bytes}
                for name, per in sorted(stats.by_type.items())
            },
        }
    return {
        "total_bytes": sum(s.bytes for s in channel.stats.values()),
        "total_messages": sum(s.messages for s in channel.stats.values()),
        "directions": directions,
        "by_type": {
            name: {"messages": per.messages, "bytes": per.bytes}
            for name, per in sorted(channel.by_type.items())
        },
    }


@dataclass
class RunReport:
    """The one-file summary of a train / schedule / serve run.

    Attributes:
        kind: what produced it — ``"train"``, ``"schedule"``,
            ``"serve"`` or ``"benchmark"``.
        label: free-form run label (config preset, bench scenario).
        config: JSON-ready run configuration.
        metrics: a :meth:`MetricsRegistry.snapshot` (or compatible).
        phases: busy seconds per phase tag (Tables 1–2 shape).
        channels: :func:`channel_report` output (or compatible).
        parties: per-party totals, e.g. crypto op counts keyed by
            party id (stringified for JSON).
        makespan: end-to-end seconds (simulated or wall).
        spans: serialized spans (:meth:`Span.to_dict`); lets
            ``repro trace`` regenerate the Chrome trace offline.
        profile: a :meth:`~repro.obs.profiler.HotPathProfiler.summary`
            (per-op / per-phase crypto hot-path totals), when the run
            was profiled.
        artifacts: sidecar file paths keyed by kind (e.g. the serve
            SLO watcher's JSONL event log under ``"events"``).
        faults: a :meth:`~repro.fed.reliable.ReliableChannel.summary`
            (fault plan, drop/resend/dedupe tallies, recovery-clock
            seconds) when the run trained over a fault-injected
            channel.  Empty on fault-free runs.
        critical_path: a
            :func:`~repro.obs.critical.critical_path_section` (path
            segments, (resource, lane, phase, op) makespan attribution,
            bottleneck resource, slack summary) for schedule-kind runs
            that collected task graphs.  Empty otherwise; the input of
            the regression differ (:mod:`repro.obs.forensics`).
        events: the run's unified event log as flat wire dicts
            (:meth:`~repro.obs.events.EventLog.to_dicts`) — fault
            injections, trainer phase/tree/checkpoint transitions, SLO
            violations, shed decisions, canary transitions, alert
            open/close.  Alert events (subsystem ``"obs.alerts"``)
            additionally overlay the Chrome trace as instant markers.
        alerts: an :meth:`~repro.obs.alerts.AlertEngine.summary`
            (rules, episodes, open alerts, incident paths) when the
            run evaluated alert rules.
        incidents: paths of :class:`~repro.obs.incident.IncidentBundle`
            files snapshotted during the run, in creation order.
    """

    kind: str
    label: str = ""
    config: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    channels: dict = field(default_factory=dict)
    parties: dict = field(default_factory=dict)
    makespan: float = 0.0
    spans: list = field(default_factory=list)
    profile: dict = field(default_factory=dict)
    artifacts: dict = field(default_factory=dict)
    faults: dict = field(default_factory=dict)
    critical_path: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    alerts: dict = field(default_factory=dict)
    incidents: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready representation (includes the schema version)."""
        data = asdict(self)
        data["version"] = REPORT_VERSION
        return data

    def to_json(self, indent: int | None = 1) -> str:
        """Serialized :meth:`to_dict` with repeatable key order."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        """Write the report JSON to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "RunReport":
        """Read a report written by :meth:`save`."""
        with open(path) as handle:
            data = json.load(handle)
        data.pop("version", None)
        return cls(**data)

    def span_objects(self) -> list[Span]:
        """The stored spans as :class:`Span` objects."""
        return [Span.from_dict(item) for item in self.spans]

    def write_chrome_trace(self, path: str) -> int:
        """Export the stored spans as Chrome trace JSON; returns count.

        When the metrics snapshot carries counters (a
        :meth:`MetricsRegistry.snapshot`), they are emitted as Chrome
        counter tracks alongside the spans, so Perfetto shows op totals
        next to the timeline.  Alert events stored in :attr:`events`
        (subsystem ``"obs.alerts"``) become instant markers on a
        synthetic ``alerts`` process.

        Raises:
            ValueError: when the report carries no spans (emitted
                without ``--trace-out``-style span retention).
        """
        spans = self.span_objects()
        if not spans:
            raise ValueError(
                f"report {self.label!r} holds no spans; re-run its "
                "producer with span retention (e.g. --trace-out)"
            )
        counters = self.metrics.get("counters") if self.metrics else None
        instants = [
            {
                "name": f"{item.get('kind', '')}:{item.get('rule', '')}",
                "time": item.get("time", 0.0),
                "args": {
                    "metric": item.get("metric", ""),
                    "value": item.get("value", 0.0),
                },
            }
            for item in self.events
            if item.get("subsystem") == "obs.alerts"
        ]
        write_chrome_trace(
            path, spans, counters=counters or None, instants=instants or None
        )
        return len(spans)
