"""Unified flight-recorder event log: one schema, every subsystem.

Before this module each failure-adjacent subsystem kept its own ad-hoc
log — :class:`~repro.fed.reliable.FaultEvent` dataclasses, the SLO
watcher's event dicts, canary state flips, fleet shed counters.  An
:class:`EventLog` is the shared ring buffer they all feed: a bounded,
byte-deterministic sequence of structured :class:`Event` records on the
*simulated* clock (every timestamp is passed in by the producer; this
module never reads a wall clock — the analyzer's DET001 rule polices
exactly that).

Schema.  An event is ``(time, subsystem, kind, labels, payload)``:

* ``time`` — simulated-clock seconds (recovery clock for training
  faults, event-loop clock for serving, 0.0 for control-plane events);
* ``subsystem`` — the producer, dotted (``"fed.reliable"``,
  ``"trainer"``, ``"serve.slo"``, ``"serve.fleet"``, ``"serve.canary"``,
  ``"serve.registry"``, ``"obs.alerts"``, ``"bench.gate"``);
* ``kind`` — the transition (``"drop"``, ``"tree_end"``, ``"shed"``,
  ``"alert_open"``, ...);
* ``labels`` — constant attribution (party / replica / arm / scenario);
* ``payload`` — event-specific fields.

The wire form (:meth:`Event.to_dict`, one JSON line per event with
sorted keys) is *flat*: labels and payload merge to the top level next
to ``time``/``subsystem``/``kind``, plus ``event`` as a compat alias of
``kind`` — so pre-unification consumers of the SLO watcher's JSONL
(``record["event"]``, ``record["scenario"]``) keep working unchanged.
The keys ``event``/``kind``/``subsystem``/``time`` are therefore
reserved and may not appear in labels or payload.

The ring buffer is exact: at ``capacity`` events the oldest is evicted
(counted in :attr:`EventLog.evicted`); sequence numbers keep counting,
so ``total`` always equals the number of events ever appended.  Two
identical runs produce byte-identical :meth:`EventLog.lines` — the
foundation the incident bundles (:mod:`repro.obs.incident`) build on.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Event", "EventLog", "event_from_wire", "read_events_jsonl"]

#: top-level wire keys an event owns; labels/payload may not shadow them
RESERVED_KEYS = ("event", "kind", "subsystem", "time")


@dataclass
class Event:
    """One structured flight-recorder record on the simulated clock.

    Attributes:
        time: simulated-clock seconds (producer-supplied, never wall).
        subsystem: dotted producer name (``"fed.reliable"``, ...).
        kind: the transition this event records.
        labels: constant attribution merged into the wire form
            (party / replica / arm / scenario tags).
        payload: event-specific fields, also merged into the wire form.
        seq: global append order, assigned by :meth:`EventLog.append`
            (``-1`` for events never appended to a log).
    """

    time: float
    subsystem: str
    kind: str
    labels: dict = field(default_factory=dict)
    payload: dict = field(default_factory=dict)
    seq: int = -1

    def __post_init__(self) -> None:
        for source in (self.labels, self.payload):
            clash = sorted(set(source) & set(RESERVED_KEYS))
            if clash:
                raise ValueError(
                    f"event labels/payload may not use reserved keys {clash}"
                )
        overlap = sorted(set(self.labels) & set(self.payload))
        if overlap:
            raise ValueError(
                f"keys {overlap} appear in both labels and payload"
            )

    def to_dict(self) -> dict:
        """Flat JSON-ready wire form, legacy aliases included.

        ``event`` duplicates ``kind`` so consumers written against the
        pre-unification SLO watcher lines keep reading these.
        """
        record = {
            "event": self.kind,
            "kind": self.kind,
            "subsystem": self.subsystem,
            "time": self.time,
        }
        record.update(self.labels)
        record.update(self.payload)
        return record

    def legacy_dict(self) -> dict:
        """The exact pre-unification record shape (no schema keys).

        What :attr:`SLOWatcher.events` and the canary's event list
        exposed before the shared schema existed: ``event``/``time``
        plus labels and payload, nothing else.
        """
        record = {"event": self.kind, "time": self.time}
        record.update(self.labels)
        record.update(self.payload)
        return record

    def line(self) -> str:
        """One stable-key-order JSON line (byte-deterministic)."""
        return json.dumps(self.to_dict(), sort_keys=True)


class EventLog:
    """Bounded, byte-deterministic ring buffer of :class:`Event`\\ s.

    Args:
        capacity: maximum retained events; the oldest is evicted when a
            new append would exceed it.  Eviction is exact — the buffer
            never holds more than ``capacity`` events, and
            :attr:`evicted` counts every drop.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[Event] = deque()
        self.evicted = 0
        self.total = 0  # events ever appended == next seq

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def append(self, event: Event) -> Event:
        """Record one event; assigns its global ``seq``; returns it."""
        event.seq = self.total
        self.total += 1
        self._events.append(event)
        if len(self._events) > self.capacity:
            self._events.popleft()
            self.evicted += 1
        return event

    def emit(
        self,
        time: float,
        subsystem: str,
        kind: str,
        labels: dict | None = None,
        **payload,
    ) -> Event:
        """Build and append one event in a single call."""
        return self.append(
            Event(
                time=time,
                subsystem=subsystem,
                kind=kind,
                labels=dict(labels or {}),
                payload=payload,
            )
        )

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> list[Event]:
        """Retained events, oldest first."""
        return list(self._events)

    def tail(self, n: int) -> list[Event]:
        """The most recent ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        return list(self._events)[-n:]

    def filter(
        self, subsystem: str | None = None, kind: str | None = None
    ) -> list[Event]:
        """Retained events matching the given subsystem and/or kind."""
        return [
            event
            for event in self._events
            if (subsystem is None or event.subsystem == subsystem)
            and (kind is None or event.kind == kind)
        ]

    def to_dicts(self) -> list[dict]:
        """Every retained event's wire form (RunReport ``events``)."""
        return [event.to_dict() for event in self._events]

    def lines(self) -> list[str]:
        """Each retained event as one stable-key-order JSON line."""
        return [event.line() for event in self._events]

    def write_jsonl(self, path: str, append: bool = False) -> int:
        """Write the retained events as JSONL; returns the line count."""
        with open(path, "a" if append else "w") as handle:
            for line in self.lines():
                handle.write(line + "\n")
        return len(self._events)

    def summary(self) -> dict:
        """JSON-ready posture: occupancy plus per-subsystem/kind counts."""
        by_subsystem: dict[str, int] = {}
        by_kind: dict[str, int] = {}
        for event in self._events:
            by_subsystem[event.subsystem] = (
                by_subsystem.get(event.subsystem, 0) + 1
            )
            key = f"{event.subsystem}/{event.kind}"
            by_kind[key] = by_kind.get(key, 0) + 1
        return {
            "capacity": self.capacity,
            "size": len(self._events),
            "evicted": self.evicted,
            "total": self.total,
            "by_subsystem": dict(sorted(by_subsystem.items())),
            "by_kind": dict(sorted(by_kind.items())),
        }


def event_from_wire(record: dict) -> Event:
    """Rebuild an :class:`Event` from one flat wire dict.

    Schema keys are lifted back into their fields; every other key
    lands in ``payload`` (the labels/payload split is not recoverable
    from the flat wire form, and nothing downstream needs it to be).
    """
    record = dict(record)
    kind = record.pop("kind", record.pop("event", ""))
    record.pop("event", None)
    return Event(
        time=float(record.pop("time", 0.0)),
        subsystem=record.pop("subsystem", ""),
        kind=kind,
        payload=record,
    )


def read_events_jsonl(path: str) -> list[Event]:
    """Parse a JSONL event stream back into :class:`Event` records."""
    events: list[Event] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_wire(json.loads(line)))
    return events
