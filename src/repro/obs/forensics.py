"""Regression forensics: deterministic diffing of perf artifacts.

``repro bench-gate`` tells you *that* a scalar regressed; this module
tells you *why*.  It decomposes the difference between two scalar bags
— perf-database entries, RunReports, profiler summaries — into named
:class:`Contribution` records grouped by what kind of quantity moved
(op count, phase seconds, critical-path seconds, wire bytes,
makespan), sorted largest absolute delta first.  The output is a pure
function of its inputs (stable sort keys, no clocks, no randomness),
so a failing gate prints the same diagnosis on every host.

Everything here is plain dict arithmetic; the module imports nothing
from the rest of the package so reports saved by older versions (or a
different checkout) diff fine.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

__all__ = [
    "Contribution",
    "ReportDiff",
    "classify_scalar",
    "diff_reports",
    "diff_scalar_maps",
    "explain_failures",
]

#: scalar-name prefix -> contribution group
_PREFIX_GROUPS = (
    ("ops.", "op"),
    ("phase.", "phase"),
    ("critical.", "critical"),
    ("wire.", "wire"),
    ("fleet.", "fleet"),
    ("canary.", "fleet"),
)


def classify_scalar(name: str) -> str:
    """Contribution group of a scalar name.

    ``ops.*`` -> ``op``, ``phase.*`` -> ``phase``, ``critical.*`` ->
    ``critical``, byte/message totals -> ``wire``, makespans ->
    ``makespan``, anything else -> ``other``.
    """
    for prefix, group in _PREFIX_GROUPS:
        if name.startswith(prefix):
            return group
    if "makespan" in name:
        return "makespan"
    if "bytes" in name or name == "messages" or name.endswith(".messages"):
        return "wire"
    return "other"


@dataclass(frozen=True)
class Contribution:
    """One named quantity's movement between baseline and current."""

    name: str
    group: str
    baseline: float
    value: float

    @property
    def delta(self) -> float:
        """Signed change (current minus baseline)."""
        return self.value - self.baseline

    @property
    def rel(self) -> float:
        """Relative change; 0.0 when the baseline is zero."""
        if self.baseline == 0.0:
            return 0.0
        return self.delta / self.baseline

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "group": self.group,
            "baseline": self.baseline,
            "value": self.value,
            "delta": self.delta,
            "rel": self.rel,
        }

    def render(self) -> str:
        """One diagnostic line (``grew``/``shrank`` + magnitudes)."""
        verb = "grew" if self.delta > 0 else "shrank"
        line = (
            f"{self.name} [{self.group}]: {self.baseline:g} -> "
            f"{self.value:g} ({verb} {abs(self.delta):g}"
        )
        if self.baseline != 0.0:
            line += f", {self.rel:+.1%}"
        return line + ")"


def diff_scalar_maps(
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    include_zero: bool = False,
) -> list[Contribution]:
    """Diff two flat ``name -> value`` maps.

    Names present on only one side diff against 0.0 (an op appearing
    or vanishing is itself a finding).  Sorted by absolute delta
    descending, then name — a total, deterministic order.
    """
    names = sorted(set(baseline) | set(current))
    contributions = [
        Contribution(
            name=name,
            group=classify_scalar(name),
            baseline=float(baseline.get(name, 0.0)),
            value=float(current.get(name, 0.0)),
        )
        for name in names
    ]
    if not include_zero:
        contributions = [c for c in contributions if c.delta != 0.0]
    contributions.sort(key=lambda c: (-abs(c.delta), c.name))
    return contributions


def _entry_scalars(entry) -> dict[str, float]:
    """Flat scalar values of a PerfEntry-shaped object (duck-typed)."""
    scalars = entry.scalars if hasattr(entry, "scalars") else entry
    flat = {}
    for name, scalar in scalars.items():
        flat[name] = float(
            scalar.value if hasattr(scalar, "value") else scalar
        )
    return flat


def explain_failures(baseline_entry, current_entry, failing: set[str]
                     ) -> list[str]:
    """Diagnose a failing gate scenario.

    Args:
        baseline_entry: the latest prior :class:`PerfEntry` (or any
            object with a ``scalars`` mapping).
        current_entry: the freshly measured entry.
        failing: scalar names the gate flagged.

    Returns:
        Text lines: a headline per failing scalar, then the full
        contribution breakdown grouped with the guilty group first —
        so a ``sim_makespan`` regression immediately names the op and
        phase scalars that moved with it.
    """
    contributions = diff_scalar_maps(
        _entry_scalars(baseline_entry), _entry_scalars(current_entry)
    )
    lines = []
    for name in sorted(failing):
        hit = next((c for c in contributions if c.name == name), None)
        if hit is None:
            lines.append(f"{name}: flagged but unchanged vs latest baseline")
        else:
            lines.append(hit.render())
    if not contributions:
        lines.append(
            "no scalar moved vs the latest baseline entry "
            "(regression is against an older window median)"
        )
        return lines
    lines.append("contributions (largest first):")
    for contribution in contributions:
        lines.append("  " + contribution.render())
    return lines


@dataclass
class ReportDiff:
    """Structured diff of two RunReports, one section per group."""

    makespan: Contribution
    sections: dict

    @property
    def regressed(self) -> bool:
        """True when the current makespan grew."""
        return self.makespan.delta > 0

    def to_dict(self) -> dict:
        return {
            "makespan": self.makespan.to_dict(),
            "sections": {
                name: [c.to_dict() for c in rows]
                for name, rows in sorted(self.sections.items())
            },
        }

    def lines(self, top: int = 8) -> list[str]:
        """Human-readable diagnosis, ``top`` rows per section."""
        out = [self.makespan.render()]
        for name, rows in sorted(self.sections.items()):
            if not rows:
                continue
            out.append(f"{name}:")
            for contribution in rows[:top]:
                out.append("  " + contribution.render())
            if len(rows) > top:
                out.append(f"  ... {len(rows) - top} more")
        return out


def _get(report, key, default):
    """Field access working on RunReport objects and raw dicts."""
    if isinstance(report, Mapping):
        return report.get(key, default)
    return getattr(report, key, default)


def _profile_map(profile: Mapping) -> dict[str, float]:
    flat = {}
    for op, row in (profile.get("ops") or {}).items():
        flat[f"ops.{op}.count"] = float(row.get("count", 0))
        flat[f"ops.{op}.powmods"] = float(row.get("powmods", 0))
    for phase, ops in (profile.get("phases") or {}).items():
        for op, row in ops.items():
            flat[f"phase.{phase}.{op}.count"] = float(row.get("count", 0))
    return flat


def _wire_map(channels: Mapping) -> dict[str, float]:
    flat = {}
    for direction, row in (channels.get("directions") or {}).items():
        flat[f"wire.{direction}.bytes"] = float(row.get("bytes", 0))
        flat[f"wire.{direction}.messages"] = float(row.get("messages", 0))
    return flat


def _critical_map(section: Mapping) -> dict[str, float]:
    flat = {}
    for name, seconds in (section.get("by_resource") or {}).items():
        flat[f"critical.{name}"] = float(seconds)
    if section:
        flat["critical.wait"] = float(section.get("wait_seconds", 0.0))
    return flat


def diff_reports(baseline, current) -> ReportDiff:
    """Decompose a makespan change between two RunReports.

    Accepts :class:`~repro.obs.report.RunReport` objects or the raw
    dicts ``RunReport.to_dict()``/``json.load`` produce.  Sections:

    * ``phases`` — per-phase busy seconds (Tables 1–2 shape),
    * ``ops`` / ``profile phases`` — hot-path profiler counts, when
      both runs were profiled,
    * ``wire`` — per-direction bytes and message counts,
    * ``critical`` — per-resource critical-path seconds plus path wait
      time (RunReport v4), the line that says which lane the makespan
      delta actually lives on.
    """
    makespan = Contribution(
        name="makespan",
        group="makespan",
        baseline=float(_get(baseline, "makespan", 0.0)),
        value=float(_get(current, "makespan", 0.0)),
    )
    sections = {
        "phases": diff_scalar_maps(
            _get(baseline, "phases", {}) or {},
            _get(current, "phases", {}) or {},
        ),
        "profile": diff_scalar_maps(
            _profile_map(_get(baseline, "profile", {}) or {}),
            _profile_map(_get(current, "profile", {}) or {}),
        ),
        "wire": diff_scalar_maps(
            _wire_map(_get(baseline, "channels", {}) or {}),
            _wire_map(_get(current, "channels", {}) or {}),
        ),
        "critical": diff_scalar_maps(
            _critical_map(_get(baseline, "critical_path", {}) or {}),
            _critical_map(_get(current, "critical_path", {}) or {}),
        ),
    }
    return ReportDiff(makespan=makespan, sections=sections)
