"""Incident post-mortem bundles: one artifact per failure, replayable.

When something goes wrong — a :class:`TrainingInterrupted` crash, a
survivable-fault recovery, an SLO burn episode, a canary rollback, a
bench-gate regression — the flight recorder snapshots an
:class:`IncidentBundle`: a versioned, byte-deterministic JSON artifact
correlating every diagnostic surface at the moment of failure:

======================  ================================================
field                   contents
======================  ================================================
``kind``                the trigger (one of :data:`TRIGGERS`)
``label``               free-form identity (candidate version, rule...)
``time``                simulated-clock seconds of the trigger
``events``              event-log tail (flat wire dicts, oldest first)
``metrics``             :meth:`MetricsRegistry.snapshot` at the trigger
``profile``             hot-path profiler counters, when profiled
``critical_path``       the in-flight section's critical path, when a
                        task graph was collected
``wire_ledger``         per-message-type bytes/messages of the channel
``fault_plan``          ``{"plan": FaultPlan.to_dict(), "describe"}``
``open_alerts``         the alert engine's currently-open episodes
``context``             trigger-specific JSON (checkpoint, verdicts...)
======================  ================================================

Every field is optional and empty by default, so any subsystem can
snapshot with whatever it holds.  Bundles carry a schema ``version``
(:data:`BUNDLE_VERSION`) and serialize with sorted keys, so the same
failure reproduces the same bytes — :meth:`IncidentBundle.fingerprint`
is a stable content hash two reruns can be diffed by.

:class:`IncidentStore` is the on-disk directory of bundles behind
``repro incidents list|show|diff``; file names are deterministic
(``incident-<seq>-<kind>.json`` in creation order).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

__all__ = [
    "BUNDLE_VERSION",
    "IncidentBundle",
    "IncidentStore",
    "TRIGGERS",
    "diff_bundles",
    "snapshot_incident",
]

#: incident bundle schema version
BUNDLE_VERSION = 1

#: the recognised trigger kinds
TRIGGERS = (
    "training_interrupted",
    "fault_recovery",
    "slo_burn",
    "canary_rollback",
    "bench_regression",
)


@dataclass
class IncidentBundle:
    """One correlated diagnostic snapshot (see the module table)."""

    kind: str
    label: str = ""
    time: float = 0.0
    events: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    profile: dict = field(default_factory=dict)
    critical_path: dict = field(default_factory=dict)
    wire_ledger: dict = field(default_factory=dict)
    fault_plan: dict = field(default_factory=dict)
    open_alerts: list = field(default_factory=list)
    context: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in TRIGGERS:
            raise ValueError(
                f"unknown incident kind {self.kind!r}; expected one of "
                f"{', '.join(TRIGGERS)}"
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": BUNDLE_VERSION,
            "kind": self.kind,
            "label": self.label,
            "time": self.time,
            "events": list(self.events),
            "metrics": dict(self.metrics),
            "profile": dict(self.profile),
            "critical_path": dict(self.critical_path),
            "wire_ledger": dict(self.wire_ledger),
            "fault_plan": dict(self.fault_plan),
            "open_alerts": list(self.open_alerts),
            "context": dict(self.context),
        }

    def to_json(self, indent: int | None = 1) -> str:
        """Byte-deterministic serialization (sorted keys)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "IncidentBundle":
        with open(path) as handle:
            data = json.load(handle)
        version = data.pop("version", 1)
        if version > BUNDLE_VERSION:
            raise ValueError(
                f"bundle {path} has schema version {version}; this build "
                f"reads up to {BUNDLE_VERSION}"
            )
        return cls(**data)

    def fingerprint(self) -> str:
        """Stable content hash (sha256 of the compact serialization)."""
        compact = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(compact.encode()).hexdigest()[:16]

    def headline(self) -> str:
        """One-line summary for ``repro incidents list``."""
        label = f" [{self.label}]" if self.label else ""
        return (
            f"{self.kind}{label} at t={self.time:.3f}s — "
            f"{len(self.events)} events, {len(self.open_alerts)} open "
            f"alert(s), fingerprint {self.fingerprint()}"
        )


def snapshot_incident(
    kind: str,
    label: str = "",
    time: float = 0.0,
    event_log=None,
    registry=None,
    profiler=None,
    channel=None,
    fault_plan=None,
    alerts=None,
    critical_path: dict | None = None,
    context: dict | None = None,
    tail: int = 256,
) -> IncidentBundle:
    """Assemble a bundle from whatever diagnostic surfaces exist.

    Args:
        kind: trigger (one of :data:`TRIGGERS`).
        label / time: identity and simulated trigger time.
        event_log: an :class:`~repro.obs.events.EventLog`; its last
            ``tail`` events are captured.
        registry: a :class:`~repro.obs.metrics.MetricsRegistry`; its
            full snapshot is captured.
        profiler: a hot-path profiler (``summary()`` duck-typed).
        channel: a channel exposing ``wire_ledger()`` (the recording
            channel, or a reliable wrapper delegating to it).
        fault_plan: a :class:`~repro.fed.faults.FaultPlan`.
        alerts: an :class:`~repro.obs.alerts.AlertEngine`; its open
            episodes are captured.
        critical_path: a precomputed critical-path section dict.
        context: trigger-specific extras (checkpoint names, verdicts).
        tail: maximum events captured from the log.
    """
    return IncidentBundle(
        kind=kind,
        label=label,
        time=time,
        events=(
            [event.to_dict() for event in event_log.tail(tail)]
            if event_log is not None
            else []
        ),
        metrics=registry.snapshot() if registry is not None else {},
        profile=profiler.summary() if profiler is not None else {},
        critical_path=dict(critical_path or {}),
        wire_ledger=channel.wire_ledger() if channel is not None else {},
        fault_plan=(
            {"plan": fault_plan.to_dict(), "describe": fault_plan.describe()}
            if fault_plan is not None
            else {}
        ),
        open_alerts=alerts.open_alerts() if alerts is not None else [],
        context=dict(context or {}),
    )


class IncidentStore:
    """A directory of bundles with deterministic, ordered file names."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def paths(self) -> list[str]:
        """Stored bundle paths, in creation (= name) order."""
        names = sorted(
            name
            for name in os.listdir(self.directory)
            if name.startswith("incident-") and name.endswith(".json")
        )
        return [os.path.join(self.directory, name) for name in names]

    def save(self, bundle: IncidentBundle) -> str:
        """Persist one bundle; returns its path.

        The sequence prefix continues from the files already present,
        so a fresh directory reproduces identical names run over run.
        """
        seq = len(self.paths()) + 1
        name = f"incident-{seq:04d}-{bundle.kind.replace('_', '-')}.json"
        path = os.path.join(self.directory, name)
        bundle.save(path)
        return path

    def load(self, ref: str | int) -> IncidentBundle:
        """Load by 1-based index, file name, or path."""
        paths = self.paths()
        if isinstance(ref, int) or (isinstance(ref, str) and ref.isdigit()):
            index = int(ref)
            if not 1 <= index <= len(paths):
                raise LookupError(
                    f"incident index {index} out of range 1..{len(paths)}"
                )
            return IncidentBundle.load(paths[index - 1])
        candidate = os.path.join(self.directory, str(ref))
        if os.path.exists(candidate):
            return IncidentBundle.load(candidate)
        return IncidentBundle.load(str(ref))

    def rows(self) -> list[dict]:
        """One summary row per stored bundle (``repro incidents list``)."""
        rows = []
        for path in self.paths():
            bundle = IncidentBundle.load(path)
            rows.append(
                {
                    "file": os.path.basename(path),
                    "kind": bundle.kind,
                    "label": bundle.label,
                    "time": bundle.time,
                    "events": len(bundle.events),
                    "open_alerts": len(bundle.open_alerts),
                    "fingerprint": bundle.fingerprint(),
                }
            )
        return rows


def _numeric_items(mapping: dict) -> dict:
    return {
        key: float(value)
        for key, value in mapping.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def diff_bundles(a: IncidentBundle, b: IncidentBundle) -> list[str]:
    """Human-readable field-by-field diff (``repro incidents diff``)."""
    lines: list[str] = []
    if a.kind != b.kind:
        lines.append(f"kind: {a.kind} -> {b.kind}")
    if a.label != b.label:
        lines.append(f"label: {a.label!r} -> {b.label!r}")
    if a.time != b.time:
        lines.append(f"time: {a.time:.6f} -> {b.time:.6f}")

    counters_a = _numeric_items(a.metrics.get("counters", {}))
    counters_b = _numeric_items(b.metrics.get("counters", {}))
    for name in sorted(set(counters_a) | set(counters_b)):
        left = counters_a.get(name, 0.0)
        right = counters_b.get(name, 0.0)
        if left != right:
            lines.append(f"metrics.counters.{name}: {left:g} -> {right:g}")

    def kind_counts(bundle: IncidentBundle) -> dict:
        counts: dict[str, int] = {}
        for event in bundle.events:
            key = f"{event.get('subsystem', '')}/{event.get('kind', '')}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    kinds_a, kinds_b = kind_counts(a), kind_counts(b)
    for name in sorted(set(kinds_a) | set(kinds_b)):
        left = kinds_a.get(name, 0)
        right = kinds_b.get(name, 0)
        if left != right:
            lines.append(f"events.{name}: {left} -> {right}")

    open_a = {episode.get("rule", "") for episode in a.open_alerts}
    open_b = {episode.get("rule", "") for episode in b.open_alerts}
    for rule in sorted(open_a - open_b):
        lines.append(f"open_alerts: -{rule}")
    for rule in sorted(open_b - open_a):
        lines.append(f"open_alerts: +{rule}")

    context_a = _numeric_items(a.context)
    context_b = _numeric_items(b.context)
    for name in sorted(set(context_a) | set(context_b)):
        left = context_a.get(name)
        right = context_b.get(name)
        if left != right:
            lines.append(f"context.{name}: {left} -> {right}")

    if not lines:
        lines.append("bundles are identical in every compared field")
    return lines
