"""repro.obs — unified tracing, metrics and op-count accounting.

The observability layer the paper's evaluation is written in: a
process-wide :class:`MetricsRegistry` every subsystem reports into
(crypto op counts, channel traffic, serve counters), a span-based
:class:`Tracer` whose output — real-clocked or simulated — exports to
Chrome trace-event JSON openable in Perfetto (Figures 4–6 as actual
artifacts), a :class:`RunReport` bundling metrics + phase breakdown +
per-party/per-channel totals, and a golden op-count regression guard
(:mod:`repro.obs.golden`) that pins Enc/Dec/HAdd/SMul/bytes at a fixed
shape so silent cost regressions fail tier-1.

Zero third-party dependencies; the submodules import nothing from the
rest of the package (components are duck-typed), so ``crypto``/``fed``/
``serve`` can all report here without cycles.
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    band_rule,
    burn_rate_rule,
    rate_rule,
    threshold_rule,
)
from repro.obs.critical import (
    CriticalPath,
    PathSegment,
    compute_slack,
    critical_gantt,
    critical_path,
    critical_path_section,
)
from repro.obs.forensics import (
    Contribution,
    ReportDiff,
    diff_reports,
    diff_scalar_maps,
    explain_failures,
)
from repro.obs.events import Event, EventLog, event_from_wire, read_events_jsonl
from repro.obs.incident import (
    BUNDLE_VERSION,
    IncidentBundle,
    IncidentStore,
    diff_bundles,
    snapshot_incident,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    global_registry,
)
from repro.obs.profiler import HotPathProfiler
from repro.obs.report import RunReport, channel_report
from repro.obs.trace_export import (
    chrome_trace,
    chrome_trace_events,
    dumps_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import Span, Tracer, spans_from_tasks
from repro.obs.whatif import WhatIfResult, break_even, parse_speedups, run_whatif

__all__ = [
    "AlertEngine",
    "AlertRule",
    "BUNDLE_VERSION",
    "COUNT_BUCKETS",
    "Contribution",
    "CriticalPath",
    "Event",
    "EventLog",
    "Histogram",
    "HotPathProfiler",
    "IncidentBundle",
    "IncidentStore",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "PathSegment",
    "ReportDiff",
    "RunReport",
    "Span",
    "Tracer",
    "WhatIfResult",
    "band_rule",
    "break_even",
    "burn_rate_rule",
    "channel_report",
    "chrome_trace",
    "chrome_trace_events",
    "compute_slack",
    "critical_gantt",
    "critical_path",
    "critical_path_section",
    "diff_bundles",
    "diff_reports",
    "diff_scalar_maps",
    "dumps_chrome_trace",
    "event_from_wire",
    "explain_failures",
    "global_registry",
    "parse_speedups",
    "rate_rule",
    "read_events_jsonl",
    "run_whatif",
    "snapshot_incident",
    "spans_from_tasks",
    "threshold_rule",
    "write_chrome_trace",
]
