"""Process-wide metrics: counters, gauges and streaming histograms.

One :class:`MetricsRegistry` is the sink every subsystem reports into:
the crypto layer counts Enc/Dec/HAdd/SMul (the unit operations the
paper's cost model prices, §5), the channel counts messages and bytes
per direction and type (§6.2's resource-utilization input), and the
serving runtime counts requests, round trips and latency quantiles.

Everything here is zero-dependency and fed *deterministic* quantities
(operation counts, simulated seconds, wire bytes), so snapshots are
bit-repeatable across runs — the registry is part of the repository's
exact-repeatability contract, not an approximate monitoring sidecar.
Quantiles are exact (computed from retained samples), not sketched:
bench-scale sample counts make that the simpler and more honest choice.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_MAX_SAMPLES",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "global_registry",
]

#: default latency bucket upper bounds, in simulated seconds
LATENCY_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: default occupancy/depth bucket upper bounds (counts)
COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


#: default retained-sample cap; high enough that every test/bench
#: workload in this repository stays below it (quantiles stay exact)
DEFAULT_MAX_SAMPLES = 65_536


@dataclass
class Histogram:
    """Fixed-bucket histogram with exact quantiles up to a sample cap.

    Attributes:
        bounds: ascending bucket upper bounds; one implicit overflow
            bucket sits above the last bound.
        max_samples: retained-sample bound.  Below it every sample is
            kept and quantiles are exact.  At the cap the retained list
            is decimated deterministically (every other retained sample
            is dropped and the keep-stride doubles), so memory stays
            bounded under sustained serve load while quantiles degrade
            to a uniform 1-in-stride subsample.  ``count``, ``mean``
            and ``max`` are tracked exactly forever, and the whole
            scheme is a pure function of the observation sequence —
            bit-repeatable, per the repository's determinism contract.
    """

    bounds: tuple[float, ...] = LATENCY_BUCKETS
    counts: list[int] = field(default_factory=list)
    samples: list[float] = field(default_factory=list)
    max_samples: int = DEFAULT_MAX_SAMPLES

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("bucket bounds must be ascending")
        if self.max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        self._stride = 1
        self._observed = len(self.samples)
        self._sum = float(sum(self.samples))
        self._max = max(self.samples) if self.samples else 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        bucket = len(self.bounds)
        for k, bound in enumerate(self.bounds):
            if value <= bound:
                bucket = k
                break
        self.counts[bucket] += 1
        value = float(value)
        index = self._observed
        self._observed += 1
        self._sum += value
        if index == 0 or value > self._max:
            self._max = value
        if index % self._stride == 0:
            self.samples.append(value)
            if len(self.samples) >= self.max_samples:
                # Keep arrivals with index % (2 * stride) == 0: the
                # even positions of the retained list, in order.
                self.samples = self.samples[::2]
                self._stride *= 2

    @property
    def count(self) -> int:
        """Number of observed samples (exact, unaffected by the cap)."""
        return self._observed

    @property
    def stride(self) -> int:
        """Current keep-stride (1 = every sample retained, exact)."""
        return self._stride

    def mean(self) -> float:
        """Arithmetic mean over all observations (0.0 when empty)."""
        if not self._observed:
            return 0.0
        return self._sum / self._observed

    def quantile(self, q: float) -> float:
        """Nearest-rank q-quantile over the retained samples.

        Exact while fewer than ``max_samples`` values have been
        observed; a deterministic uniform subsample beyond that.
        Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def snapshot(self) -> dict:
        """JSON-ready summary: count, mean, p50/p95/p99, buckets."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self._max if self._observed else 0.0,
            "buckets": {
                **{f"le_{bound:g}": self.counts[k] for k, bound in enumerate(self.bounds)},
                "overflow": self.counts[-1],
            },
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Names are flat dotted strings (``"crypto.enc"``,
    ``"channel.bytes"``, ``"serve.requests"``); the dots are a naming
    convention, not a hierarchy.  All accessors create on first use, so
    reporting code never has to pre-register anything.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> int:
        """Bump a monotonic counter; returns the new value."""
        value = self._counters.get(name, 0) + amount
        self._counters[name] = value
        return value

    def get(self, name: str) -> int:
        """Read a counter (0 when never bumped)."""
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, int]:
        """Counters whose name starts with ``prefix``, prefix stripped."""
        return {
            name[len(prefix):]: value
            for name, value in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge."""
        self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Read a gauge (``default`` when never set)."""
        return self._gauges.get(name, default)

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def histogram(
        self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        """Get-or-create a histogram (``bounds`` apply on creation only)."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(bounds)
        return self._histograms[name]

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a (get-or-create) histogram."""
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-ready view of everything, keys sorted (repeatable)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = 1) -> str:
        """Serialized :meth:`snapshot` (sorted keys, repeatable bytes)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every counter, gauge and histogram."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: the process-wide default sink; components report here unless handed
#: an explicit registry (tests create fresh ones for isolation)
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL
