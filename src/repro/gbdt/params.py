"""Hyper-parameters shared by every GBDT trainer in the repository.

Defaults follow the paper's experimental protocol (§6.1): ``T = 20``
trees, learning rate ``eta = 0.1``, ``L = 7`` tree layers, and
``s = 20`` histogram bins per feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GBDTParams"]


@dataclass
class GBDTParams:
    """Hyper-parameters of histogram-based gradient boosting.

    Attributes:
        n_trees: number of boosting rounds ``T``.
        learning_rate: shrinkage ``eta`` applied to every leaf weight.
        n_layers: number of tree layers ``L``; a tree with ``L`` layers
            has depth ``L - 1`` and at most ``2**(L-1)`` leaves.
        n_bins: histogram bins per feature ``s``.
        reg_lambda: L2 regularization ``lambda`` on leaf weights.
        gamma: minimum loss reduction ``gamma`` required to split.
        min_child_weight: minimum hessian sum in a child.
        min_node_instances: minimum instances on a splittable node.
        objective: ``"logistic"`` for binary classification or
            ``"squared"`` for regression.
        base_score: initial prediction margin before any tree.
        seed: RNG seed for any stochastic component.
    """

    n_trees: int = 20
    learning_rate: float = 0.1
    n_layers: int = 7
    n_bins: int = 20
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_child_weight: float = 1e-5
    min_node_instances: int = 2
    objective: str = "logistic"
    base_score: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if self.n_layers < 2:
            raise ValueError("n_layers must be >= 2 (root plus one split)")
        if not 0 < self.learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if self.n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        if self.reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")
        if self.objective not in ("logistic", "squared"):
            raise ValueError(f"unknown objective {self.objective!r}")

    @property
    def max_depth(self) -> int:
        """Maximum tree depth (root at depth 0)."""
        return self.n_layers - 1

    @property
    def max_leaves(self) -> int:
        """Upper bound on leaves of one tree."""
        return 2 ** self.max_depth

    def replace(self, **overrides) -> "GBDTParams":
        """Return a copy with some fields overridden."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)
