"""Dataset binning: raw feature matrices -> small integer bin codes.

All trainers (plaintext and federated) operate on a
:class:`BinnedDataset`: an ``N x D`` matrix of ``uint16`` bin codes plus
the per-feature cut points needed to translate a chosen histogram bin
back into a real-valued split threshold.

Sparse inputs (``scipy.sparse``) are densified *after* binning into the
compact code matrix; at the dataset sizes this reproduction runs
(documented in EXPERIMENTS.md) that is the memory-optimal layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

from repro.gbdt.quantile import propose_cut_points

__all__ = ["BinnedDataset", "bin_dataset", "bin_column"]


def bin_column(values: np.ndarray, cut_points: np.ndarray) -> np.ndarray:
    """Map raw values of one feature to bin codes.

    Bin ``k`` holds values in ``(cut[k-1], cut[k]]`` with the
    conventional open top bin, i.e. ``code = searchsorted(cuts, v,
    side="left")`` on ascending cuts.
    """
    return np.searchsorted(cut_points, values, side="left").astype(np.uint16)


@dataclass
class BinnedDataset:
    """A feature matrix quantized to per-feature histogram bins.

    Attributes:
        codes: ``(N, D)`` uint16 matrix of bin indices.
        cut_points: list of ``D`` ascending arrays; feature ``j`` has
            ``len(cut_points[j]) + 1`` occupied bins.
        n_bins: nominal bin budget ``s`` used at construction.
        feature_names: optional column names.
    """

    codes: np.ndarray
    cut_points: list[np.ndarray]
    n_bins: int
    feature_names: list[str] | None = None

    def __post_init__(self) -> None:
        if self.codes.ndim != 2:
            raise ValueError("codes must be 2-D")
        if self.codes.shape[1] != len(self.cut_points):
            raise ValueError("cut_points must have one entry per feature")

    @property
    def n_instances(self) -> int:
        """Number of rows ``N``."""
        return int(self.codes.shape[0])

    @property
    def n_features(self) -> int:
        """Number of columns ``D``."""
        return int(self.codes.shape[1])

    def bins_for_feature(self, feature: int) -> int:
        """Number of occupied bins for a feature."""
        return len(self.cut_points[feature]) + 1

    def threshold_for(self, feature: int, bin_index: int) -> float:
        """Real-valued split threshold for "go left if code <= bin_index".

        Returns the upper cut of the bin, or ``+inf`` for the top bin
        (which never forms a valid split).
        """
        cuts = self.cut_points[feature]
        if bin_index < len(cuts):
            return float(cuts[bin_index])
        return float("inf")

    def subset_features(self, feature_indices: np.ndarray) -> "BinnedDataset":
        """Vertical slice: the view a single party holds of the data."""
        feature_indices = np.asarray(feature_indices, dtype=np.int64)
        names = None
        if self.feature_names is not None:
            names = [self.feature_names[j] for j in feature_indices]
        return BinnedDataset(
            codes=self.codes[:, feature_indices],
            cut_points=[self.cut_points[j] for j in feature_indices],
            n_bins=self.n_bins,
            feature_names=names,
        )

    def subset_instances(self, row_indices: np.ndarray) -> "BinnedDataset":
        """Horizontal slice: the shard a single worker holds."""
        return BinnedDataset(
            codes=self.codes[np.asarray(row_indices, dtype=np.int64), :],
            cut_points=self.cut_points,
            n_bins=self.n_bins,
            feature_names=self.feature_names,
        )

    def nnz_per_row(self) -> float:
        """Average count of non-zero-bin codes per row (``d`` in the paper).

        Here "non-zero" means "not in the bin that holds raw value 0",
        approximating the sparse-feature work per instance.
        """
        zero_codes = np.array(
            [bin_column(np.zeros(1), cuts)[0] for cuts in self.cut_points],
            dtype=np.uint16,
        )
        nonzero = self.codes != zero_codes[None, :]
        return float(nonzero.sum() / max(1, self.n_instances))


def bin_dataset(
    features,
    n_bins: int,
    feature_names: list[str] | None = None,
) -> BinnedDataset:
    """Quantize a dense or sparse feature matrix.

    Args:
        features: ``(N, D)`` ``numpy.ndarray`` or ``scipy.sparse`` matrix.
        n_bins: histogram bin budget ``s`` per feature.
        feature_names: optional column names carried through.
    """
    if sp.issparse(features):
        return _bin_sparse(features.tocsc(), n_bins, feature_names)
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be 2-D")
    n, d = features.shape
    codes = np.empty((n, d), dtype=np.uint16)
    cut_points = []
    for j in range(d):
        cuts = propose_cut_points(features[:, j], n_bins)
        cut_points.append(cuts)
        codes[:, j] = bin_column(features[:, j], cuts)
    return BinnedDataset(codes, cut_points, n_bins, feature_names)


def _bin_sparse(
    features: sp.csc_matrix, n_bins: int, feature_names: list[str] | None
) -> BinnedDataset:
    """Bin a CSC matrix column by column, treating implicit zeros as 0.0."""
    n, d = features.shape
    codes = np.empty((n, d), dtype=np.uint16)
    cut_points = []
    for j in range(d):
        start, end = features.indptr[j], features.indptr[j + 1]
        rows = features.indices[start:end]
        data = features.data[start:end]
        # Quantiles must reflect the full column including implicit zeros.
        column = np.zeros(n, dtype=np.float64)
        column[rows] = data
        cuts = propose_cut_points(column, n_bins)
        cut_points.append(cuts)
        zero_code = bin_column(np.zeros(1), cuts)[0]
        codes[:, j] = zero_code
        if rows.size:
            codes[rows, j] = bin_column(data, cuts)
    return BinnedDataset(codes, cut_points, n_bins, feature_names)
