"""Twice-differentiable losses with gradient/hessian bounds.

The bounds matter beyond optimization: polynomial histogram packing
(§5.2) requires every histogram bin to be *lower bounded* so Party A
can shift it into the non-negative range.  Logistic loss gradients are
bounded in ``[-1, 1]`` and hessians in ``[0, 0.25]`` — exactly the
property the paper relies on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "LogisticLoss", "SquaredLoss", "get_loss", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class Loss:
    """Interface of a boosting loss over raw margins ``y_hat``."""

    name: str = "abstract"

    def gradients(
        self, labels: np.ndarray, predictions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """First and second derivatives w.r.t. the margin."""
        raise NotImplementedError

    def loss(self, labels: np.ndarray, predictions: np.ndarray) -> float:
        """Mean loss value."""
        raise NotImplementedError

    def transform(self, predictions: np.ndarray) -> np.ndarray:
        """Map raw margins to the output scale (e.g. probabilities)."""
        raise NotImplementedError

    def base_score(self, labels: np.ndarray) -> float:
        """A sensible constant initial margin for this loss."""
        raise NotImplementedError

    @property
    def gradient_bound(self) -> float:
        """``Bound`` such that ``|g_i| <= Bound`` for every instance."""
        raise NotImplementedError

    @property
    def hessian_bound(self) -> float:
        """``Bound`` such that ``0 <= h_i <= Bound`` for every instance."""
        raise NotImplementedError


class LogisticLoss(Loss):
    """Binary cross-entropy over logits (paper's classification loss)."""

    name = "logistic"

    def gradients(self, labels, predictions):
        prob = sigmoid(predictions)
        grad = prob - labels
        hess = prob * (1.0 - prob)
        return grad, hess

    def loss(self, labels, predictions):
        prob = np.clip(sigmoid(predictions), 1e-15, 1.0 - 1e-15)
        return float(
            -np.mean(labels * np.log(prob) + (1.0 - labels) * np.log(1.0 - prob))
        )

    def transform(self, predictions):
        return sigmoid(predictions)

    def base_score(self, labels):
        mean = float(np.clip(np.mean(labels), 1e-6, 1.0 - 1e-6))
        return float(np.log(mean / (1.0 - mean)))

    @property
    def gradient_bound(self) -> float:
        return 1.0

    @property
    def hessian_bound(self) -> float:
        return 0.25


class SquaredLoss(Loss):
    """Squared error ``(y - y_hat)^2 / 2`` for regression tasks.

    The gradient is unbounded in general; :attr:`gradient_bound` assumes
    labels were scaled into ``[0, 1]`` (documented requirement), giving
    an effective bound once predictions saturate. Callers that need
    packing with unbounded targets must clip gradients, as the paper
    notes ("we can also apply an L1 regularization to bound the
    gradients").
    """

    name = "squared"

    #: assumed label range after user-side normalization
    label_range: float = 1.0

    def gradients(self, labels, predictions):
        grad = predictions - labels
        hess = np.ones_like(labels, dtype=np.float64)
        return grad, hess

    def loss(self, labels, predictions):
        return float(0.5 * np.mean((labels - predictions) ** 2))

    def transform(self, predictions):
        return predictions

    def base_score(self, labels):
        return float(np.mean(labels))

    @property
    def gradient_bound(self) -> float:
        # |pred - y| bounded only if predictions stay near the label range;
        # boosted predictions with shrinkage remain within a few ranges.
        return 4.0 * self.label_range

    @property
    def hessian_bound(self) -> float:
        return 1.0


_LOSSES: dict[str, type[Loss]] = {
    LogisticLoss.name: LogisticLoss,
    SquaredLoss.name: SquaredLoss,
}


def get_loss(name: str) -> Loss:
    """Instantiate a loss by objective name.

    Raises:
        KeyError: for unknown objective names.
    """
    try:
        return _LOSSES[name]()
    except KeyError:
        raise KeyError(
            f"unknown objective {name!r}; known: {sorted(_LOSSES)}"
        ) from None
