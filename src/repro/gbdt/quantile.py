"""Candidate split proposal via quantile sketching.

GBDT proposes ``s`` candidate splits per feature from the percentiles
of the feature column (§2.1 and [29, 33, 42] of the paper).  We keep a
simple two-level design:

* :func:`propose_cut_points` — exact quantiles of a column, deduplicated;
* :class:`QuantileSketch` — a mergeable fixed-size sketch so each
  *worker* can summarize its shard and the scheduler can merge shard
  sketches into global cut points, mirroring the paper's
  scheduler-worker architecture.
"""

from __future__ import annotations

import numpy as np

__all__ = ["propose_cut_points", "QuantileSketch"]


def propose_cut_points(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Return at most ``n_bins - 1`` ascending cut points for one feature.

    Bin ``k`` receives values in ``(cut[k-1], cut[k]]``; the last bin is
    unbounded above. Constant columns yield an empty cut array (a
    single bin, never splittable).

    Args:
        values: 1-D array of raw feature values (may contain zeros for
            sparse features; zeros participate like any value).
        n_bins: target number of bins ``s``.
    """
    if values.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return np.empty(0, dtype=np.float64)
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    cuts = np.unique(np.quantile(finite, quantiles))
    # Drop cut points >= max so that the top bin is never empty.
    maximum = finite.max()
    cuts = cuts[cuts < maximum]
    return cuts.astype(np.float64)


class QuantileSketch:
    """A mergeable bounded-size quantile summary.

    Keeps a uniform subsample of up to ``capacity`` points per column
    (reservoir-free deterministic thinning: when over capacity, keep
    every k-th point of the sorted pool). This trades exactness for a
    mergeable, bounded-memory structure — the role GK/Moments sketches
    play in production systems, with far less machinery.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 8:
            raise ValueError("capacity must be >= 8")
        self.capacity = capacity
        self._points: np.ndarray = np.empty(0, dtype=np.float64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def update(self, values: np.ndarray) -> None:
        """Absorb a batch of values."""
        finite = np.asarray(values, dtype=np.float64)
        finite = finite[np.isfinite(finite)]
        if finite.size == 0:
            return
        self._count += int(finite.size)
        pool = np.concatenate([self._points, finite])
        pool.sort()
        if pool.size > self.capacity:
            stride = pool.size / self.capacity
            indices = np.minimum(
                (np.arange(self.capacity) * stride).astype(np.int64), pool.size - 1
            )
            pool = pool[indices]
        self._points = pool

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch into this one (worker -> scheduler)."""
        if other._points.size:
            self.update(other._points)
            # update() already added other's pooled size; fix the count to
            # reflect the true number of observations, not pool size.
            self._count += other._count - other._points.size

    def cut_points(self, n_bins: int) -> np.ndarray:
        """Propose cut points from the sketch contents."""
        if self._points.size == 0:
            return np.empty(0, dtype=np.float64)
        return propose_cut_points(self._points, n_bins)
