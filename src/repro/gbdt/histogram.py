"""Plaintext gradient histograms — the core GBDT data structure (§2.1).

A node's histogram accumulates, per ``(feature, bin)`` cell, the sums of
gradients and hessians (and instance counts) of the instances sitting
on that node.  Two classic optimizations are provided because every
trainer in this repository relies on them:

* vectorized construction via one flat ``bincount`` per statistic;
* the *histogram subtraction trick* — a sibling's histogram is the
  parent's minus the other child's (the paper lists this as a reason to
  process trees layer by layer, §7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gbdt.binning import BinnedDataset

__all__ = ["Histogram", "build_histogram"]


@dataclass
class Histogram:
    """Per-(feature, bin) gradient statistics for one tree node.

    Attributes:
        grad: ``(D, s)`` gradient sums.
        hess: ``(D, s)`` hessian sums.
        count: ``(D, s)`` instance counts.
    """

    grad: np.ndarray
    hess: np.ndarray
    count: np.ndarray

    def __post_init__(self) -> None:
        if not (self.grad.shape == self.hess.shape == self.count.shape):
            raise ValueError("grad, hess and count must share a shape")

    @property
    def n_features(self) -> int:
        """Number of features summarized."""
        return int(self.grad.shape[0])

    @property
    def n_bins(self) -> int:
        """Bin budget per feature."""
        return int(self.grad.shape[1])

    @property
    def total_grad(self) -> float:
        """Sum of gradients over the node (same for every feature row)."""
        return float(self.grad[0].sum()) if self.n_features else 0.0

    @property
    def total_hess(self) -> float:
        """Sum of hessians over the node."""
        return float(self.hess[0].sum()) if self.n_features else 0.0

    @property
    def total_count(self) -> int:
        """Number of instances on the node."""
        return int(self.count[0].sum()) if self.n_features else 0

    def _check_shape(self, other: "Histogram", op: str) -> None:
        if self.grad.shape != other.grad.shape:
            raise ValueError(
                f"cannot {op} histograms of different shapes: "
                f"{self.grad.shape} vs {other.grad.shape} — operands "
                "must cover the same (feature, bin) grid (broadcasting "
                "here would silently corrupt split statistics)"
            )

    def subtract(self, child: "Histogram") -> "Histogram":
        """Histogram subtraction: ``self - child`` gives the sibling."""
        self._check_shape(child, "subtract")
        return Histogram(
            self.grad - child.grad,
            self.hess - child.hess,
            self.count - child.count,
        )

    def merge(self, other: "Histogram") -> "Histogram":
        """Aggregate two partial histograms (worker-shard aggregation)."""
        self._check_shape(other, "merge")
        return Histogram(
            self.grad + other.grad,
            self.hess + other.hess,
            self.count + other.count,
        )

    def slice_features(self, start: int, stop: int) -> "Histogram":
        """Feature-range view used for per-worker aggregation ownership."""
        return Histogram(
            self.grad[start:stop], self.hess[start:stop], self.count[start:stop]
        )

    def copy(self) -> "Histogram":
        """Deep copy."""
        return Histogram(self.grad.copy(), self.hess.copy(), self.count.copy())

    @classmethod
    def zeros(cls, n_features: int, n_bins: int) -> "Histogram":
        """An empty histogram."""
        shape = (n_features, n_bins)
        return cls(
            np.zeros(shape, dtype=np.float64),
            np.zeros(shape, dtype=np.float64),
            np.zeros(shape, dtype=np.int64),
        )


def build_histogram(
    dataset: BinnedDataset,
    instance_indices: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
) -> Histogram:
    """Accumulate the histogram of a node over its instances.

    Uses a single flattened ``bincount`` per statistic: each matrix cell
    ``(i, j)`` contributes to flat cell ``j * s + code[i, j]``.

    Args:
        dataset: binned features (full matrix, all workers' rows).
        instance_indices: rows sitting on the target node.
        gradients / hessians: full-length statistic vectors indexed by row.
    """
    indices = np.asarray(instance_indices, dtype=np.int64)
    s = dataset.n_bins
    d = dataset.n_features
    if indices.size == 0:
        return Histogram.zeros(d, s)
    codes = dataset.codes[indices, :].astype(np.int64)
    flat = codes + np.arange(d, dtype=np.int64)[None, :] * s
    flat = flat.ravel()
    g = np.broadcast_to(gradients[indices][:, None], (indices.size, d)).ravel()
    h = np.broadcast_to(hessians[indices][:, None], (indices.size, d)).ravel()
    length = d * s
    grad = np.bincount(flat, weights=g, minlength=length)[:length].reshape(d, s)
    hess = np.bincount(flat, weights=h, minlength=length)[:length].reshape(d, s)
    count = np.bincount(flat, minlength=length)[:length].reshape(d, s)
    return Histogram(grad, hess, count.astype(np.int64))
