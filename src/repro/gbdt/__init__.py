"""Histogram-based gradient boosting core shared by every trainer."""

from repro.gbdt.binning import BinnedDataset, bin_column, bin_dataset
from repro.gbdt.boosting import EvalRecord, GBDTModel, GBDTTrainer
from repro.gbdt.histogram import Histogram, build_histogram
from repro.gbdt.loss import LogisticLoss, Loss, SquaredLoss, get_loss, sigmoid
from repro.gbdt.metrics import accuracy, auc, error_rate, logloss, rmse
from repro.gbdt.params import GBDTParams
from repro.gbdt.quantile import QuantileSketch, propose_cut_points
from repro.gbdt.split import SplitCandidate, find_best_split, gain_matrix, leaf_weight
from repro.gbdt.tree import DecisionTree, TreeNode, partition_instances

__all__ = [
    "BinnedDataset",
    "DecisionTree",
    "EvalRecord",
    "GBDTModel",
    "GBDTParams",
    "GBDTTrainer",
    "Histogram",
    "LogisticLoss",
    "Loss",
    "QuantileSketch",
    "SplitCandidate",
    "SquaredLoss",
    "TreeNode",
    "accuracy",
    "auc",
    "bin_column",
    "bin_dataset",
    "build_histogram",
    "error_rate",
    "find_best_split",
    "gain_matrix",
    "get_loss",
    "leaf_weight",
    "logloss",
    "partition_instances",
    "propose_cut_points",
    "rmse",
    "sigmoid",
]
