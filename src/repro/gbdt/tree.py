"""Decision tree model structure shared by all trainers.

Trees are grown layer by layer (the paper's choice, §7) and stored as a
flat node table indexed by heap position: node ``k`` has children
``2k+1`` and ``2k+2``.  Every internal node records which *party* owns
its split — in a federated model the non-owner party only ever sees an
opaque (owner, node) reference, so prediction on vertically partitioned
data must be federated too (:meth:`DecisionTree.predict_federated`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TreeNode", "DecisionTree", "partition_instances"]


@dataclass
class TreeNode:
    """One node of a decision tree.

    Attributes:
        node_id: heap index (root = 0).
        depth: distance from the root.
        is_leaf: whether the node carries a weight instead of a split.
        weight: leaf prediction (valid when ``is_leaf``).
        owner: party index owning the split (0 = Party B by convention).
        feature: *owner-local* feature index of the split.
        bin_index: instances with ``code <= bin_index`` go left.
        threshold: raw-value threshold (populated only on the owner's
            copy of the model; ``nan`` elsewhere).
        gain: split gain achieved.
    """

    node_id: int
    depth: int
    is_leaf: bool = True
    weight: float = 0.0
    owner: int = 0
    feature: int = -1
    bin_index: int = -1
    threshold: float = float("nan")
    gain: float = 0.0

    @property
    def left_child(self) -> int:
        """Heap index of the left child."""
        return 2 * self.node_id + 1

    @property
    def right_child(self) -> int:
        """Heap index of the right child."""
        return 2 * self.node_id + 2


@dataclass
class DecisionTree:
    """A single regression tree of the boosted ensemble."""

    nodes: dict[int, TreeNode] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if 0 not in self.nodes:
            self.nodes[0] = TreeNode(node_id=0, depth=0)

    @property
    def root(self) -> TreeNode:
        """The root node."""
        return self.nodes[0]

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for node in self.nodes.values() if node.is_leaf)

    @property
    def n_internal(self) -> int:
        """Number of split nodes."""
        return len(self.nodes) - self.n_leaves

    def max_depth(self) -> int:
        """Depth of the deepest node."""
        return max(node.depth for node in self.nodes.values())

    def split_node(
        self,
        node_id: int,
        owner: int,
        feature: int,
        bin_index: int,
        threshold: float,
        gain: float,
    ) -> tuple[TreeNode, TreeNode]:
        """Turn a leaf into an internal node and materialize its children."""
        node = self.nodes[node_id]
        if not node.is_leaf:
            raise ValueError(f"node {node_id} is already split")
        node.is_leaf = False
        node.owner = owner
        node.feature = feature
        node.bin_index = bin_index
        node.threshold = threshold
        node.gain = gain
        left = TreeNode(node_id=node.left_child, depth=node.depth + 1)
        right = TreeNode(node_id=node.right_child, depth=node.depth + 1)
        self.nodes[left.node_id] = left
        self.nodes[right.node_id] = right
        return left, right

    def unsplit_node(self, node_id: int) -> None:
        """Roll back a split: remove the node's entire subtree.

        This is the model-side half of the optimistic node-splitting
        roll-back (§4.2) — children (and their descendants, in case the
        optimistic run had already gone deeper) are discarded and the
        node reverts to a leaf.
        """
        node = self.nodes[node_id]
        if node.is_leaf:
            return
        stack = [node.left_child, node.right_child]
        while stack:
            child_id = stack.pop()
            child = self.nodes.pop(child_id, None)
            if child is not None and not child.is_leaf:
                stack.extend([child.left_child, child.right_child])
        node.is_leaf = True
        node.owner = 0
        node.feature = -1
        node.bin_index = -1
        node.threshold = float("nan")
        node.gain = 0.0

    def set_leaf_weight(self, node_id: int, weight: float) -> None:
        """Assign the optimal weight of a finished leaf."""
        node = self.nodes[node_id]
        if not node.is_leaf:
            raise ValueError(f"node {node_id} is not a leaf")
        node.weight = weight

    def predict_codes(self, codes: np.ndarray) -> np.ndarray:
        """Predict margins from a *single-party* bin-code matrix.

        Only valid for non-federated trees (all splits owned by one
        party whose codes are passed in).
        """
        n = codes.shape[0]
        out = np.empty(n, dtype=np.float64)
        for i in range(n):
            node = self.root
            while not node.is_leaf:
                if codes[i, node.feature] <= node.bin_index:
                    node = self.nodes[node.left_child]
                else:
                    node = self.nodes[node.right_child]
            out[i] = node.weight
        return out

    def predict_federated(self, party_codes: dict[int, np.ndarray]) -> np.ndarray:
        """Predict margins over vertically partitioned bin codes.

        Args:
            party_codes: ``{owner_id: codes}`` where each codes matrix is
                indexed by the owner-local feature ids stored in nodes.
        """
        n = next(iter(party_codes.values())).shape[0]
        out = np.empty(n, dtype=np.float64)
        for i in range(n):
            node = self.root
            while not node.is_leaf:
                codes = party_codes[node.owner]
                if codes[i, node.feature] <= node.bin_index:
                    node = self.nodes[node.left_child]
                else:
                    node = self.nodes[node.right_child]
            out[i] = node.weight
        return out

    def nodes_at_depth(self, depth: int) -> list[TreeNode]:
        """All nodes of a layer, ordered by heap index."""
        return sorted(
            (node for node in self.nodes.values() if node.depth == depth),
            key=lambda node: node.node_id,
        )


def partition_instances(
    codes_column: np.ndarray, instance_indices: np.ndarray, bin_index: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split a node's instances by one binned feature column.

    Args:
        codes_column: full-length bin-code column of the split feature.
        instance_indices: rows currently on the node.
        bin_index: go-left boundary (inclusive).

    Returns:
        ``(left_indices, right_indices)``.
    """
    indices = np.asarray(instance_indices, dtype=np.int64)
    mask = codes_column[indices] <= bin_index
    return indices[mask], indices[~mask]
