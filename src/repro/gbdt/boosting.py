"""Non-federated histogram-based GBDT — the repository's XGBoost stand-in.

This trainer runs the exact tree-growing recipe every federated trainer
in :mod:`repro.core` uses (same binning, histograms, gains, layer-wise
growth, histogram subtraction), just on co-located plaintext data. The
paper uses XGBoost in two modes — on co-located data and on Party B's
columns only — as the convergence reference lines of Figure 10 and the
speed reference of Table 4; this class plays both roles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gbdt.binning import BinnedDataset, bin_dataset
from repro.gbdt.histogram import Histogram, build_histogram
from repro.gbdt.loss import Loss, get_loss
from repro.gbdt.metrics import auc
from repro.gbdt.params import GBDTParams
from repro.gbdt.split import find_best_split, leaf_weight
from repro.gbdt.tree import DecisionTree, partition_instances

__all__ = ["GBDTModel", "GBDTTrainer", "EvalRecord"]


@dataclass
class EvalRecord:
    """Metrics captured after one boosting round."""

    tree_index: int
    train_loss: float
    valid_loss: float | None = None
    valid_auc: float | None = None


@dataclass
class GBDTModel:
    """A trained boosted ensemble."""

    trees: list[DecisionTree] = field(default_factory=list)
    params: GBDTParams = field(default_factory=GBDTParams)
    base_score: float = 0.0

    def predict_margin(self, codes: np.ndarray) -> np.ndarray:
        """Raw margin predictions from bin codes."""
        margins = np.full(codes.shape[0], self.base_score, dtype=np.float64)
        for tree in self.trees:
            margins += self.params.learning_rate * tree.predict_codes(codes)
        return margins

    def predict_proba(self, codes: np.ndarray, loss: Loss) -> np.ndarray:
        """Output-scale predictions (probabilities for logistic loss)."""
        return loss.transform(self.predict_margin(codes))


class GBDTTrainer:
    """Plaintext histogram-based gradient boosting.

    Args:
        params: hyper-parameters.

    Example:
        >>> trainer = GBDTTrainer(GBDTParams(n_trees=5, n_layers=4))
        >>> model = trainer.fit(features, labels)
    """

    def __init__(self, params: GBDTParams | None = None) -> None:
        self.params = params or GBDTParams()
        self.loss: Loss = get_loss(self.params.objective)
        self.history: list[EvalRecord] = []
        self._dataset: BinnedDataset | None = None

    def fit(
        self,
        features,
        labels: np.ndarray,
        valid_features=None,
        valid_labels: np.ndarray | None = None,
    ) -> GBDTModel:
        """Train on raw feature matrices (binning included)."""
        dataset = bin_dataset(features, self.params.n_bins)
        valid_dataset = None
        if valid_features is not None:
            valid_dataset = self._bin_like(valid_features, dataset)
        return self.fit_binned(dataset, labels, valid_dataset, valid_labels)

    def fit_binned(
        self,
        dataset: BinnedDataset,
        labels: np.ndarray,
        valid_dataset: BinnedDataset | None = None,
        valid_labels: np.ndarray | None = None,
    ) -> GBDTModel:
        """Train on an already-binned dataset."""
        labels = np.asarray(labels, dtype=np.float64)
        if labels.shape[0] != dataset.n_instances:
            raise ValueError("labels length must match dataset rows")
        self._dataset = dataset
        self.history = []
        base = self.loss.base_score(labels)
        model = GBDTModel(params=self.params, base_score=base)
        margins = np.full(labels.shape[0], base, dtype=np.float64)
        valid_margins = None
        if valid_dataset is not None and valid_labels is not None:
            valid_margins = np.full(
                valid_labels.shape[0], base, dtype=np.float64
            )
        for t in range(self.params.n_trees):
            gradients, hessians = self.loss.gradients(labels, margins)
            tree = self._grow_tree(dataset, gradients, hessians)
            model.trees.append(tree)
            margins += self.params.learning_rate * tree.predict_codes(dataset.codes)
            record = EvalRecord(
                tree_index=t, train_loss=self.loss.loss(labels, margins)
            )
            if valid_margins is not None:
                valid_margins += self.params.learning_rate * tree.predict_codes(
                    valid_dataset.codes
                )
                record.valid_loss = self.loss.loss(valid_labels, valid_margins)
                record.valid_auc = _safe_auc(valid_labels, valid_margins)
            self.history.append(record)
        return model

    def _grow_tree(
        self,
        dataset: BinnedDataset,
        gradients: np.ndarray,
        hessians: np.ndarray,
    ) -> DecisionTree:
        """Layer-wise growth with the histogram-subtraction trick."""
        tree = DecisionTree()
        all_rows = np.arange(dataset.n_instances, dtype=np.int64)
        node_instances: dict[int, np.ndarray] = {0: all_rows}
        node_histograms: dict[int, Histogram] = {
            0: build_histogram(dataset, all_rows, gradients, hessians)
        }
        frontier = [0]
        for _depth in range(self.params.max_depth):
            next_frontier: list[int] = []
            for node_id in frontier:
                histogram = node_histograms[node_id]
                candidate = find_best_split(histogram, self.params)
                if not candidate.is_valid:
                    continue
                threshold = dataset.threshold_for(
                    candidate.feature, candidate.bin_index
                )
                left, right = tree.split_node(
                    node_id,
                    owner=0,
                    feature=candidate.feature,
                    bin_index=candidate.bin_index,
                    threshold=threshold,
                    gain=candidate.gain,
                )
                left_rows, right_rows = partition_instances(
                    dataset.codes[:, candidate.feature],
                    node_instances[node_id],
                    candidate.bin_index,
                )
                node_instances[left.node_id] = left_rows
                node_instances[right.node_id] = right_rows
                # Subtraction trick: build the smaller child, derive the other.
                if left_rows.size <= right_rows.size:
                    small, large = left, right
                    small_rows = left_rows
                else:
                    small, large = right, left
                    small_rows = right_rows
                small_hist = build_histogram(
                    dataset, small_rows, gradients, hessians
                )
                node_histograms[small.node_id] = small_hist
                node_histograms[large.node_id] = histogram.subtract(small_hist)
                next_frontier.extend([left.node_id, right.node_id])
            frontier = next_frontier
            if not frontier:
                break
        for node in tree.nodes.values():
            if node.is_leaf:
                rows = node_instances.get(node.node_id)
                if rows is None or rows.size == 0:
                    tree.set_leaf_weight(node.node_id, 0.0)
                    continue
                grad_sum = float(gradients[rows].sum())
                hess_sum = float(hessians[rows].sum())
                tree.set_leaf_weight(
                    node.node_id,
                    leaf_weight(grad_sum, hess_sum, self.params.reg_lambda),
                )
        return tree

    @staticmethod
    def _bin_like(features, reference: BinnedDataset) -> BinnedDataset:
        """Bin a validation matrix with the training cut points."""
        from scipy import sparse as sp

        from repro.gbdt.binning import bin_column

        if sp.issparse(features):
            features = np.asarray(features.todense(), dtype=np.float64)
        else:
            features = np.asarray(features, dtype=np.float64)
        codes = np.empty(features.shape, dtype=np.uint16)
        for j in range(features.shape[1]):
            codes[:, j] = bin_column(features[:, j], reference.cut_points[j])
        return BinnedDataset(
            codes, reference.cut_points, reference.n_bins, reference.feature_names
        )

    def evaluate(
        self, model: GBDTModel, dataset: BinnedDataset, labels: np.ndarray
    ) -> dict[str, float]:
        """Loss and (when defined) AUC of a model on a binned dataset."""
        margins = model.predict_margin(dataset.codes)
        result = {"loss": self.loss.loss(np.asarray(labels, float), margins)}
        auc_value = _safe_auc(labels, margins)
        if auc_value is not None:
            result["auc"] = auc_value
        return result


def _safe_auc(labels: np.ndarray, margins: np.ndarray) -> float | None:
    """AUC, or ``None`` when undefined (single-class labels)."""
    try:
        return auc(np.asarray(labels, dtype=np.float64), margins)
    except ValueError:
        return None
