"""Split gain evaluation over histograms (§2.1 of the paper).

Implements the regularized split gain

    ``Gain = 1/2 [ G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda)
                   - G^2/(H+lambda) ] - gamma``

evaluated for every ``(feature, bin)`` candidate via prefix sums, plus
the optimal leaf weight ``w* = -G / (H + lambda)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gbdt.histogram import Histogram
from repro.gbdt.params import GBDTParams

__all__ = ["SplitCandidate", "find_best_split", "leaf_weight", "gain_matrix"]


@dataclass(frozen=True)
class SplitCandidate:
    """A candidate split of one node.

    ``feature`` indexes the histogram that produced it — callers that
    search a party-local histogram must translate to global feature ids
    (or keep it local, which is exactly the privacy point of the
    federated protocol: Party B only ever learns Party A's *bin index*).

    Attributes:
        feature: feature column index within the searched histogram.
        bin_index: instances with ``code <= bin_index`` go left.
        gain: regularized split gain.
        left_grad / left_hess / left_count: statistics of the left child.
        right_grad / right_hess / right_count: statistics of the right child.
    """

    feature: int
    bin_index: int
    gain: float
    left_grad: float
    left_hess: float
    left_count: int
    right_grad: float
    right_hess: float
    right_count: int

    @property
    def is_valid(self) -> bool:
        """Whether this candidate denotes an actual split."""
        return self.feature >= 0 and self.gain > 0.0


NO_SPLIT = SplitCandidate(
    feature=-1,
    bin_index=-1,
    gain=float("-inf"),
    left_grad=0.0,
    left_hess=0.0,
    left_count=0,
    right_grad=0.0,
    right_hess=0.0,
    right_count=0,
)


def leaf_weight(grad_sum: float, hess_sum: float, reg_lambda: float) -> float:
    """Optimal leaf weight ``w* = -G / (H + lambda)`` (Equation 1)."""
    return -grad_sum / (hess_sum + reg_lambda)


def gain_matrix(
    histogram: Histogram, params: GBDTParams, check_counts: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Split gains for every ``(feature, bin)`` plus the validity mask.

    Args:
        check_counts: enforce per-child instance-count constraints. The
            active party disables this when searching a *decrypted*
            passive-party histogram, whose counts it legitimately does
            not know (the hessian-based ``min_child_weight`` constraint
            still applies).

    Returns:
        ``(gains, valid)`` arrays of shape ``(D, s-1)`` — splitting after
        the last bin is meaningless so the final column is dropped.
    """
    grad_prefix = np.cumsum(histogram.grad, axis=1)[:, :-1]
    hess_prefix = np.cumsum(histogram.hess, axis=1)[:, :-1]
    count_prefix = np.cumsum(histogram.count, axis=1)[:, :-1]
    total_grad = histogram.total_grad
    total_hess = histogram.total_hess
    total_count = histogram.total_count

    right_grad = total_grad - grad_prefix
    right_hess = total_hess - hess_prefix
    right_count = total_count - count_prefix

    lam = params.reg_lambda
    parent_term = total_grad**2 / (total_hess + lam)
    with np.errstate(divide="ignore", invalid="ignore"):
        gains = 0.5 * (
            grad_prefix**2 / (hess_prefix + lam)
            + right_grad**2 / (right_hess + lam)
            - parent_term
        ) - params.gamma
    valid = (hess_prefix >= params.min_child_weight) & (
        right_hess >= params.min_child_weight
    )
    if check_counts:
        valid &= (count_prefix >= 1) & (right_count >= 1)
    gains = np.where(valid, gains, float("-inf"))
    return gains, valid


def find_best_split(
    histogram: Histogram,
    params: GBDTParams,
    check_counts: bool = True,
    node_instances: int | None = None,
) -> SplitCandidate:
    """Search a histogram for the maximal-gain candidate.

    Args:
        check_counts: see :func:`gain_matrix`.
        node_instances: instance count of the node when the histogram's
            own counts are unreliable (decrypted passive histograms).

    Returns ``NO_SPLIT`` (with ``is_valid == False``) when no candidate
    satisfies the constraints or improves the loss.
    """
    if histogram.n_features == 0 or histogram.n_bins < 2:
        return NO_SPLIT
    total_count = (
        node_instances if node_instances is not None else histogram.total_count
    )
    if total_count < params.min_node_instances:
        return NO_SPLIT
    gains, _ = gain_matrix(histogram, params, check_counts=check_counts)
    flat_index = int(np.argmax(gains))
    best_gain = float(gains.ravel()[flat_index])
    if not np.isfinite(best_gain) or best_gain <= 0.0:
        return NO_SPLIT
    feature, bin_index = divmod(flat_index, gains.shape[1])
    grad_prefix = float(np.sum(histogram.grad[feature, : bin_index + 1]))
    hess_prefix = float(np.sum(histogram.hess[feature, : bin_index + 1]))
    count_prefix = int(np.sum(histogram.count[feature, : bin_index + 1]))
    return SplitCandidate(
        feature=feature,
        bin_index=bin_index,
        gain=best_gain,
        left_grad=grad_prefix,
        left_hess=hess_prefix,
        left_count=count_prefix,
        right_grad=histogram.total_grad - grad_prefix,
        right_hess=histogram.total_hess - hess_prefix,
        right_count=histogram.total_count - count_prefix,
    )
