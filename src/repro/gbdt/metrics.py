"""Evaluation metrics used throughout the paper's evaluation (§6)."""

from __future__ import annotations

import numpy as np

__all__ = ["auc", "logloss", "rmse", "accuracy", "error_rate"]


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic.

    Ties in scores are handled by average ranks (Mann-Whitney U).

    Raises:
        ValueError: when only one class is present.
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    positives = labels > 0.5
    n_pos = int(positives.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC is undefined with a single class")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks over tied score groups.
    i = 0
    position = 1.0
    while i < labels.size:
        j = i
        while j + 1 < labels.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        average = (position + position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = average
        position += j - i + 1
        i = j + 1
    rank_sum = float(ranks[positives].sum())
    u_statistic = rank_sum - n_pos * (n_pos + 1) / 2.0
    return u_statistic / (n_pos * n_neg)


def logloss(labels: np.ndarray, probabilities: np.ndarray) -> float:
    """Mean binary cross-entropy over predicted probabilities."""
    labels = np.asarray(labels, dtype=np.float64)
    prob = np.clip(np.asarray(probabilities, dtype=np.float64), 1e-15, 1 - 1e-15)
    return float(-np.mean(labels * np.log(prob) + (1 - labels) * np.log(1 - prob)))


def rmse(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Root mean squared error."""
    labels = np.asarray(labels, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    return float(np.sqrt(np.mean((labels - predictions) ** 2)))


def accuracy(labels: np.ndarray, probabilities: np.ndarray) -> float:
    """Fraction of correct 0.5-thresholded predictions."""
    labels = np.asarray(labels, dtype=np.float64)
    predicted = np.asarray(probabilities, dtype=np.float64) >= 0.5
    return float(np.mean(predicted == (labels > 0.5)))


def error_rate(labels: np.ndarray, probabilities: np.ndarray) -> float:
    """``1 - accuracy``."""
    return 1.0 - accuracy(labels, probabilities)
