"""``python -m repro`` — the experiment CLI."""

from repro.cli import main

raise SystemExit(main())
