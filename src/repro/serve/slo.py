"""Serving SLO watcher: sliding-window p99 and error-budget burn.

Watches a :class:`~repro.serve.session.ServingRuntime`'s completion
stream on the *simulated* clock (every timestamp is passed in, never
read from a wall clock — the watcher is as deterministic as the event
loop it observes).  Over a sliding window of recent completions it
tracks the p99 latency and the **burn rate**: the fraction of the
window that breached the latency SLO, divided by the error budget.  A
burn rate of 1.0 means the service is consuming its budget exactly as
fast as it is allowed to; sustained values above the alert threshold
open a ``burn_alert`` episode, closed when the rate drops back.

Every noteworthy transition — timeouts, degraded routing after an
exhausted retry budget, rejected admissions, degraded completions,
burn-alert open/close — is recorded as a unified
:class:`~repro.obs.events.Event` (subsystem ``"serve.slo"``),
exportable as JSONL (:meth:`SLOWatcher.write_jsonl`) and referenced
from the serve bench's :class:`~repro.obs.RunReport` under
``artifacts["events"]``.  :attr:`SLOWatcher.events` keeps the
pre-unification flat-dict shape (``{"event", "time", **labels,
**fields}``) so existing consumers read it unchanged, while the JSONL
lines carry the full schema (``kind``/``subsystem`` alongside the
legacy ``event`` alias).  When the watcher is given a shared
:class:`~repro.obs.events.EventLog`, every record is also appended
there, interleaved with the rest of the flight recorder.

The watcher also publishes ``serve.slo.*`` gauges and counters into a
shared :class:`~repro.obs.metrics.MetricsRegistry` when given one, so
SLO posture lands in the same snapshot as the runtime's own counters.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.events import Event

__all__ = ["SLOPolicy", "SLOWatcher"]

_PREFIX = "serve.slo."


@dataclass(frozen=True)
class SLOPolicy:
    """The service-level objective being watched.

    Attributes:
        latency_slo: per-request latency objective in simulated
            seconds; a completion above it is a breach.
        window: completions per sliding window (p99 and burn rate are
            computed over the most recent this-many completions).
        error_budget: allowed breach fraction (0.01 = 1% of requests
            may breach before the budget burns at rate 1.0).
        burn_alert: burn rate at or above which an alert episode opens.
    """

    latency_slo: float = 0.5
    window: int = 64
    error_budget: float = 0.01
    burn_alert: float = 1.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.error_budget <= 1.0:
            raise ValueError("error_budget must be in (0, 1]")

    def to_dict(self) -> dict:
        return {
            "latency_slo": self.latency_slo,
            "window": self.window,
            "error_budget": self.error_budget,
            "burn_alert": self.burn_alert,
        }


class SLOWatcher:
    """Observe completions and timeouts; judge them against a policy.

    Args:
        policy: the SLO being watched (defaults are serving-bench
            scaled: 500 ms objective, 64-completion window, 1% budget).
        registry: optional shared
            :class:`~repro.obs.metrics.MetricsRegistry`; when given,
            the watcher publishes ``serve.slo.p99`` /
            ``serve.slo.burn_rate`` gauges and bumps
            ``serve.slo.<event>`` counters there.
        labels: constant key/values merged into every event (scenario
            tags in multi-runtime benches).
        event_log: optional shared
            :class:`~repro.obs.events.EventLog` every record is
            mirrored into (the flight recorder's unified stream).
    """

    def __init__(
        self,
        policy: SLOPolicy | None = None,
        registry=None,
        labels: dict | None = None,
        event_log=None,
    ) -> None:
        self.policy = policy or SLOPolicy()
        self.registry = registry
        self.labels = dict(labels or {})
        self.event_log = event_log
        #: (latency, breached) of the most recent completions
        self._window: deque = deque(maxlen=self.policy.window)
        self._records: list[Event] = []
        self.completions = 0
        self.breaches = 0
        self.alert_open = False
        self.alerts = 0

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _emit(self, event: str, now: float, **fields) -> None:
        record = Event(
            time=now,
            subsystem="serve.slo",
            kind=event,
            labels=dict(self.labels),
            payload=dict(fields),
        )
        self._records.append(record)
        if self.event_log is not None:
            self.event_log.append(record)
        if self.registry is not None:
            self.registry.inc(_PREFIX + event)

    @property
    def events(self) -> list[dict]:
        """The records in the pre-unification flat shape.

        ``{"event": kind, "time": time, **labels, **fields}`` — exactly
        the dicts the watcher built before the unified schema, so strict
        consumers (tests, notebooks) see byte-identical structures.
        """
        return [record.legacy_dict() for record in self._records]

    def _publish_gauges(self) -> None:
        if self.registry is not None:
            self.registry.set_gauge(_PREFIX + "p99", self.window_p99())
            self.registry.set_gauge(_PREFIX + "burn_rate", self.burn_rate())

    # ------------------------------------------------------------------
    # Feed
    # ------------------------------------------------------------------
    def on_completion(self, outcome, now: float) -> None:
        """Ingest one finished request (a ``Prediction``-like object)."""
        if getattr(outcome, "rejected", False):
            self._emit("rejected", now, request_id=outcome.request_id)
            return
        latency = outcome.latency
        breached = latency > self.policy.latency_slo
        self.completions += 1
        if breached:
            self.breaches += 1
        self._window.append((latency, breached))
        if getattr(outcome, "degraded", False):
            self._emit(
                "degraded",
                now,
                request_id=outcome.request_id,
                rows=int(outcome.degraded_rows.sum()),
            )
        burn = self.burn_rate()
        if burn >= self.policy.burn_alert and not self.alert_open:
            self.alert_open = True
            self.alerts += 1
            self._emit(
                "burn_alert_start", now, burn_rate=burn, p99=self.window_p99()
            )
        elif burn < self.policy.burn_alert and self.alert_open:
            self.alert_open = False
            self._emit("burn_alert_end", now, burn_rate=burn)
        self._publish_gauges()

    def on_timeout(
        self,
        party: int,
        batch_id: int,
        attempt: int,
        now: float,
        exhausted: bool = False,
    ) -> None:
        """Ingest one batch timeout (``exhausted`` = budget spent)."""
        self._emit(
            "timeout", now, party=party, batch_id=batch_id, attempt=attempt
        )
        if exhausted:
            self._emit(
                "degraded_route", now, party=party, batch_id=batch_id
            )

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def window_size(self) -> int:
        """Completions currently in the sliding window (evidence count)."""
        return len(self._window)

    def window_p99(self) -> float:
        """Nearest-rank p99 latency over the sliding window (0 empty)."""
        if not self._window:
            return 0.0
        ordered = sorted(latency for latency, _ in self._window)
        rank = min(len(ordered) - 1, max(0, -(-99 * len(ordered) // 100) - 1))
        return ordered[rank]

    def breach_fraction(self) -> float:
        """Fraction of the window that breached the latency SLO."""
        if not self._window:
            return 0.0
        return sum(1 for _, breached in self._window if breached) / len(
            self._window
        )

    def burn_rate(self) -> float:
        """Window breach fraction over the error budget (1.0 = on pace)."""
        return self.breach_fraction() / self.policy.error_budget

    def summary(self) -> dict:
        """JSON-ready posture: policy, totals, window stats, events."""
        counts: dict[str, int] = {}
        for record in self._records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return {
            "policy": self.policy.to_dict(),
            "completions": self.completions,
            "breaches": self.breaches,
            "window_p99": self.window_p99(),
            "burn_rate": self.burn_rate(),
            "alert_open": self.alert_open,
            "alerts": self.alerts,
            "events": dict(sorted(counts.items())),
        }

    def event_lines(self) -> list[str]:
        """Each event as one stable-key-order JSON line.

        Lines carry the unified schema — ``kind``/``subsystem`` plus
        the legacy ``event`` alias — so old and new consumers both
        parse them.
        """
        return [record.line() for record in self._records]

    def write_jsonl(self, path: str, append: bool = False) -> int:
        """Write the events as JSONL; returns the line count."""
        with open(path, "a" if append else "w") as handle:
            for line in self.event_lines():
                handle.write(line + "\n")
        return len(self._records)
