"""Serving metrics: counters, histograms and a JSON snapshot API.

Everything here is fed *simulated* quantities (simtime seconds, channel
bytes), so snapshots are bit-repeatable across runs — the serving
counterpart of the trainer's deterministic accounting.  Quantiles are
exact (computed from retained samples), not sketched: bench-scale
sample counts make that the simpler and more honest choice.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

__all__ = ["Histogram", "ServeMetrics"]

#: default latency bucket upper bounds, in simulated seconds
LATENCY_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: default occupancy/depth bucket upper bounds (counts)
COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass
class Histogram:
    """Fixed-bucket histogram with exact quantiles.

    Attributes:
        bounds: ascending bucket upper bounds; one implicit overflow
            bucket sits above the last bound.
    """

    bounds: tuple[float, ...] = LATENCY_BUCKETS
    counts: list[int] = field(default_factory=list)
    samples: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("bucket bounds must be ascending")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one sample."""
        bucket = len(self.bounds)
        for k, bound in enumerate(self.bounds):
            if value <= bound:
                bucket = k
                break
        self.counts[bucket] += 1
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def quantile(self, q: float) -> float:
        """Exact q-quantile via the nearest-rank method (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def snapshot(self) -> dict:
        """JSON-ready summary: count, mean, p50/p95/p99, buckets."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": max(self.samples) if self.samples else 0.0,
            "buckets": {
                **{f"le_{bound:g}": self.counts[k] for k, bound in enumerate(self.bounds)},
                "overflow": self.counts[-1],
            },
        }


class ServeMetrics:
    """The serving runtime's counters and distributions.

    Counters (monotonic):
        ``requests``, ``predictions`` (rows), ``completed``,
        ``rejected`` (admission-queue overflow), ``deadline_misses``,
        ``degraded_requests``, ``degraded_rows``, ``cache_lookups``,
        ``cache_hits``, ``round_trips``, ``retries``, ``timeouts``.

    Distributions:
        ``latency`` (request admission -> completion, simulated s),
        ``batch_occupancy`` (items per flushed routing batch),
        ``batch_rows`` (instance ids per flushed routing batch),
        ``queue_depth`` (in-flight requests sampled at each admission).
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.latency = Histogram(LATENCY_BUCKETS)
        self.batch_occupancy = Histogram(COUNT_BUCKETS)
        self.batch_rows = Histogram(COUNT_BUCKETS)
        self.queue_depth = Histogram(COUNT_BUCKETS)
        #: wire bytes are set from the channel's ledger at snapshot time
        self.wire_bytes = 0

    def inc(self, name: str, amount: int = 1) -> None:
        """Bump a named counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Read a counter (0 when never bumped)."""
        return self.counters.get(name, 0)

    def _rate(self, numerator: str, denominator: str) -> float:
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    def per_1k_predictions(self, value: float) -> float:
        """Normalize a total to per-1000-predictions."""
        predictions = self.get("predictions")
        return 1000.0 * value / predictions if predictions else 0.0

    def snapshot(self) -> dict:
        """One JSON-ready view of every counter and distribution."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "rates": {
                "cache_hit_rate": self._rate("cache_hits", "cache_lookups"),
                "degraded_rate": self._rate("degraded_requests", "completed"),
                "rejection_rate": self._rate("rejected", "requests"),
            },
            "per_1k_predictions": {
                "round_trips": self.per_1k_predictions(self.get("round_trips")),
                "wire_bytes": self.per_1k_predictions(self.wire_bytes),
            },
            "wire_bytes": self.wire_bytes,
            "latency": self.latency.snapshot(),
            "batch_occupancy": self.batch_occupancy.snapshot(),
            "batch_rows": self.batch_rows.snapshot(),
            "queue_depth": self.queue_depth.snapshot(),
        }

    def to_json(self, indent: int | None = 1) -> str:
        """Serialized :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent)
