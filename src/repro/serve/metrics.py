"""Serving metrics, re-implemented on the shared observability registry.

The counters and distributions live in a
:class:`~repro.obs.metrics.MetricsRegistry` under ``serve.*`` names, so
a run report shows serving cost next to channel traffic and crypto op
counts from the same sink.  The public surface is unchanged from the
pre-``repro.obs`` ad-hoc class: ``inc``/``get``, the named histogram
attributes, an assignable ``wire_bytes``, ``snapshot()``/``to_json()``.

:class:`Histogram` is re-exported from :mod:`repro.obs.metrics` (its
new home) for compatibility.
"""

from __future__ import annotations

import json

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
)

__all__ = ["Histogram", "ServeMetrics"]

_PREFIX = "serve."


class ServeMetrics:
    """The serving runtime's counters and distributions.

    Counters (monotonic):
        ``requests``, ``predictions`` (rows), ``completed``,
        ``rejected`` (admission-queue overflow), ``deadline_misses``,
        ``degraded_requests``, ``degraded_rows``, ``cache_lookups``,
        ``cache_hits``, ``round_trips``, ``retries``, ``timeouts``.

    Distributions:
        ``latency`` (request admission -> completion, simulated s),
        ``batch_occupancy`` (items per flushed routing batch),
        ``batch_rows`` (instance ids per flushed routing batch),
        ``queue_depth`` (in-flight requests sampled at each admission).

    Args:
        registry: shared sink to report into (a private one is created
            when omitted, which keeps independent runtimes isolated the
            way the original ad-hoc class was).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.latency = self.registry.histogram(_PREFIX + "latency", LATENCY_BUCKETS)
        self.batch_occupancy = self.registry.histogram(
            _PREFIX + "batch_occupancy", COUNT_BUCKETS
        )
        self.batch_rows = self.registry.histogram(
            _PREFIX + "batch_rows", COUNT_BUCKETS
        )
        self.queue_depth = self.registry.histogram(
            _PREFIX + "queue_depth", COUNT_BUCKETS
        )

    def inc(self, name: str, amount: int = 1) -> None:
        """Bump a named counter."""
        self.registry.inc(_PREFIX + name, amount)

    def get(self, name: str) -> int:
        """Read a counter (0 when never bumped)."""
        return self.registry.get(_PREFIX + name)

    @property
    def counters(self) -> dict[str, int]:
        """The ``serve.*`` counters, prefix stripped (excl. wire bytes)."""
        counters = self.registry.counters(_PREFIX)
        counters.pop("wire_bytes", None)
        return counters

    @property
    def wire_bytes(self) -> int:
        """Wire bytes, set from the channel's ledger at snapshot time."""
        return int(self.registry.gauge(_PREFIX + "wire_bytes"))

    @wire_bytes.setter
    def wire_bytes(self, value: int) -> None:
        self.registry.set_gauge(_PREFIX + "wire_bytes", value)

    def _rate(self, numerator: str, denominator: str) -> float:
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    def per_1k_predictions(self, value: float) -> float:
        """Normalize a total to per-1000-predictions."""
        predictions = self.get("predictions")
        return 1000.0 * value / predictions if predictions else 0.0

    def snapshot(self) -> dict:
        """One JSON-ready view of every counter and distribution."""
        return {
            "counters": self.counters,
            "rates": {
                "cache_hit_rate": self._rate("cache_hits", "cache_lookups"),
                "degraded_rate": self._rate("degraded_requests", "completed"),
                "rejection_rate": self._rate("rejected", "requests"),
            },
            "per_1k_predictions": {
                "round_trips": self.per_1k_predictions(self.get("round_trips")),
                "wire_bytes": self.per_1k_predictions(self.wire_bytes),
            },
            "wire_bytes": self.wire_bytes,
            "latency": self.latency.snapshot(),
            "batch_occupancy": self.batch_occupancy.snapshot(),
            "batch_rows": self.batch_rows.snapshot(),
            "queue_depth": self.queue_depth.snapshot(),
        }

    def to_json(self, indent: int | None = 1) -> str:
        """Serialized :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent)
