"""Failure handling for online federated inference.

A vertical federated prediction has a hard dependency on every passive
party that owns a split on the instance's path — a single slow WAN hop
can stall the whole request.  This module provides the two standard
mitigations:

* retry — per-party timeout with capped exponential backoff.
  :class:`~repro.fed.retry.RetryPolicy` and
  :class:`~repro.fed.retry.PartyHealth` live in :mod:`repro.fed.retry`,
  shared with the fault-tolerant training path; import them from
  there.  (A module ``__getattr__`` below keeps old imports working
  but emits a :class:`DeprecationWarning` pointing at the new home.)
* :class:`DegradedRouter` — when a party stays unresponsive past its
  retry budget (or the request's deadline), its nodes are routed by a
  precomputed *majority direction* and the prediction is flagged
  ``degraded=True`` instead of failing the request.

Privacy note: degraded routing consults only B-side state — per-node
majority directions computed once at model registration from training
placement counts (information the protocol already disclosed to B when
it synchronized instance placement).  No new query, no new disclosure;
the passive party learns nothing it would not have learned from a
normal routing query, and B learns nothing at all beyond what training
revealed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DegradedRouter", "majority_directions"]

#: names whose canonical home moved to repro.fed.retry (shared with the
#: fault-tolerant training path); resolved lazily below so importing
#: them here warns instead of silently aliasing forever
_MOVED_TO_FED_RETRY = ("PartyHealth", "RetryPolicy")


def __getattr__(name: str):
    """Deprecation shim for the names that moved to ``repro.fed.retry``.

    ``from repro.serve.resilience import RetryPolicy`` keeps working
    (old pickles, out-of-tree callers) but now emits a
    :class:`DeprecationWarning` naming the canonical module, so the
    alias can be dropped in a later release.
    """
    if name in _MOVED_TO_FED_RETRY:
        warnings.warn(
            f"repro.serve.resilience.{name} moved to repro.fed.retry; "
            "update the import — this alias will be removed",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.fed import retry

        return getattr(retry, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def majority_directions(
    model, party_codes: dict[int, np.ndarray], active_party: int = 0
) -> dict[tuple[int, int], bool]:
    """Per-node majority routing direction from a calibration set.

    Traverses every tree over ``party_codes`` (a calibration sample —
    e.g. the training rows B already holds placement information for)
    and records, for each node *not* owned by ``active_party``, whether
    the majority of instances reaching it went left.  Ties go left.

    Returns:
        ``{(tree_index, node_id): goes_left_majority}``.
    """
    from repro.core.inference import route_local, split_frontier, apply_route

    defaults: dict[tuple[int, int], bool] = {}
    n = next(iter(party_codes.values())).shape[0]
    for tree_index, tree in enumerate(model.trees):
        frontier: dict[int, np.ndarray] = {0: np.arange(n, dtype=np.int64)}
        while frontier:
            layer = split_frontier(tree, frontier, local_party=active_party)
            next_frontier: dict[int, np.ndarray] = {}
            for node_id, rows in layer.local.items():
                goes_left = route_local(
                    party_codes[active_party], tree.nodes[node_id], rows
                )
                apply_route(tree, node_id, rows, goes_left, next_frontier)
            for owner in sorted(layer.remote):
                for node_id, rows in layer.remote[owner].items():
                    goes_left = route_local(
                        party_codes[owner], tree.nodes[node_id], rows
                    )
                    defaults[(tree_index, node_id)] = bool(
                        int(goes_left.sum()) * 2 >= rows.size
                    )
                    apply_route(tree, node_id, rows, goes_left, next_frontier)
            frontier = next_frontier
    return defaults


@dataclass
class DegradedRouter:
    """Fallback router for nodes of an unresponsive party.

    Attributes:
        defaults: ``(tree_index, node_id) -> goes_left`` majority
            directions (see :func:`majority_directions`).  Nodes with no
            entry fall back to left — the deterministic last resort.
    """

    defaults: dict[tuple[int, int], bool] = field(default_factory=dict)

    def route(self, tree_index: int, node_id: int, n_rows: int) -> np.ndarray:
        """Uniform fallback bitmap for every instance on the node."""
        direction = self.defaults.get((tree_index, node_id), True)
        return np.full(n_rows, direction, dtype=bool)
