"""Online federated inference serving.

The subsystem turns the offline :class:`repro.core.inference.
FederatedPredictor` protocol into a latency-aware serving runtime:

* :mod:`repro.serve.registry` — versioned model registry with atomic
  hot-swap; validates skeleton + every split owner's sidecar + bin
  edges at registration time.
* :mod:`repro.serve.batcher` — cross-request micro-batching of routing
  queries per passive party under a max-batch-size / max-delay policy.
* :mod:`repro.serve.session` — request lifecycle (admission → binning →
  layered traversal → margin → probability) on a deterministic
  discrete-event loop.
* :mod:`repro.serve.resilience` — per-party timeout/retry with backoff
  and majority-direction degraded routing.
* :mod:`repro.serve.metrics` — counters, latency/occupancy histograms,
  per-1k-prediction wire accounting, JSON snapshots.
* :mod:`repro.serve.slo` — sliding-window p99 + error-budget burn
  watcher with a structured (JSONL) event log.
* :mod:`repro.serve.loadgen` / :mod:`repro.serve.bench` — seeded
  open/closed-loop load generation and the naive-vs-batched benchmark
  (``python -m repro.serve.bench``).
"""

from repro.serve.batcher import MicroBatcher, RouteWork
from repro.serve.loadgen import (
    LoadgenConfig,
    make_party_delay,
    make_requests,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ModelRegistry, ModelVersion
from repro.serve.resilience import (
    DegradedRouter,
    PartyHealth,
    RetryPolicy,
    majority_directions,
)
from repro.serve.session import (
    Prediction,
    Request,
    ServeConfig,
    ServingRuntime,
)
from repro.serve.slo import SLOPolicy, SLOWatcher

__all__ = [
    "MicroBatcher",
    "RouteWork",
    "LoadgenConfig",
    "make_party_delay",
    "make_requests",
    "run_closed_loop",
    "run_open_loop",
    "ServeMetrics",
    "ModelRegistry",
    "ModelVersion",
    "DegradedRouter",
    "PartyHealth",
    "RetryPolicy",
    "majority_directions",
    "Prediction",
    "Request",
    "SLOPolicy",
    "SLOWatcher",
    "ServeConfig",
    "ServingRuntime",
]
