"""Online federated inference serving.

The subsystem turns the offline :class:`repro.core.inference.
FederatedPredictor` protocol into a latency-aware serving runtime:

* :mod:`repro.serve.registry` — versioned model registry with atomic
  hot-swap; validates skeleton + every split owner's sidecar + bin
  edges at registration time.
* :mod:`repro.serve.batcher` — cross-request micro-batching of routing
  queries per passive party under a max-batch-size / max-delay policy.
* :mod:`repro.serve.session` — request lifecycle (admission → binning →
  layered traversal → margin → probability) on a deterministic
  discrete-event loop.
* :mod:`repro.serve.resilience` — majority-direction degraded routing
  (timeout/retry policy lives in :mod:`repro.fed.retry`, shared with
  the training path).
* :mod:`repro.serve.metrics` — counters, latency/occupancy histograms,
  per-1k-prediction wire accounting, JSON snapshots.
* :mod:`repro.serve.slo` — sliding-window p99 + error-budget burn
  watcher with a structured (JSONL) event log.
* :mod:`repro.serve.fleet` — consistent-hash sharding across N replica
  runtimes, burn-rate load shedding at the fleet door, ``fleet.*``
  metric rollup.
* :mod:`repro.serve.canary` — staged rollout of a registry version on
  a deterministic traffic slice with golden-metric promotion/rollback.
* :mod:`repro.serve.loadgen` / :mod:`repro.serve.bench` — seeded
  open/closed-loop load generation with heavy-tail traces, the
  naive-vs-batched benchmark and the replica-count sweep
  (``python -m repro.serve.bench --replicas 4 --trace flashcrowd``).
"""

from repro.fed.retry import PartyHealth, RetryPolicy
from repro.serve.batcher import MicroBatcher, RouteWork
from repro.serve.canary import CanaryConfig, CanaryController, golden_margins
from repro.serve.fleet import (
    FleetConfig,
    FleetRouter,
    ServingFleet,
    ShedPolicy,
)
from repro.serve.loadgen import (
    TRACES,
    LoadgenConfig,
    make_party_delay,
    make_requests,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ModelRegistry, ModelVersion
from repro.serve.resilience import DegradedRouter, majority_directions
from repro.serve.session import (
    Prediction,
    Request,
    ServeConfig,
    ServingRuntime,
)
from repro.serve.slo import SLOPolicy, SLOWatcher

__all__ = [
    "MicroBatcher",
    "RouteWork",
    "CanaryConfig",
    "CanaryController",
    "golden_margins",
    "FleetConfig",
    "FleetRouter",
    "ServingFleet",
    "ShedPolicy",
    "TRACES",
    "LoadgenConfig",
    "make_party_delay",
    "make_requests",
    "run_closed_loop",
    "run_open_loop",
    "ServeMetrics",
    "ModelRegistry",
    "ModelVersion",
    "DegradedRouter",
    "PartyHealth",
    "RetryPolicy",
    "majority_directions",
    "Prediction",
    "Request",
    "SLOPolicy",
    "SLOWatcher",
    "ServeConfig",
    "ServingRuntime",
]
