"""Deterministic load generation for the serving runtime.

Two classic shapes, both fully seeded so every run of
``python -m repro.serve.bench`` reproduces byte-identical results:

* **open loop** — arrivals follow a Poisson process at a fixed rate,
  independent of completions (models internet traffic; exposes queueing
  collapse when the offered load exceeds capacity);
* **closed loop** — a fixed number of concurrent streams, each issuing
  its next request the moment the previous one finishes (models a
  fleet of upstream workers; pins concurrency exactly, which is what
  the micro-batching comparison wants).

Open-loop arrivals can additionally follow a **heavy-tail trace**: the
Poisson process is made inhomogeneous by scaling its instantaneous
rate with a pure function of the simulated clock (see :data:`TRACES`) —
a diurnal ramp, a flash crowd, or sustained overload.  Traces are what
the fleet bench (:mod:`repro.serve.fleet`) sweeps replica counts
against, since a constant-rate workload never pushes one replica past
its admission capacity.  Requests can also carry ``session_id`` drawn
from a power-law popularity distribution (``n_sessions`` /
``session_skew``), giving the consistent-hash router realistic hot
sessions to pin.

The generator also builds the deterministic fault injector
(:func:`make_party_delay`) used to exercise timeout → retry → degraded
routing: whether a given (party, batch, attempt) is slow is a pure
function of the seed, never of host randomness.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.serve.session import Prediction, Request, ServingRuntime

__all__ = [
    "LoadgenConfig",
    "TRACES",
    "make_requests",
    "make_party_delay",
    "run_open_loop",
    "run_closed_loop",
]


def _diurnal(t: float) -> float:
    """Smooth day/night ramp, period 2 simulated seconds, ×0.25..×1.0."""
    return 0.25 + 0.375 * (1.0 - math.cos(math.pi * t))


def _flashcrowd(t: float) -> float:
    """Nominal rate with an 8× burst over t ∈ [0.5, 1.0)."""
    return 8.0 if 0.5 <= t < 1.0 else 1.0


def _overload(t: float) -> float:
    """Sustained offered load at 3× the nominal rate."""
    return 3.0


#: name -> rate multiplier as a pure function of the simulated clock.
#: Multiplies :attr:`LoadgenConfig.rate` to make the open-loop Poisson
#: process inhomogeneous; being clock-pure keeps traces byte-repeatable.
TRACES = {
    "diurnal": _diurnal,
    "flashcrowd": _flashcrowd,
    "overload": _overload,
}


@dataclass(frozen=True)
class LoadgenConfig:
    """Workload description.

    Attributes:
        n_requests: total requests to issue.
        rows_per_request: instances per request.
        feature_dims: ``party -> raw feature count`` (must match the
            registered model's bin edges).
        seed: RNG seed for rows, arrivals and fault injection.
        mode: ``"open"`` or ``"closed"``.
        rate: open-loop arrival rate, requests per simulated second
            (the *nominal* rate when a trace modulates it).
        trace: optional heavy-tail shape from :data:`TRACES`
            (``"diurnal"`` / ``"flashcrowd"`` / ``"overload"``);
            open-loop only — a closed loop sets its own pace.
        concurrency: closed-loop stream count.
        n_sessions: distinct logical sessions to stamp on requests
            (0 = no sessions; the fleet router then falls back to
            per-request routing).
        session_skew: power-law popularity exponent; 0 is uniform,
            larger values concentrate traffic on a few hot sessions.
        duplicate_fraction: fraction of requests that replay an earlier
            request's rows verbatim (exercises the prediction cache).
        slow_party: party whose answers are sometimes delayed.
        slow_probability: per-attempt probability of a slow answer.
        slow_delay: extra seconds a slow answer takes.
    """

    n_requests: int = 256
    rows_per_request: int = 1
    feature_dims: dict[int, int] | None = None
    seed: int = 7
    mode: str = "closed"
    rate: float = 200.0
    trace: str | None = None
    concurrency: int = 16
    n_sessions: int = 0
    session_skew: float = 0.0
    duplicate_fraction: float = 0.0
    slow_party: int | None = None
    slow_probability: float = 0.0
    slow_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError("mode must be 'open' or 'closed'")
        if not self.feature_dims:
            raise ValueError("feature_dims is required")
        if self.trace is not None:
            if self.trace not in TRACES:
                raise ValueError(
                    f"unknown trace {self.trace!r}; pick from {sorted(TRACES)}"
                )
            if self.mode != "open":
                raise ValueError("traces require mode='open'")
        if self.n_sessions < 0:
            raise ValueError("n_sessions must be >= 0")
        if self.session_skew < 0:
            raise ValueError("session_skew must be >= 0")


def make_requests(config: LoadgenConfig) -> list[Request]:
    """Generate the request list (arrivals filled for open loop only).

    Closed-loop arrival times are decided at run time (a stream's next
    request arrives when its previous one finishes), so closed-loop
    requests carry a placeholder arrival of 0.0.
    """
    rng = np.random.default_rng(config.seed)
    arrival_rng = np.random.default_rng(config.seed + 1)
    dup_rng = random.Random(config.seed + 2)
    session_rng = np.random.default_rng(config.seed + 3)
    factor = TRACES[config.trace] if config.trace is not None else None
    requests: list[Request] = []
    clock = 0.0
    for request_id in range(config.n_requests):
        if requests and dup_rng.random() < config.duplicate_fraction:
            source = requests[dup_rng.randrange(len(requests))]
            rows = {party: block.copy() for party, block in source.rows.items()}
        else:
            rows = {
                party: rng.normal(size=(config.rows_per_request, dim))
                for party, dim in sorted(config.feature_dims.items())
            }
        if config.mode == "open":
            if factor is None:
                clock += float(arrival_rng.exponential(1.0 / config.rate))
            else:
                # Inhomogeneous Poisson: a unit-exponential gap scaled
                # by the instantaneous rate at the current clock.
                gap = float(arrival_rng.exponential(1.0))
                clock += gap / (config.rate * factor(clock))
            arrival = clock
        else:
            arrival = 0.0
        session_id = -1
        if config.n_sessions > 0:
            # Power-law popularity: u**(1+skew) concentrates mass near
            # session 0; skew 0 degenerates to uniform.
            u = float(session_rng.random())
            session_id = min(
                config.n_sessions - 1,
                int(config.n_sessions * u ** (1.0 + config.session_skew)),
            )
        requests.append(
            Request(
                request_id=request_id,
                arrival=arrival,
                rows=rows,
                session_id=session_id,
            )
        )
    return requests


def make_party_delay(
    config: LoadgenConfig,
) -> Callable[[int, int, int], float] | None:
    """Deterministic per-attempt fault injector, or None when healthy."""
    if config.slow_party is None or config.slow_probability <= 0:
        return None
    seed = config.seed
    slow_party = config.slow_party
    probability = config.slow_probability
    delay = config.slow_delay

    def party_delay(party: int, batch_id: int, attempt: int) -> float:
        if party != slow_party:
            return 0.0
        mix = (seed * 1000003 + party * 8191 + batch_id * 131 + attempt) % (1 << 32)
        return delay if random.Random(mix).random() < probability else 0.0

    return party_delay


def run_open_loop(
    runtime: ServingRuntime, requests: list[Request]
) -> list[Prediction]:
    """Submit every request at its generated arrival time and drain."""
    for request in requests:
        runtime.submit(request)
    return runtime.run()


def run_closed_loop(
    runtime: ServingRuntime, requests: list[Request], concurrency: int
) -> list[Prediction]:
    """Fixed-concurrency feedback loop over the request list.

    The first ``concurrency`` requests start at (almost) time zero —
    staggered by a nanosecond each so event ordering is well defined —
    and each completion immediately admits the next pending request.
    """
    pending = deque(requests)

    def submit_next(now: float) -> None:
        if pending:
            runtime.submit(replace(pending.popleft(), arrival=now))

    for k in range(min(concurrency, len(pending))):
        runtime.submit(replace(pending.popleft(), arrival=k * 1e-9))
    return runtime.run(on_complete=lambda outcome: submit_next(outcome.finished))
