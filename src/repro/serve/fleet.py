"""Fleet-scale serving: sharded replicas, load shedding, rollout seam.

One :class:`~repro.serve.session.ServingRuntime` has a finite capacity
of ``1 / admission_cost`` requests per simulated second (admission is
priced on a serial CPU).  The fleet scales that horizontally: a
:class:`FleetRouter` consistent-hash-routes *sessions* to ``N`` replica
runtimes, each with its own :class:`~repro.serve.batcher.MicroBatcher`,
prediction cache and :class:`~repro.serve.slo.SLOWatcher` — so a
session sticks to one replica (cache affinity) and ≤ K/N sessions move
when a replica is added or removed.

Everything stays on the simulated clock.  The fleet owns a single
global event loop: at every step it picks the earliest pending event
across *all* replicas and the arrival queue (ties broken
arrival-first, then by replica index), so an N-replica run is exactly
as deterministic and byte-repeatable as a single runtime — the same
contract the training-side simulator keeps.

Load shedding happens at the fleet door, *before* the error budget
burns: an arrival routed to a replica whose SLO watcher reports a burn
rate at or above :attr:`ShedPolicy.burn_threshold` (strictly below the
watcher's own ``burn_alert``) is turned away with ``shed=True`` instead
of being admitted to a queue it would only deepen.  Shed decisions read
only simulated-clock state — never a wall clock (the analyzer's DET001
rule polices exactly this).

A fleet-level aggregator rolls per-replica SLO posture into the shared
:class:`~repro.obs.metrics.MetricsRegistry` under ``fleet.*`` — routed
and shed counters, per-replica p99/burn-rate gauges and their fleet-wide
maxima — so one snapshot shows the whole fleet next to the channel and
crypto ledgers.  Canary rollout plugs in through the runtimes'
``version_selector`` seam (see :mod:`repro.serve.canary`).
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.fed.cluster import ClusterSpec
from repro.fed.retry import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ModelRegistry
from repro.serve.session import (
    Prediction,
    Request,
    ServeConfig,
    ServingRuntime,
)
from repro.serve.slo import SLOPolicy, SLOWatcher

__all__ = ["ShedPolicy", "FleetConfig", "FleetRouter", "ServingFleet"]

_PREFIX = "fleet."


def _stable_hash(payload: str) -> int:
    """64-bit integer from sha256 — stable across processes and runs
    (``hash()`` is salted per process, useless for a consistent ring)."""
    return int.from_bytes(
        hashlib.sha256(payload.encode()).digest()[:8], "big"
    )


@dataclass(frozen=True)
class ShedPolicy:
    """When the fleet door turns an arrival away.

    Attributes:
        burn_threshold: shed when the target replica's burn rate is at
            or above this.  Keep it *below* the SLO policy's
            ``burn_alert`` so shedding starts while the budget is still
            intact — the alert is the failure mode shedding prevents.
        min_window: completions the replica's sliding window must hold
            before its burn rate is trusted (a cold window of one slow
            request must not shed a whole session).
    """

    burn_threshold: float = 0.5
    min_window: int = 8

    def __post_init__(self) -> None:
        if self.burn_threshold <= 0.0:
            raise ValueError("burn_threshold must be > 0")
        if self.min_window < 1:
            raise ValueError("min_window must be >= 1")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet shape and policies.

    Attributes:
        n_replicas: serving runtimes behind the router.
        seed: consistent-hash ring seed (routing is a pure function of
            the seed, the replica set and the session key).
        vnodes: virtual nodes per replica on the ring; more vnodes
            smooth the key distribution at slightly more memory.
        shed: admission-control policy, ``None`` disables shedding.
        slo: per-replica SLO policy (the shedding signal's source).
    """

    n_replicas: int = 2
    seed: int = 0
    vnodes: int = 64
    shed: ShedPolicy | None = field(default_factory=ShedPolicy)
    slo: SLOPolicy = field(default_factory=SLOPolicy)

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")


class FleetRouter:
    """Consistent-hash ring mapping session keys to replica indices.

    Each replica owns ``vnodes`` points on a 64-bit ring; a key routes
    to the first vnode clockwise from its own hash.  Adding or removing
    one replica only re-routes the keys whose closest vnode changed —
    in expectation K/N of them — which is what keeps per-replica caches
    warm through membership changes.
    """

    def __init__(self, replicas: int, seed: int = 0, vnodes: int = 64) -> None:
        self.seed = seed
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted vnode hashes
        self._owner: dict[int, int] = {}  # vnode hash -> replica
        self._members: set[int] = set()
        for replica in range(replicas):
            self.add(replica)

    def add(self, replica: int) -> None:
        """Place one replica's vnodes on the ring."""
        if replica in self._members:
            raise ValueError(f"replica {replica} already on the ring")
        self._members.add(replica)
        for v in range(self.vnodes):
            point = _stable_hash(f"{self.seed}:replica:{replica}:{v}")
            # sha256 collisions across distinct labels are not a
            # realistic event; last writer would win if one occurred.
            self._owner[point] = replica
            bisect.insort(self._points, point)

    def remove(self, replica: int) -> None:
        """Take one replica's vnodes off the ring."""
        if replica not in self._members:
            raise ValueError(f"replica {replica} not on the ring")
        self._members.remove(replica)
        for v in range(self.vnodes):
            point = _stable_hash(f"{self.seed}:replica:{replica}:{v}")
            if self._owner.get(point) == replica:
                del self._owner[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def members(self) -> list[int]:
        """Replica indices currently on the ring, sorted."""
        return sorted(self._members)

    def route(self, key: int) -> int:
        """Replica owning ``key`` (first vnode clockwise of its hash)."""
        if not self._points:
            raise LookupError("ring is empty")
        point = _stable_hash(f"{self.seed}:key:{key}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap: the ring is circular
        return self._owner[self._points[index]]


class ServingFleet:
    """N replica runtimes behind a consistent-hash router.

    Args:
        registry: shared model registry (one control plane; every
            replica serves the same version set, hot-swaps included).
        config: fleet shape + shedding/SLO policies.
        cluster / serve_config / retry / party_delay: forwarded to
            every replica runtime, same meaning as on
            :class:`~repro.serve.session.ServingRuntime`.
        metrics_registry: shared sink for the ``fleet.*`` rollup
            (created when omitted).  Per-replica runtimes keep private
            sinks so their ``serve.*`` names never collide.
        tracer: optional shared tracer; replica ``i`` prefixes its
            tracks ``replica{i}.`` so spans land on distinct tracks.
        version_selector: optional ``request -> ModelVersion`` hook
            installed on every replica (the canary controller's seam).
        canary: optional :class:`~repro.serve.canary.CanaryController`;
            when given, its ``select`` becomes the version selector (if
            none was passed) and every completion is fed to its
            ``observe`` with the originating request.
        on_complete: optional callback fed every outcome — completions
            *and* fleet-level sheds — in event order.
        event_log: optional shared
            :class:`~repro.obs.events.EventLog`; per-replica SLO
            watchers mirror their events into it and every shed
            decision is recorded under subsystem ``"serve.fleet"``.
        slo_labels: constant labels (scenario / arm tags) merged into
            every watcher's and shed event's labels, in addition to the
            per-watcher ``replica`` index.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: FleetConfig | None = None,
        cluster: ClusterSpec | None = None,
        serve_config: ServeConfig | None = None,
        retry: RetryPolicy | None = None,
        party_delay=None,
        metrics_registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        version_selector=None,
        canary=None,
        on_complete=None,
        event_log=None,
        slo_labels: dict | None = None,
    ) -> None:
        self.registry = registry
        self.config = config or FleetConfig()
        self.metrics = metrics_registry or MetricsRegistry()
        self.canary = canary
        if canary is not None and version_selector is None:
            version_selector = canary.select
        self.router = FleetRouter(
            self.config.n_replicas, self.config.seed, self.config.vnodes
        )
        self._on_complete = on_complete
        self.event_log = event_log
        self.slo_labels = dict(slo_labels or {})
        self._requests: dict[int, Request] = {}  # in flight, by request id
        self.completed: list[Prediction] = []
        self.shed_ids: list[int] = []
        self.watchers: list[SLOWatcher] = []
        self.replicas: list[ServingRuntime] = []
        for i in range(self.config.n_replicas):
            watcher = SLOWatcher(
                self.config.slo,
                labels={**self.slo_labels, "replica": i},
                event_log=event_log,
            )
            self.watchers.append(watcher)
            runtime = ServingRuntime(
                registry,
                cluster=cluster,
                config=serve_config,
                retry=retry,
                metrics=ServeMetrics(),  # private sink per replica
                party_delay=party_delay,
                tracer=tracer,
                slo=watcher,
                version_selector=version_selector,
                track_prefix=f"replica{i}.",
            )
            runtime.set_on_complete(self._make_sink(i))
            self.replicas.append(runtime)
        self._arrivals: list[tuple[float, int, Request]] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue one arrival (routed when its timestamp comes up)."""
        self._seq += 1
        heapq.heappush(self._arrivals, (request.arrival, self._seq, request))

    def _route_or_shed(self, request: Request, now: float) -> None:
        replica = self.router.route(request.session_key())
        if self._should_shed(replica):
            self.metrics.inc(_PREFIX + "shed")
            self.metrics.inc(_PREFIX + f"replica{replica}.shed")
            self.shed_ids.append(request.request_id)
            if self.event_log is not None:
                self.event_log.emit(
                    now,
                    "serve.fleet",
                    "shed",
                    labels={**self.slo_labels, "replica": replica},
                    request_id=request.request_id,
                    session=request.session_key(),
                    burn_rate=self.watchers[replica].burn_rate(),
                )
            empty = np.zeros(0, dtype=np.float64)
            outcome = Prediction(
                request_id=request.request_id,
                version="",
                margins=empty,
                probabilities=empty,
                degraded=False,
                degraded_rows=np.zeros(0, dtype=bool),
                cache_hits=0,
                admitted=now,
                finished=now,
                deadline_missed=False,
                rejected=True,
                shed=True,
            )
            self.completed.append(outcome)
            if self._on_complete is not None:
                self._on_complete(outcome)
            return
        self.metrics.inc(_PREFIX + "routed")
        self.metrics.inc(_PREFIX + f"replica{replica}.routed")
        self._requests[request.request_id] = request
        self.replicas[replica].submit(request)

    def _should_shed(self, replica: int) -> bool:
        policy = self.config.shed
        if policy is None:
            return False
        watcher = self.watchers[replica]
        if watcher.window_size() < policy.min_window:
            return False
        return watcher.burn_rate() >= policy.burn_threshold

    # ------------------------------------------------------------------
    # Egress / aggregation
    # ------------------------------------------------------------------
    def _make_sink(self, replica: int):
        def sink(outcome: Prediction) -> None:
            self.completed.append(outcome)
            request = self._requests.pop(outcome.request_id, None)
            if self.canary is not None:
                self.canary.observe(request, outcome)
            self._aggregate(replica, outcome)
            if self._on_complete is not None:
                self._on_complete(outcome)

        return sink

    def _aggregate(self, replica: int, outcome: Prediction) -> None:
        """Roll one replica's SLO posture into the shared registry."""
        if outcome.rejected:
            self.metrics.inc(_PREFIX + "rejected")
        else:
            self.metrics.inc(_PREFIX + "completed")
            if outcome.degraded:
                self.metrics.inc(_PREFIX + "degraded")
            if outcome.deadline_missed:
                self.metrics.inc(_PREFIX + "deadline_misses")
        watcher = self.watchers[replica]
        self.metrics.set_gauge(
            _PREFIX + f"replica{replica}.p99", watcher.window_p99()
        )
        self.metrics.set_gauge(
            _PREFIX + f"replica{replica}.burn_rate", watcher.burn_rate()
        )
        self.metrics.set_gauge(
            _PREFIX + "p99_max",
            max(w.window_p99() for w in self.watchers),
        )
        self.metrics.set_gauge(
            _PREFIX + "burn_rate_max",
            max(w.burn_rate() for w in self.watchers),
        )

    # ------------------------------------------------------------------
    # The global event loop
    # ------------------------------------------------------------------
    def run(self) -> list[Prediction]:
        """Drain arrivals + every replica, globally time-ordered.

        At each step the earliest event across the arrival queue and
        all replica loops fires; an arrival beats a replica event at
        the same timestamp (source index -1 < any replica index), and
        replicas tie-break by index.  One total order, so an N-replica
        run is byte-deterministic.
        """
        while True:
            source = -2  # sentinel: nothing pending
            when = 0.0
            if self._arrivals:
                when, source = self._arrivals[0][0], -1
            for index, replica in enumerate(self.replicas):
                t = replica.next_event_time()
                if t is not None and (source == -2 or (t, index) < (when, source)):
                    when, source = t, index
            if source == -2:
                return self.completed
            if source == -1:
                when, _, request = heapq.heappop(self._arrivals)
                self._route_or_shed(request, when)
            else:
                self.replicas[source].step()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def request(self, request_id: int) -> Request | None:
        """The in-flight request for an id (None once completed)."""
        return self._requests.get(request_id)

    def summary(self) -> dict:
        """JSON-ready fleet posture: router, rollup, per-replica SLO."""
        counters = self.metrics.counters(_PREFIX)
        return {
            "n_replicas": self.config.n_replicas,
            "seed": self.config.seed,
            "routed": counters.get("routed", 0),
            "shed": counters.get("shed", 0),
            "completed": counters.get("completed", 0),
            "rejected": counters.get("rejected", 0),
            "degraded": counters.get("degraded", 0),
            "per_replica": [
                {
                    "routed": counters.get(f"replica{i}.routed", 0),
                    "shed": counters.get(f"replica{i}.shed", 0),
                    "slo": self.watchers[i].summary(),
                }
                for i in range(self.config.n_replicas)
            ],
        }
