"""Serving benchmark: naive per-node routing vs. the micro-batched runtime.

Usage::

    python -m repro.serve.bench            # full run, writes BENCH_serve.json
    python -m repro.serve.bench --smoke    # small sizes (tier-1 CI gate)

Both modes are end-to-end: train a small federated model (counted
crypto mode — the protocol is lossless, so the model is the one a real
run would produce), register it, replay a seeded closed-loop workload
against (a) the offline predictor issuing one ``RouteQuery`` per
cross-party node per request and (b) the serving runtime coalescing
routing work per (party, layer) across requests.  Margins must match
bit-for-bit; the interesting numbers are cross-party round trips and
bytes per 1k predictions, p50/p99 latency and throughput.

A third scenario injects a deterministic slow party to exercise the
timeout → retry → degraded-routing path and prove degraded requests are
flagged and counted.

A fourth stage sweeps the **fleet**: the same seeded heavy-tail trace
(``--trace`` — flashcrowd by default) is replayed against 1/2/4/8
replica :class:`~repro.serve.fleet.ServingFleet` deployments (override
with ``--replicas N``), reporting p99 vs. replica count, shed counts
under burn-rate admission control, and bit-parity of every non-shed
prediction against a single-runtime baseline.  A canary stage then
rolls out an identical model (auto-promoted on bit-identical golden
margins) and a deliberately different one (auto-rolled back on the
first golden mismatch, with the active pointer never leaving the
incumbent).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core.config import VF2BoostConfig
from repro.core.inference import FederatedPredictor
from repro.core.trainer import ACTIVE, FederatedTrainer
from repro.fed.channel import RecordingChannel
from repro.fed.cluster import ClusterSpec
from repro.fed.messages import RouteQuery
from repro.gbdt.binning import bin_dataset
from repro.gbdt.params import GBDTParams
from repro.obs import (
    AlertEngine,
    EventLog,
    MetricsRegistry,
    RunReport,
    Tracer,
    band_rule,
    burn_rate_rule,
    channel_report,
    write_chrome_trace,
)
from repro.serve.canary import CanaryConfig, CanaryController
from repro.serve.fleet import FleetConfig, ServingFleet, ShedPolicy
from repro.serve.loadgen import (
    LoadgenConfig,
    make_party_delay,
    make_requests,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ModelRegistry
from repro.fed.retry import RetryPolicy
from repro.serve.session import ServeConfig, ServingRuntime
from repro.serve.slo import SLOPolicy, SLOWatcher

__all__ = ["run_bench", "main"]


def _train(seed: int, n_train: int, n_features: int, params: GBDTParams):
    """Train the demo model over a two-party vertical partition."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n_train, n_features))
    labels = ((features @ rng.normal(size=n_features)) > 0).astype(float)
    full = bin_dataset(features, params.n_bins)
    half = n_features // 2
    parties = [
        full.subset_features(np.arange(half, n_features)),  # Party B (active)
        full.subset_features(np.arange(0, half)),  # Party A (passive)
    ]
    config = VF2BoostConfig.vf2boost(params=params, crypto_mode="counted")
    result = FederatedTrainer(config).fit(parties, labels)
    return result.model, parties


def _build_registry(
    model, parties, event_log=None, event_labels=None
) -> ModelRegistry:
    registry = ModelRegistry(event_log=event_log, event_labels=event_labels)
    registry.register(
        "v1",
        model,
        bin_edges={k: party.cut_points for k, party in enumerate(parties)},
        calibration_codes={k: party.codes for k, party in enumerate(parties)},
    )
    registry.activate("v1")
    return registry


def _naive_baseline(
    registry: ModelRegistry,
    requests,
    cluster: ClusterSpec,
    serve_config: ServeConfig,
) -> dict:
    """Per-request offline prediction with one round trip per node.

    Requests are served by ``concurrency`` independent sequential
    streams (the closed-loop equivalent); each request's latency is its
    own routing chain priced on the same WAN constants as the runtime.
    """
    version = registry.active()
    latencies: list[float] = []
    margins: dict[int, np.ndarray] = {}
    round_trips = 0
    wire_bytes = 0
    for request in requests:
        codes = {
            party: version.bin_rows(party, block)
            for party, block in sorted(request.rows.items())
        }
        channel = RecordingChannel(serve_config.key_bits, active_party=ACTIVE)
        predictor = FederatedPredictor(
            version.model,
            codes,
            channel=channel,
            key_bits=serve_config.key_bits,
            coalesce=False,
        )
        margins[request.request_id] = predictor.predict_margin()
        routed_rows = sum(
            int(message.instance_ids.size)
            for message in channel.log
            if isinstance(message, RouteQuery)
        )
        round_trips += predictor.routing_queries
        wire_bytes += channel.total_bytes()
        latencies.append(
            serve_config.admission_cost
            + 2 * cluster.wan_latency * predictor.routing_queries
            + channel.total_bytes() / cluster.wan_bandwidth
            + serve_config.route_cost_per_row * routed_rows
        )
    ordered = sorted(latencies)
    predictions = sum(request.n_rows() for request in requests)
    return {
        "margins": margins,
        "round_trips": round_trips,
        "round_trips_per_1k": 1000.0 * round_trips / predictions,
        "wire_bytes": wire_bytes,
        "wire_bytes_per_1k": 1000.0 * wire_bytes / predictions,
        "latency_p50": ordered[len(ordered) // 2],
        "latency_p99": ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))],
        "total_stream_seconds": sum(latencies),
    }


def _nearest_rank_p99(latencies: list[float]) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = min(len(ordered) - 1, max(0, -(-99 * len(ordered) // 100) - 1))
    return ordered[rank]


def _fleet_sweep(
    registry: ModelRegistry,
    feature_dims: dict[int, int],
    cluster: ClusterSpec,
    seed: int,
    smoke: bool,
    trace: str,
    replica_counts: list[int],
    event_log=None,
) -> dict:
    """p99 vs. replica count over one seeded heavy-tail trace.

    The fleet serve config prices admission at 2 ms of serial CPU per
    request — a per-replica capacity of 500 req/s — so the trace's
    burst genuinely overloads small fleets and the sweep shows both
    levers: horizontal scale-out flattening p99, and burn-rate shedding
    bounding it when capacity still falls short.  Every non-shed
    prediction is checked bit-identical against a single plain runtime
    serving the identical request list.
    """
    fleet_serve = ServeConfig(
        max_batch_size=64,
        max_delay=0.005,
        admission_cost=2e-3,
        max_queue=4096,
    )
    # latency_slo sits above the ~0.1 s intrinsic WAN latency of an
    # unloaded request and below the admission-backlog latencies an
    # overloaded replica produces, so breaches mean *queueing*.
    slo_policy = SLOPolicy(
        latency_slo=0.15, window=32, error_budget=0.1, burn_alert=2.0
    )
    shed_policy = ShedPolicy(burn_threshold=1.0, min_window=16)
    load = LoadgenConfig(
        n_requests=600 if smoke else 2000,
        feature_dims=feature_dims,
        seed=seed + 200,
        mode="open",
        rate=300.0,
        trace=trace,
        n_sessions=16 if smoke else 64,
        session_skew=1.0,
    )
    requests = make_requests(load)

    # Single-runtime golden baseline: no fleet, no shedding.
    baseline_runtime = ServingRuntime(
        registry, cluster=cluster, config=fleet_serve
    )
    baseline = run_open_loop(baseline_runtime, requests)
    baseline_ok = [o for o in baseline if not o.rejected]
    baseline_margins = {o.request_id: o.margins for o in baseline_ok}

    sweep = []
    for n_replicas in replica_counts:
        metrics = MetricsRegistry()
        fleet = ServingFleet(
            registry,
            FleetConfig(
                n_replicas=n_replicas,
                seed=seed,
                shed=shed_policy,
                slo=slo_policy,
            ),
            cluster=cluster,
            serve_config=fleet_serve,
            metrics_registry=metrics,
            event_log=event_log,
            slo_labels={"scenario": f"fleet{n_replicas}"},
        )
        for request in requests:
            fleet.submit(request)
        completions = fleet.run()
        served = [o for o in completions if not o.rejected]
        parity = all(
            np.array_equal(o.margins, baseline_margins[o.request_id])
            for o in served
        )
        counters = metrics.counters("fleet.")
        sweep.append(
            {
                "replicas": n_replicas,
                "routed": counters.get("routed", 0),
                "shed": counters.get("shed", 0),
                "completed": counters.get("completed", 0),
                "rejected": counters.get("rejected", 0),
                "degraded": counters.get("degraded", 0),
                "deadline_misses": counters.get("deadline_misses", 0),
                "burn_alerts": sum(w.alerts for w in fleet.watchers),
                "p99": _nearest_rank_p99([o.latency for o in served]),
                "shed_fraction": (
                    counters.get("shed", 0) / len(requests) if requests else 0.0
                ),
                "parity_bit_identical": bool(parity),
            }
        )
    # Attribute each scale-out step's p99 movement: diff every entry
    # against the smallest fleet with the shared forensics differ, so
    # the report says *what* moved with the latency (shed volume,
    # degraded routes, burn alerts) — not just that it moved.
    if sweep:
        from repro.obs.forensics import diff_scalar_maps

        attributed = (
            "p99", "shed", "degraded", "deadline_misses", "burn_alerts",
            "completed",
        )
        base = {key: float(sweep[0][key]) for key in attributed}
        for entry in sweep[1:]:
            entry["p99_attribution"] = [
                contribution.to_dict()
                for contribution in diff_scalar_maps(
                    base, {key: float(entry[key]) for key in attributed}
                )
            ]
    return {
        "trace": trace,
        "rate": load.rate,
        "n_requests": load.n_requests,
        "n_sessions": load.n_sessions,
        "admission_cost": fleet_serve.admission_cost,
        "slo": slo_policy.to_dict(),
        "shed_policy": {
            "burn_threshold": shed_policy.burn_threshold,
            "min_window": shed_policy.min_window,
        },
        "baseline_p99": _nearest_rank_p99([o.latency for o in baseline_ok]),
        "sweep": sweep,
    }


def _canary_stage(
    model,
    parties,
    feature_dims: dict[int, int],
    cluster: ClusterSpec,
    seed: int,
    smoke: bool,
    params: GBDTParams,
    n_train: int,
    n_features: int,
    event_log=None,
) -> dict:
    """Two rollouts through the canary state machine.

    ``identical``: the incumbent model re-registered as v2 — golden
    margins match bit-for-bit, so the canary auto-promotes and the
    registry's active pointer hot-swaps to v2.  ``bad``: a model
    trained on different data registered as v2-bad — the first
    canary-served request mismatches the golden replay, the canary
    rolls back, and the active pointer never leaves v1 (zero promoted
    traffic).
    """
    bad_model, bad_parties = _train(seed + 17, n_train, n_features, params)
    load = LoadgenConfig(
        n_requests=160 if smoke else 600,
        feature_dims=feature_dims,
        seed=seed + 300,
        mode="open",
        rate=200.0,
        n_sessions=16 if smoke else 64,
        session_skew=1.0,
    )
    requests = make_requests(load)

    def rollout(candidate: str, candidate_model, candidate_parties) -> dict:
        arm = {"scenario": "canary", "arm": candidate}
        registry = _build_registry(
            model, parties, event_log=event_log, event_labels=arm
        )
        registry.register(
            candidate,
            candidate_model,
            bin_edges={
                k: party.cut_points
                for k, party in enumerate(candidate_parties)
            },
            calibration_codes={
                k: party.codes for k, party in enumerate(candidate_parties)
            },
        )
        controller = CanaryController(
            registry,
            CanaryConfig(
                candidate=candidate,
                traffic_fraction=0.25,
                decision_after=20 if smoke else 60,
                seed=seed,
                expect_identical=True,
            ),
            event_log=event_log,
            labels=arm,
        )
        fleet = ServingFleet(
            registry,
            FleetConfig(n_replicas=2, seed=seed, shed=None),
            cluster=cluster,
            canary=controller,
            event_log=event_log,
            slo_labels=arm,
        )
        for request in requests:
            fleet.submit(request)
        fleet.run()
        summary = controller.summary()
        summary["active_after"] = registry.active().version
        return summary

    return {
        "identical": rollout("v2", model, parties),
        "bad": rollout("v2-bad", bad_model, bad_parties),
    }


def run_bench(
    smoke: bool = False,
    n_requests: int | None = None,
    concurrency: int | None = None,
    seed: int = 7,
    trace_out: str | None = None,
    report_out: str | None = None,
    events_out: str | None = None,
    replicas: list[int] | None = None,
    trace: str = "flashcrowd",
) -> dict:
    """Run every scenario; returns the JSON-ready report.

    Args:
        replicas: fleet sweep replica counts (defaults to ``[1, 2]``
            in smoke mode, ``[1, 2, 4, 8]`` otherwise).
        trace: heavy-tail trace name for the fleet sweep (a
            :data:`~repro.serve.loadgen.TRACES` key).
        trace_out: also write a Chrome trace of the batched runtime's
            admission / request / round-trip spans (Perfetto-loadable).
        report_out: also write a :class:`~repro.obs.RunReport` whose
            phase totals equal the trace's per-category duration sums
            and whose metrics come from the shared registry.
        events_out: also write the bench's unified flight-recorder
            event log as JSONL — every scenario's SLO events plus
            fleet shed decisions, canary / registry transitions and
            alert open/close, each line tagged with its scenario label;
            the path lands in the RunReport under
            ``artifacts["events"]``.
    """
    if smoke:
        params = GBDTParams(n_trees=3, n_layers=4, n_bins=8)
        n_train, n_features = 240, 8
        n_requests = n_requests or 48
        concurrency = concurrency or 16
    else:
        params = GBDTParams(n_trees=6, n_layers=5, n_bins=16)
        n_train, n_features = 600, 16
        n_requests = n_requests or 400
        concurrency = concurrency or 32

    model, parties = _train(seed, n_train, n_features, params)
    registry = _build_registry(model, parties)
    cluster = ClusterSpec()
    serve_config = ServeConfig(max_batch_size=64, max_delay=0.005)

    feature_dims = {0: parties[0].n_features, 1: parties[1].n_features}
    load = LoadgenConfig(
        n_requests=n_requests,
        feature_dims=feature_dims,
        seed=seed,
        mode="closed",
        concurrency=concurrency,
        duplicate_fraction=0.25,
    )
    requests = make_requests(load)

    # --- micro-batched serving runtime --------------------------------
    # One observability sink for the whole batched scenario: serve
    # counters, channel traffic and the span trace all land here.  One
    # flight-recorder event log for the whole bench: SLO watchers,
    # fleet shed decisions, canary transitions, registry hot-swaps and
    # alert transitions all interleave in it, each tagged with its
    # scenario.  Capacity is sized so no smoke or full run evicts.
    obs_registry = MetricsRegistry()
    tracer = Tracer()
    event_log = EventLog(capacity=65536)
    slo = SLOWatcher(
        SLOPolicy(),
        registry=obs_registry,
        labels={"scenario": "batched"},
        event_log=event_log,
    )
    runtime = ServingRuntime(
        registry,
        cluster=cluster,
        config=serve_config,
        channel=RecordingChannel(
            serve_config.key_bits, active_party=ACTIVE, registry=obs_registry
        ),
        metrics=ServeMetrics(obs_registry),
        tracer=tracer,
        slo=slo,
    )
    completions = run_closed_loop(runtime, requests, concurrency)
    snapshot = runtime.snapshot()
    wall = max(outcome.finished for outcome in completions)
    served = {
        "snapshot": snapshot,
        "throughput_rps": len(completions) / wall if wall else 0.0,
        "wall_seconds": wall,
    }

    # --- naive per-node baseline --------------------------------------
    naive = _naive_baseline(registry, requests, cluster, serve_config)
    naive["throughput_rps"] = (
        len(requests) / (naive["total_stream_seconds"] / concurrency)
    )

    # --- parity -------------------------------------------------------
    version = registry.active()
    max_diff = 0.0
    exact = True
    for outcome in completions:
        reference = naive["margins"][outcome.request_id]
        request = requests_by_id(requests)[outcome.request_id]
        codes = {
            party: version.bin_rows(party, block)
            for party, block in sorted(request.rows.items())
        }
        centralized = version.model.predict_margin(codes)
        diff = max(
            float(np.abs(outcome.margins - reference).max(initial=0.0)),
            float(np.abs(outcome.margins - centralized).max(initial=0.0)),
        )
        max_diff = max(max_diff, diff)
        exact = exact and bool(
            np.array_equal(outcome.margins, reference)
            and np.array_equal(outcome.margins, centralized)
        )

    # --- degraded-mode scenario ---------------------------------------
    degraded_load = LoadgenConfig(
        n_requests=min(32, n_requests),
        feature_dims=feature_dims,
        seed=seed + 100,
        mode="closed",
        concurrency=min(8, concurrency),
        slow_party=1,
        slow_probability=0.45,
        slow_delay=1.0,
    )
    degraded_slo = SLOWatcher(
        SLOPolicy(),
        registry=obs_registry,
        labels={"scenario": "degraded"},
        event_log=event_log,
    )
    degraded_runtime = ServingRuntime(
        registry,
        cluster=cluster,
        config=serve_config,
        retry=RetryPolicy(timeout=0.25, max_retries=2),
        party_delay=make_party_delay(degraded_load),
        slo=degraded_slo,
    )
    degraded_completions = run_closed_loop(
        degraded_runtime, make_requests(degraded_load), degraded_load.concurrency
    )
    degraded_snapshot = degraded_runtime.snapshot()

    # --- alert engine over the shared registry ------------------------
    # Evaluated at two deterministic instants: the end of the healthy
    # batched scenario (rules quiet) and the end of the degraded
    # scenario (burn-rate and p99-band rules fire on the gauges the
    # degraded watcher just published).  The second instant is offset
    # past the first because each runtime's simulated clock starts at
    # zero — the offset keeps the alert timeline monotone.
    alert_engine = AlertEngine(
        obs_registry,
        [
            burn_rate_rule("slo-burn", value=1.0),
            band_rule("p99-band", "serve.slo.p99", 0.0, SLOPolicy().latency_slo),
        ],
        event_log=event_log,
        labels={"scenario": "bench"},
    )
    alert_engine.evaluate(wall)
    degraded_wall = max(
        (outcome.finished for outcome in degraded_completions), default=0.0
    )
    alert_engine.evaluate(wall + degraded_wall)

    # --- fleet sweep + canary rollout ---------------------------------
    replica_counts = replicas or ([1, 2] if smoke else [1, 2, 4, 8])
    fleet_report = _fleet_sweep(
        registry,
        feature_dims,
        cluster,
        seed,
        smoke,
        trace,
        replica_counts,
        event_log=event_log,
    )
    fleet_report["canary"] = _canary_stage(
        model,
        parties,
        feature_dims,
        cluster,
        seed,
        smoke,
        params,
        n_train,
        n_features,
        event_log=event_log,
    )

    batched_rt_1k = snapshot["per_1k_predictions"]["round_trips"]
    report = {
        "config": {
            "smoke": smoke,
            "seed": seed,
            "n_requests": n_requests,
            "concurrency": concurrency,
            "n_trees": params.n_trees,
            "n_layers": params.n_layers,
            "max_batch_size": serve_config.max_batch_size,
            "max_delay": serve_config.max_delay,
        },
        "parity": {
            "margins_bit_identical": exact,
            "max_abs_diff": max_diff,
        },
        "naive": {k: v for k, v in naive.items() if k != "margins"},
        "batched": served,
        "ratios": {
            "round_trip_reduction": (
                naive["round_trips_per_1k"] / batched_rt_1k
                if batched_rt_1k
                else float("inf")
            ),
            "byte_reduction": (
                naive["wire_bytes_per_1k"]
                / snapshot["per_1k_predictions"]["wire_bytes"]
                if snapshot["per_1k_predictions"]["wire_bytes"]
                else float("inf")
            ),
            "throughput_gain": (
                served["throughput_rps"] / naive["throughput_rps"]
                if naive["throughput_rps"]
                else float("inf")
            ),
        },
        "degraded_scenario": {
            "requests": degraded_snapshot["counters"].get("requests", 0),
            "degraded_requests": degraded_snapshot["counters"].get(
                "degraded_requests", 0
            ),
            "degraded_rows": degraded_snapshot["counters"].get("degraded_rows", 0),
            "timeouts": degraded_snapshot["counters"].get("timeouts", 0),
            "retries": degraded_snapshot["counters"].get("retries", 0),
            "degraded_rate": degraded_snapshot["rates"]["degraded_rate"],
            "slo": degraded_slo.summary(),
        },
        "slo": slo.summary(),
        "fleet": fleet_report,
        "alerts": alert_engine.summary(),
        "event_log": event_log.summary(),
    }

    if events_out:
        # One unified stream: every scenario's SLO events plus fleet
        # shed decisions, canary/registry transitions and alert
        # open/close, each line tagged with its scenario label.
        report["events_written"] = event_log.write_jsonl(events_out)

    if trace_out or report_out:
        run_report = RunReport(
            kind="serve",
            label="smoke" if smoke else "full",
            config=dict(report["config"]),
            metrics=obs_registry.snapshot(),
            phases=tracer.phase_totals(),
            channels=channel_report(runtime.channel),
            makespan=tracer.makespan,
            spans=[span.to_dict() for span in tracer.spans],
            artifacts={"events": events_out} if events_out else {},
            events=event_log.to_dicts(),
            alerts=alert_engine.summary(),
        )
        if trace_out:
            write_chrome_trace(
                trace_out,
                tracer.spans,
                instants=alert_engine.instant_events() or None,
            )
        if report_out:
            run_report.save(report_out)
    return report


def requests_by_id(requests) -> dict[int, object]:
    """Index a request list by request id."""
    return {request.request_id: request for request in requests}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point. Returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.bench",
        description="Benchmark naive vs. micro-batched federated serving.",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI (seconds)"
    )
    parser.add_argument("--out", default="BENCH_serve.json", help="report path")
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write a Chrome trace (Perfetto) of the batched runtime",
    )
    parser.add_argument(
        "--report-out",
        default=None,
        help="write a RunReport JSON (metrics + phases + spans)",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        help="write the SLO watchers' structured event log as JSONL",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--concurrency", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="sweep only this replica count (default: 1,2,4,8; 1,2 in smoke)",
    )
    parser.add_argument(
        "--trace",
        default="flashcrowd",
        choices=["diurnal", "flashcrowd", "overload"],
        help="heavy-tail arrival trace for the fleet sweep",
    )
    args = parser.parse_args(argv)

    report = run_bench(
        smoke=args.smoke,
        n_requests=args.requests,
        concurrency=args.concurrency,
        seed=args.seed,
        trace_out=args.trace_out,
        report_out=args.report_out,
        events_out=args.events_out,
        replicas=[args.replicas] if args.replicas else None,
        trace=args.trace,
    )
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=1)
    ratios = report["ratios"]
    parity = report["parity"]
    print(f"wrote {args.out}")
    if args.trace_out:
        print(f"wrote {args.trace_out} (open at https://ui.perfetto.dev)")
    if args.report_out:
        print(f"wrote {args.report_out}")
    if args.events_out:
        print(f"wrote {args.events_out} ({report['events_written']} events)")
    print(
        "round trips/1k: naive "
        f"{report['naive']['round_trips_per_1k']:.1f} -> batched "
        f"{report['batched']['snapshot']['per_1k_predictions']['round_trips']:.1f} "
        f"({ratios['round_trip_reduction']:.1f}x fewer)"
    )
    print(
        f"throughput: {ratios['throughput_gain']:.1f}x, "
        f"bytes/1k: {ratios['byte_reduction']:.2f}x fewer, "
        f"margins bit-identical: {parity['margins_bit_identical']}"
    )
    print(
        "degraded scenario: "
        f"{report['degraded_scenario']['degraded_requests']} degraded / "
        f"{report['degraded_scenario']['requests']} requests, "
        f"{report['degraded_scenario']['timeouts']} timeouts, "
        f"{report['degraded_scenario']['retries']} retries"
    )
    fleet = report["fleet"]
    for entry in fleet["sweep"]:
        print(
            f"fleet[{fleet['trace']}] replicas={entry['replicas']}: "
            f"p99 {entry['p99'] * 1000:.1f}ms, shed {entry['shed']}, "
            f"parity {entry['parity_bit_identical']}"
        )
    canary = fleet["canary"]
    print(
        f"canary: identical -> {canary['identical']['state']} "
        f"(active {canary['identical']['active_after']}), "
        f"bad -> {canary['bad']['state']} "
        f"(active {canary['bad']['active_after']})"
    )
    if not parity["margins_bit_identical"]:
        print("PARITY FAILURE: batched margins diverge", file=sys.stderr)
        return 1
    if not all(entry["parity_bit_identical"] for entry in fleet["sweep"]):
        print("PARITY FAILURE: fleet margins diverge", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    raise SystemExit(main())
