"""Cross-request micro-batching of routing queries.

The offline predictor already coalesces one *request's* frontier nodes
into one round trip per (owner, layer).  Under concurrent serving
traffic the same WAN hop is shared by every in-flight request, so the
batcher goes one step further: all routing work headed to one passive
party — across requests, trees, and frontier nodes — is held briefly
and shipped as a single :class:`~repro.fed.messages.RouteQueryBatch`.

The hold policy is the classic dynamic micro-batching pair:

* ``max_batch_size`` — flush immediately once this many work items are
  pending for a party (bounds per-batch work);
* ``max_delay`` — flush no later than this long after the *first* item
  of a batch arrived (bounds queueing latency added to any request).

Timers are generation-stamped: when a size-triggered flush drains a
party's queue, the pending delay timer for that generation becomes
stale and is ignored when it fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fed.messages import RouteQueryBatch

__all__ = ["RouteWork", "MicroBatcher"]


@dataclass
class RouteWork:
    """One routing query of one request, destined for one party.

    Attributes:
        request_id: originating request.
        tree_index / node_id: the frontier node to route.
        rows: request-local row indices sitting on the node.
        instance_ids: the same rows as owner-arena ids (what goes on
            the wire; the owner indexes its code arena with these).
        version: model version the request was admitted under — items
            of different versions legally share one batch during a
            hot-swap, and the owner must answer each against the right
            tree table.
    """

    request_id: int
    tree_index: int
    node_id: int
    rows: np.ndarray
    instance_ids: np.ndarray
    version: str = ""


@dataclass
class _PartyQueue:
    items: list[RouteWork] = field(default_factory=list)
    generation: int = 0
    timer_armed: bool = False


class MicroBatcher:
    """Per-party pending queues under a size/delay flush policy."""

    def __init__(self, max_batch_size: int = 64, max_delay: float = 0.005) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay
        self._queues: dict[int, _PartyQueue] = {}
        self._batch_counter = 0

    def _queue(self, party: int) -> _PartyQueue:
        if party not in self._queues:
            self._queues[party] = _PartyQueue()
        return self._queues[party]

    def pending(self, party: int) -> int:
        """Items currently held for a party."""
        return len(self._queue(party).items)

    def add(
        self, party: int, work: RouteWork, now: float
    ) -> tuple[str, float, int] | tuple[str, list[RouteWork], int] | None:
        """Enqueue one work item; tell the caller what to do next.

        Returns:
            ``("flush", items, generation)`` when the size bound was
            hit (the queue is drained), ``("timer", deadline,
            generation)`` when a delay timer must be armed for the
            batch this item opened, or ``None`` when the item simply
            joined an already-armed batch.
        """
        queue = self._queue(party)
        queue.items.append(work)
        if len(queue.items) >= self.max_batch_size:
            return ("flush", self._drain(queue), queue.generation - 1)
        if not queue.timer_armed:
            queue.timer_armed = True
            return ("timer", now + self.max_delay, queue.generation)
        return None

    def on_timer(self, party: int, generation: int) -> list[RouteWork] | None:
        """Delay timer fired; drain unless the batch already flushed."""
        queue = self._queue(party)
        if generation != queue.generation or not queue.items:
            return None
        return self._drain(queue)

    def force_flush(self, party: int) -> list[RouteWork] | None:
        """Drain a party's queue unconditionally (shutdown paths)."""
        queue = self._queue(party)
        if not queue.items:
            return None
        return self._drain(queue)

    @staticmethod
    def _drain(queue: _PartyQueue) -> list[RouteWork]:
        items = queue.items
        queue.items = []
        queue.generation += 1
        queue.timer_armed = False
        return items

    def next_batch_id(self) -> int:
        """Monotonic id stamped on each flushed batch."""
        self._batch_counter += 1
        return self._batch_counter

    @staticmethod
    def build_query(
        sender: int, party: int, batch_id: int, items: list[RouteWork]
    ) -> RouteQueryBatch:
        """Materialize the wire message for one flushed batch.

        Work items are kept in arrival order — the answer batch mirrors
        it, so the runtime can zip answers back to work items 1:1.
        """
        return RouteQueryBatch(
            sender,
            party,
            batch_id=batch_id,
            items=[
                (work.tree_index, work.node_id, work.instance_ids)
                for work in items
            ],
        )
