"""Versioned model registry with atomic hot-swap.

A serving deployment never *replaces* a model — it registers a new
version next to the old one, validates it, then atomically flips the
active pointer between requests.  In-flight requests keep the version
they were admitted under (each session captures a :class:`ModelVersion`
reference at admission), so a swap can never mix two models inside one
prediction.

Registration validates the whole artifact set up front:

* the skeleton and every split owner's sidecar must be present and
  consistent (:func:`repro.core.serialization.load_model` with
  ``require_complete=True`` raises :class:`ModelFormatError` otherwise);
* every party referenced by a split must come with bin edges, so raw
  feature rows can be quantized at admission with the exact cut points
  the model was trained on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.serialization import ModelFormatError, load_model
from repro.core.trainer import FederatedModel
from repro.gbdt.binning import bin_column
from repro.serve.resilience import DegradedRouter, majority_directions

__all__ = ["ModelVersion", "ModelRegistry"]


@dataclass(frozen=True)
class ModelVersion:
    """One immutable, fully validated model artifact set.

    Attributes:
        version: registry label (e.g. ``"v1"``).
        model: reconstructed federated model, all sidecars applied.
        bin_edges: ``party -> per-feature ascending cut points`` used to
            quantize raw feature rows at admission.
        degraded: fallback router for this model's passive nodes.
    """

    version: str
    model: FederatedModel
    bin_edges: dict[int, list[np.ndarray]] = field(default_factory=dict)
    degraded: DegradedRouter = field(default_factory=DegradedRouter)

    def split_owners(self) -> set[int]:
        """Every party owning at least one split node."""
        return set(self.model.split_counts_by_owner())

    def bin_rows(self, party: int, rows: np.ndarray) -> np.ndarray:
        """Quantize one party's raw feature rows with the stored edges."""
        edges = self.bin_edges[party]
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != len(edges):
            raise ValueError(
                f"party {party} rows must be 2-D with {len(edges)} features"
            )
        codes = np.empty(rows.shape, dtype=np.uint16)
        for j, cuts in enumerate(edges):
            codes[:, j] = bin_column(rows[:, j], cuts)
        return codes


class ModelRegistry:
    """Holds every registered version; exactly one may be active.

    The swap (:meth:`activate`) is a single reference assignment —
    atomic under the in-process serving model, and the pattern a
    multi-process deployment would implement with an atomic pointer in
    shared config.

    Args:
        event_log: optional shared
            :class:`~repro.obs.events.EventLog`; activations and
            rollbacks are recorded under subsystem ``"serve.registry"``
            (kinds ``hot_swap`` / ``rollback``).
        event_labels: constant labels merged into those events.
    """

    def __init__(self, event_log=None, event_labels: dict | None = None) -> None:
        self._versions: dict[str, ModelVersion] = {}
        self._order: list[str] = []
        self._active: ModelVersion | None = None
        self.event_log = event_log
        self.event_labels = dict(event_labels or {})

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        version: str,
        model: FederatedModel,
        bin_edges: dict[int, list[np.ndarray]],
        calibration_codes: dict[int, np.ndarray] | None = None,
    ) -> ModelVersion:
        """Validate and store one model version (does not activate it).

        Args:
            version: unique label.
            model: reconstructed model; every split node must carry its
                owner's feature/bin details.
            bin_edges: per-party cut points for admission binning.
            calibration_codes: optional per-party bin codes used to
                precompute majority-direction fallbacks for degraded
                mode; without it the fallback is uniform-left.

        Raises:
            ModelFormatError: on an incomplete artifact set.
            ValueError: on a duplicate version label.
        """
        if version in self._versions:
            raise ValueError(f"version {version!r} already registered")
        self._validate(model, bin_edges)
        defaults = (
            majority_directions(model, calibration_codes)
            if calibration_codes
            else {}
        )
        entry = ModelVersion(
            version=version,
            model=model,
            bin_edges={party: list(edges) for party, edges in bin_edges.items()},
            degraded=DegradedRouter(defaults),
        )
        self._versions[version] = entry
        self._order.append(version)
        return entry

    def register_from_files(
        self,
        version: str,
        shared_path: str,
        sidecar_paths: list[str],
        bin_edges: dict[int, list[np.ndarray]],
        calibration_codes: dict[int, np.ndarray] | None = None,
    ) -> ModelVersion:
        """Load skeleton+sidecars from disk and register them.

        ``require_complete=True`` makes a missing owner sidecar fail
        here, at registration, with a :class:`ModelFormatError` — not
        mid-request with an unroutable node.
        """
        model = load_model(shared_path, sidecar_paths, require_complete=True)
        return self.register(version, model, bin_edges, calibration_codes)

    @staticmethod
    def _validate(
        model: FederatedModel, bin_edges: dict[int, list[np.ndarray]]
    ) -> None:
        for t, tree in enumerate(model.trees):
            for node in tree.nodes.values():
                if node.is_leaf:
                    continue
                if node.feature < 0 or node.bin_index < 0:
                    raise ModelFormatError(
                        f"tree {t} node {node.node_id}: owner {node.owner} "
                        "split details missing (sidecar not applied)"
                    )
                if node.owner not in bin_edges:
                    raise ModelFormatError(
                        f"no bin edges for party {node.owner}, which owns "
                        f"tree {t} node {node.node_id}"
                    )
                if node.feature >= len(bin_edges[node.owner]):
                    raise ModelFormatError(
                        f"party {node.owner} bin edges cover "
                        f"{len(bin_edges[node.owner])} features but tree {t} "
                        f"node {node.node_id} splits on feature {node.feature}"
                    )

    # ------------------------------------------------------------------
    # Activation / lookup
    # ------------------------------------------------------------------
    def activate(self, version: str, now: float = 0.0) -> ModelVersion:
        """Atomically make a registered version the serving default.

        ``now`` timestamps the hot-swap event on the simulated clock
        (0.0 for control-plane activations outside any event loop).
        """
        entry = self._versions.get(version)
        if entry is None:
            raise KeyError(f"version {version!r} is not registered")
        previous = self._active.version if self._active is not None else ""
        self._active = entry
        if self.event_log is not None:
            self.event_log.emit(
                now,
                "serve.registry",
                "hot_swap",
                labels=dict(self.event_labels),
                version=version,
                previous=previous,
            )
        return entry

    def active(self) -> ModelVersion:
        """The currently serving version.

        Raises:
            LookupError: when nothing has been activated yet.
        """
        if self._active is None:
            raise LookupError("no model version activated")
        return self._active

    def get(self, version: str) -> ModelVersion:
        """Look up a version by label."""
        return self._versions[version]

    def versions(self) -> list[str]:
        """Labels in registration order."""
        return list(self._order)

    def rollback(self, now: float = 0.0) -> ModelVersion:
        """Re-activate the version registered before the active one."""
        if self._active is None:
            raise LookupError("no model version activated")
        position = self._order.index(self._active.version)
        if position == 0:
            raise LookupError("no earlier version to roll back to")
        if self.event_log is not None:
            self.event_log.emit(
                now,
                "serve.registry",
                "rollback",
                labels=dict(self.event_labels),
                from_version=self._active.version,
                to_version=self._order[position - 1],
            )
        return self.activate(self._order[position - 1], now=now)
