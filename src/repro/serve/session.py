"""Request lifecycle and the serving event loop.

A request travels: admission queue → per-party binning of its raw
feature rows (with the model's stored bin edges) → prediction cache
probe → layered tree traversal (local splits resolved inline,
cross-party splits coalesced through the :class:`MicroBatcher`) →
margin → probability.  The whole runtime advances on *simulated* time:
arrivals come stamped by the load generator, WAN hops are priced by the
:class:`~repro.fed.cluster.ClusterSpec`, and compute by fixed unit
costs — so a serving experiment is exactly repeatable, the same
contract the training-side simulator keeps.

Concurrency model: a deterministic discrete-event loop (a heap of
``(time, seq, event)``).  Any number of requests are in flight at once;
their cross-party routing work shares batches.  Hot-swapping the model
registry between events never mixes versions inside a request — each
session pins the :class:`~repro.serve.registry.ModelVersion` it was
admitted under.

Failure path: an unanswered batch is retried with exponential backoff
(:class:`~repro.fed.retry.RetryPolicy`); once the retry budget
is exhausted the affected nodes are routed by the registry's
majority-direction fallback and every touched prediction is flagged
``degraded`` instead of failing (see :mod:`repro.serve.resilience` for
the privacy argument).

Admission is priced on a *serial* per-runtime CPU: binning + cache
probing of consecutive requests queue behind one another, so one
runtime has a finite capacity of ``1 / admission_cost`` requests per
simulated second.  That queueing is what makes horizontal scale-out
(:mod:`repro.serve.fleet`) and burn-rate load shedding meaningful —
overload shows up as admission backlog, exactly the resource a replica
shard takes over.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.inference import (
    answer_route_items,
    apply_route,
    route_local,
    split_frontier,
)
from repro.core.trainer import ACTIVE
from repro.fed.channel import RecordingChannel
from repro.fed.cluster import ClusterSpec
from repro.fed.messages import RouteAnswerBatch, RouteQueryBatch
from repro.gbdt.loss import sigmoid
from repro.fed.retry import PartyHealth, RetryPolicy
from repro.obs.tracer import Tracer
from repro.serve.batcher import MicroBatcher, RouteWork
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ModelRegistry, ModelVersion

__all__ = ["ServeConfig", "Request", "Prediction", "ServingRuntime"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving runtime.

    Attributes:
        max_batch_size: flush a party's batch at this many work items.
        max_delay: flush a party's batch this long after its first item.
        deadline: per-request latency SLO in simulated seconds; misses
            are counted (the answer is still delivered).
        max_queue: admission bound on concurrently in-flight requests.
        enable_cache: serve repeated rows from the prediction cache.
        degraded_enabled: fall back to majority-direction routing when a
            party exhausts its retry budget (``False`` = keep waiting,
            i.e. retry errors surface as huge latencies).
        key_bits: Paillier modulus assumed for wire accounting.
        admission_cost: simulated seconds to bin + cache-probe a request.
        route_cost_per_row: owner-side seconds per routed instance id.
    """

    max_batch_size: int = 64
    max_delay: float = 0.005
    deadline: float = 2.0
    max_queue: int = 1024
    enable_cache: bool = True
    degraded_enabled: bool = True
    key_bits: int = 2048
    admission_cost: float = 1e-4
    route_cost_per_row: float = 2e-7


@dataclass
class Request:
    """One inference request: raw feature rows, one block per party.

    ``session_id`` groups requests of one logical client; the fleet
    router consistent-hashes it so a session sticks to one replica
    (cache affinity).  ``-1`` means "no session": routing falls back to
    the request id.
    """

    request_id: int
    arrival: float
    rows: dict[int, np.ndarray]
    session_id: int = -1

    def n_rows(self) -> int:
        """Instances carried by the request."""
        return int(next(iter(self.rows.values())).shape[0])

    def session_key(self) -> int:
        """Routing key: the session when set, else the request id."""
        return self.session_id if self.session_id >= 0 else self.request_id


@dataclass
class Prediction:
    """Completed (or rejected) request outcome."""

    request_id: int
    version: str
    margins: np.ndarray
    probabilities: np.ndarray
    degraded: bool
    degraded_rows: np.ndarray
    cache_hits: int
    admitted: float
    finished: float
    deadline_missed: bool
    rejected: bool = False
    shed: bool = False

    @property
    def latency(self) -> float:
        """Arrival-to-completion simulated seconds."""
        return self.finished - self.admitted


class _Arena:
    """Append-only per-party code store with amortized growth.

    Wire messages carry arena row ids; the owning party indexes this
    buffer to answer them — the in-process stand-in for each party's
    request-row store keyed by a shared request id.
    """

    def __init__(self) -> None:
        self._buf: np.ndarray | None = None
        self._size = 0

    def append(self, codes: np.ndarray) -> int:
        """Store rows; returns the offset of the first one."""
        n, d = codes.shape
        if self._buf is None:
            self._buf = np.empty((max(64, n), d), dtype=np.uint16)
        while self._size + n > self._buf.shape[0]:
            grown = np.empty(
                (2 * self._buf.shape[0], self._buf.shape[1]), dtype=np.uint16
            )
            grown[: self._size] = self._buf[: self._size]
            self._buf = grown
        offset = self._size
        self._buf[offset : offset + n] = codes
        self._size += n
        return offset

    def view(self) -> np.ndarray:
        """The filled prefix (valid arena ids index into this)."""
        assert self._buf is not None
        return self._buf[: self._size]


@dataclass(eq=False)
class _Session:
    """Mutable traversal state of one in-flight request."""

    request: Request
    version: ModelVersion
    admitted: float
    deadline: float
    codes: dict[int, np.ndarray]
    offsets: dict[int, int]
    leaf_weights: np.ndarray  # (n_rows, n_trees)
    margins: np.ndarray  # filled for cache-hit rows up front
    cached_mask: np.ndarray  # rows answered by the cache
    degraded_mask: np.ndarray
    frontier: dict[int, dict[int, np.ndarray]]
    outstanding: int = 0
    finished: bool = False


@dataclass(eq=False)
class _InFlight:
    """One routing batch on the wire (possibly a retry attempt)."""

    party: int
    batch_id: int
    items: list[RouteWork]
    attempt: int
    answers: list[tuple[int, int, np.ndarray]]


class ServingRuntime:
    """Online federated inference over a registry, batcher and channel.

    Args:
        registry: model versions; :meth:`ModelRegistry.active` at each
            request's admission decides which model serves it.
        cluster: WAN latency/bandwidth used to price round trips.
        config: batching/deadline/cache knobs.
        retry: per-party timeout and backoff policy.
        channel: strict :class:`RecordingChannel` for wire accounting
            and the privacy guard (created when omitted).
        metrics: counters sink (created when omitted).
        party_delay: deterministic fault injection —
            ``(party, batch_id, attempt) -> extra seconds`` added to
            that attempt's answer time (``None`` = healthy parties).
        tracer: optional :class:`~repro.obs.tracer.Tracer` collecting
            admission / request / round-trip spans on the simulated
            clock (exportable as a Chrome trace).
        slo: optional :class:`~repro.serve.slo.SLOWatcher`; fed every
            completion (including rejections) and every batch timeout
            on the simulated clock.
        version_selector: optional ``request -> ModelVersion`` hook
            deciding which registered version serves a request (canary
            traffic slicing); defaults to :meth:`ModelRegistry.active`.
        track_prefix: prefix for every tracer track name — a fleet
            passes ``"replica3."`` so per-replica spans land on their
            own Perfetto tracks.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        cluster: ClusterSpec | None = None,
        config: ServeConfig | None = None,
        retry: RetryPolicy | None = None,
        channel: RecordingChannel | None = None,
        metrics: ServeMetrics | None = None,
        party_delay: Callable[[int, int, int], float] | None = None,
        tracer: Tracer | None = None,
        slo=None,
        version_selector: Callable[[Request], ModelVersion] | None = None,
        track_prefix: str = "",
    ) -> None:
        self.registry = registry
        self.cluster = cluster or ClusterSpec()
        self.config = config or ServeConfig()
        self.retry = retry or RetryPolicy()
        self.channel = channel or RecordingChannel(
            self.config.key_bits, active_party=ACTIVE
        )
        self.metrics = metrics or ServeMetrics()
        self.party_delay = party_delay
        self.tracer = tracer
        self.slo = slo
        self.version_selector = version_selector
        self.track_prefix = track_prefix
        self.batcher = MicroBatcher(
            self.config.max_batch_size, self.config.max_delay
        )
        self.health: dict[int, PartyHealth] = {}
        self.completed: list[Prediction] = []
        self._sessions: dict[int, _Session] = {}
        self._arenas: dict[int, _Arena] = {}
        self._cache: dict[tuple[str, bytes], float] = {}
        self._events: list[tuple[float, int, str, object]] = []
        self._seq = 0
        self._on_complete: Callable[[Prediction], None] | None = None
        #: the serial admission CPU is busy until this simulated time
        self._cpu_free = 0.0

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, when: float, kind: str, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._events, (when, self._seq, kind, payload))

    def submit(self, request: Request) -> None:
        """Schedule a request's arrival (callable mid-run: closed loop)."""
        self._push(request.arrival, "arrive", request)

    def set_on_complete(
        self, on_complete: Callable[[Prediction], None] | None
    ) -> None:
        """Install the completion callback without entering :meth:`run`
        (a fleet steps the loop itself via :meth:`step`)."""
        self._on_complete = on_complete

    def next_event_time(self) -> float | None:
        """Timestamp of the earliest pending event (None when idle)."""
        return self._events[0][0] if self._events else None

    def step(self) -> None:
        """Pop and process exactly one event (fleet interleaving)."""
        now, _, kind, payload = heapq.heappop(self._events)
        self._dispatch(now, kind, payload)

    def _dispatch(self, now: float, kind: str, payload: object) -> None:
        if kind == "arrive":
            self._admit(payload, now)
        elif kind == "timer":
            party, generation = payload
            items = self.batcher.on_timer(party, generation)
            if items:
                self._flush(party, items, now)
        elif kind == "send":
            self._send_attempt(payload, now)
        elif kind == "deliver":
            self._deliver(payload, now)
        elif kind == "timeout":
            self._timeout(payload, now)

    def run(
        self, on_complete: Callable[[Prediction], None] | None = None
    ) -> list[Prediction]:
        """Drain the event loop; returns completions in finish order."""
        self._on_complete = on_complete
        while self._events:
            self.step()
        return self.completed

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self, request: Request, now: float) -> None:
        self.metrics.inc("requests")
        self.metrics.queue_depth.observe(float(len(self._sessions)))
        if len(self._sessions) >= self.config.max_queue:
            self.metrics.inc("rejected")
            empty = np.zeros(0, dtype=np.float64)
            outcome = Prediction(
                request_id=request.request_id,
                version="",
                margins=empty,
                probabilities=empty,
                degraded=False,
                degraded_rows=np.zeros(0, dtype=bool),
                cache_hits=0,
                admitted=now,
                finished=now,
                deadline_missed=False,
                rejected=True,
            )
            self.completed.append(outcome)
            if self.slo is not None:
                self.slo.on_completion(outcome, now)
            if self._on_complete is not None:
                self._on_complete(outcome)
            return
        version = (
            self.version_selector(request)
            if self.version_selector is not None
            else self.registry.active()
        )
        # Binning + cache probing occupy the serial admission CPU, so
        # concurrent arrivals queue: max(now, cpu_free) is the backlog.
        admitted = max(now, self._cpu_free) + self.config.admission_cost
        self._cpu_free = admitted
        if self.tracer is not None:
            self.tracer.add(
                f"admit#{request.request_id}",
                now,
                admitted,
                category="Admit",
                track=self.track_prefix + "B.serve",
                request_id=request.request_id,
            )
        n_rows = request.n_rows()
        n_trees = len(version.model.trees)

        codes: dict[int, np.ndarray] = {}
        offsets: dict[int, int] = {}
        for party in sorted(version.bin_edges):
            party_codes = version.bin_rows(party, request.rows[party])
            codes[party] = party_codes
            offsets[party] = self._arena(party).append(party_codes)

        session = _Session(
            request=request,
            version=version,
            admitted=now,
            deadline=now + self.config.deadline,
            codes=codes,
            offsets=offsets,
            leaf_weights=np.zeros((n_rows, n_trees), dtype=np.float64),
            margins=np.zeros(n_rows, dtype=np.float64),
            cached_mask=np.zeros(n_rows, dtype=bool),
            degraded_mask=np.zeros(n_rows, dtype=bool),
            frontier={},
        )
        self._sessions[request.request_id] = session

        miss_rows = self._probe_cache(session, n_rows)
        if miss_rows.size:
            root = {0: miss_rows}
            session.frontier = {
                t: dict(root) for t in range(n_trees)
            }
        self._advance(session, admitted)

    def _arena(self, party: int) -> _Arena:
        if party not in self._arenas:
            self._arenas[party] = _Arena()
        return self._arenas[party]

    def _row_key(self, session: _Session, row: int) -> tuple[str, bytes]:
        parts = [
            session.codes[party][row].tobytes()
            for party in sorted(session.codes)
        ]
        return (session.version.version, b"|".join(parts))

    def _probe_cache(self, session: _Session, n_rows: int) -> np.ndarray:
        """Fill cached margins; returns the rows that must traverse."""
        if not self.config.enable_cache:
            return np.arange(n_rows, dtype=np.int64)
        misses = []
        for row in range(n_rows):
            self.metrics.inc("cache_lookups")
            hit = self._cache.get(self._row_key(session, row))
            if hit is None:
                misses.append(row)
            else:
                self.metrics.inc("cache_hits")
                session.margins[row] = hit
                session.cached_mask[row] = True
        return np.asarray(misses, dtype=np.int64)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def _advance(self, session: _Session, now: float) -> None:
        """Push every tree's frontier as deep as local data allows."""
        if session.finished:
            return
        model = session.version.model
        progress = True
        while progress:
            progress = False
            for tree_index in sorted(session.frontier):
                frontier = session.frontier[tree_index]
                if not frontier:
                    continue
                tree = model.trees[tree_index]
                layer = split_frontier(tree, frontier, local_party=ACTIVE)
                next_frontier: dict[int, np.ndarray] = {}
                for node_id, rows in layer.leaves.items():
                    session.leaf_weights[rows, tree_index] = tree.nodes[
                        node_id
                    ].weight
                for node_id, rows in layer.local.items():
                    goes_left = route_local(
                        session.codes[ACTIVE], tree.nodes[node_id], rows
                    )
                    apply_route(tree, node_id, rows, goes_left, next_frontier)
                for owner in sorted(layer.remote):
                    for node_id in sorted(layer.remote[owner]):
                        rows = layer.remote[owner][node_id]
                        self._enqueue_remote(
                            session, owner, tree_index, node_id, rows, now
                        )
                session.frontier[tree_index] = next_frontier
                if next_frontier:
                    progress = True
        self._maybe_finish(session, now)

    def _enqueue_remote(
        self,
        session: _Session,
        owner: int,
        tree_index: int,
        node_id: int,
        rows: np.ndarray,
        now: float,
    ) -> None:
        work = RouteWork(
            request_id=session.request.request_id,
            tree_index=tree_index,
            node_id=node_id,
            rows=rows,
            instance_ids=rows + session.offsets[owner],
            version=session.version.version,
        )
        session.outstanding += 1
        verdict = self.batcher.add(owner, work, now)
        if verdict is None:
            return
        if verdict[0] == "flush":
            self._flush(owner, verdict[1], now)
        else:  # ("timer", deadline, generation)
            self._push(verdict[1], "timer", (owner, verdict[2]))

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------
    def _flush(self, party: int, items: list[RouteWork], now: float) -> None:
        batch_id = self.batcher.next_batch_id()
        self.metrics.batch_occupancy.observe(float(len(items)))
        self.metrics.batch_rows.observe(
            float(sum(int(w.instance_ids.size) for w in items))
        )
        self._send_attempt(
            _InFlight(
                party=party, batch_id=batch_id, items=items, attempt=1, answers=[]
            ),
            now,
        )

    def _send_attempt(self, record: _InFlight, now: float) -> None:
        """Ship one attempt of a batch and schedule its outcome."""
        party = record.party
        self.metrics.inc("round_trips")
        if record.attempt > 1:
            self.metrics.inc("retries")
        query = self.batcher.build_query(ACTIVE, party, record.batch_id, record.items)
        self.channel.send(query)
        received = self.channel.receive(ACTIVE, party)
        assert isinstance(received, RouteQueryBatch)
        # Owner side: answer each item against the model version it was
        # admitted under, indexing the owner's code arena.
        arena = self._arena(party).view()
        answers: list[tuple[int, int, np.ndarray]] = []
        for work, (tree_index, node_id, instance_ids) in zip(
            record.items, received.items
        ):
            model = self.registry.get(work.version).model
            answers.extend(
                answer_route_items(model, arena, [(tree_index, node_id, instance_ids)])
            )
        answer_msg = RouteAnswerBatch(
            party, ACTIVE, batch_id=record.batch_id, items=answers
        )
        self.channel.send(answer_msg)
        delivered = self.channel.receive(party, ACTIVE)
        assert isinstance(delivered, RouteAnswerBatch)
        record.answers = delivered.items

        wire_bytes = query.payload_bytes(self.config.key_bits) + answer_msg.payload_bytes(
            self.config.key_bits
        )
        rtt = (
            2 * self.cluster.wan_latency
            + wire_bytes / self.cluster.wan_bandwidth
            + self.config.route_cost_per_row * query.row_count()
        )
        if self.party_delay is not None:
            rtt += self.party_delay(party, record.batch_id, record.attempt)
        if rtt <= self.retry.timeout or not self.config.degraded_enabled:
            done, outcome = now + rtt, "deliver"
        else:
            done, outcome = now + self.retry.timeout, "timeout"
        if self.tracer is not None:
            self.tracer.add(
                f"rt#{record.batch_id}.{record.attempt}",
                now,
                done,
                category="RoundTrip",
                track=f"{self.track_prefix}party{party}.wire",
                lane=record.batch_id % 8,
                batch_id=record.batch_id,
                attempt=record.attempt,
                outcome=outcome,
            )
        self._push(done, outcome, record)

    def _deliver(self, record: _InFlight, now: float) -> None:
        self._party_health(record.party).record_success()
        touched: list[_Session] = []
        for work, (tree_index, node_id, goes_left) in zip(
            record.items, record.answers
        ):
            session = self._sessions.get(work.request_id)
            if session is None or session.finished:
                continue  # already resolved (e.g. degraded completion)
            tree = session.version.model.trees[tree_index]
            apply_route(
                tree, node_id, work.rows, goes_left, session.frontier[tree_index]
            )
            session.outstanding -= 1
            if session not in touched:
                touched.append(session)
        for session in touched:
            self._advance(session, now)

    def _timeout(self, record: _InFlight, now: float) -> None:
        self.metrics.inc("timeouts")
        self._party_health(record.party).record_timeout()
        if self.slo is not None:
            self.slo.on_timeout(
                record.party,
                record.batch_id,
                record.attempt,
                now,
                exhausted=record.attempt > self.retry.max_retries,
            )
        if record.attempt <= self.retry.max_retries:
            retry = _InFlight(
                party=record.party,
                batch_id=record.batch_id,
                items=record.items,
                attempt=record.attempt + 1,
                answers=[],
            )
            self._push(now + self.retry.backoff(record.attempt), "send", retry)
            return
        # Retry budget exhausted: degrade every item of the batch.
        touched: list[_Session] = []
        for work in record.items:
            session = self._sessions.get(work.request_id)
            if session is None or session.finished:
                continue
            router = session.version.degraded
            goes_left = router.route(work.tree_index, work.node_id, work.rows.size)
            tree = session.version.model.trees[work.tree_index]
            apply_route(
                tree,
                work.node_id,
                work.rows,
                goes_left,
                session.frontier[work.tree_index],
            )
            session.degraded_mask[work.rows] = True
            session.outstanding -= 1
            if session not in touched:
                touched.append(session)
        for session in touched:
            self._advance(session, now)

    def _party_health(self, party: int) -> PartyHealth:
        if party not in self.health:
            self.health[party] = PartyHealth(party)
        return self.health[party]

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _maybe_finish(self, session: _Session, now: float) -> None:
        if session.finished or session.outstanding > 0:
            return
        if any(frontier for frontier in session.frontier.values()):
            return
        session.finished = True
        del self._sessions[session.request.request_id]

        model = session.version.model
        fresh = ~session.cached_mask
        if fresh.any():
            margins = np.full(
                int(fresh.sum()), model.base_score, dtype=np.float64
            )
            for t in range(session.leaf_weights.shape[1]):
                margins += model.learning_rate * session.leaf_weights[fresh, t]
            session.margins[fresh] = margins
        degraded_rows = session.degraded_mask.copy()
        if self.config.enable_cache:
            for row in np.flatnonzero(fresh & ~degraded_rows):
                self._cache[self._row_key(session, int(row))] = float(
                    session.margins[row]
                )

        n_rows = session.request.n_rows()
        self.metrics.inc("completed")
        self.metrics.inc("predictions", n_rows)
        self.metrics.latency.observe(now - session.admitted)
        if self.tracer is not None:
            self.tracer.add(
                f"req#{session.request.request_id}",
                session.admitted,
                now,
                category="Request",
                track=self.track_prefix + "requests",
                lane=session.request.request_id % 16,
                request_id=session.request.request_id,
                rows=n_rows,
            )
        missed = now > session.deadline
        if missed:
            self.metrics.inc("deadline_misses")
        if degraded_rows.any():
            self.metrics.inc("degraded_requests")
            self.metrics.inc("degraded_rows", int(degraded_rows.sum()))
        outcome = Prediction(
            request_id=session.request.request_id,
            version=session.version.version,
            margins=session.margins.copy(),
            probabilities=sigmoid(session.margins),
            degraded=bool(degraded_rows.any()),
            degraded_rows=degraded_rows,
            cache_hits=int(session.cached_mask.sum()),
            admitted=session.admitted,
            finished=now,
            deadline_missed=missed,
        )
        self.completed.append(outcome)
        if self.slo is not None:
            self.slo.on_completion(outcome, now)
        if self._on_complete is not None:
            self._on_complete(outcome)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Metrics snapshot with the channel's byte ledger folded in."""
        self.metrics.wire_bytes = self.channel.total_bytes()
        return self.metrics.snapshot()
