"""Staged rollout: canary a registered version on a traffic slice.

The state machine is deliberately small::

    canary ──(golden metrics hold for `decision_after` requests)──► promoted
       └────(any golden violation)────────────────────────────────► rolled_back

While in ``canary``, a deterministic slice of sessions — chosen by a
seeded hash of the session key, so the same sessions canary on every
run — is served by the candidate :class:`~repro.serve.registry.
ModelVersion` through the runtimes' ``version_selector`` seam; the
registry's *active* pointer still names the incumbent, so every other
request is untouched.  The verdict compares golden metrics per
:class:`CanaryConfig`:

* ``expect_identical=True`` (infra-only rollout, model unchanged): the
  candidate's margins must be **bit-identical** to the incumbent's for
  every non-degraded row, checked against an offline golden replay of
  the incumbent (:func:`golden_margins`).  A single mismatch rolls the
  canary back immediately.
* ``expect_identical=False`` (model changed): the candidate's
  nearest-rank p99 latency and degraded-request rate must stay inside
  multiplicative bands of the incumbent's, measured over the same
  observation period.

Promotion reuses the registry's existing hot-swap path — one atomic
:meth:`~repro.serve.registry.ModelRegistry.activate` call.  Rollback is
equally atomic by construction: the active pointer never moved, so
flipping the controller state back to the incumbent is a single
assignment and **zero** requests are ever served by a promoted bad
version.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.inference import apply_route, route_local, split_frontier
from repro.core.trainer import ACTIVE
from repro.obs.events import Event
from repro.serve.registry import ModelRegistry, ModelVersion
from repro.serve.session import Prediction, Request

__all__ = ["CanaryConfig", "CanaryController", "golden_margins"]


def golden_margins(version: ModelVersion, rows: dict[int, np.ndarray]) -> np.ndarray:
    """Offline golden replay: margins of ``version`` on raw rows.

    Traverses every tree with all parties' codes held locally — no
    event loop, no batching — accumulating leaf weights in the same
    order as the serving runtime (base score, then one
    ``learning_rate * weights`` add per tree), so the result is
    bit-identical to what an undegraded serve of the same version
    produces.
    """
    codes = {
        party: version.bin_rows(party, rows[party])
        for party in sorted(version.bin_edges)
    }
    n = next(iter(codes.values())).shape[0]
    model = version.model
    margins = np.full(n, model.base_score, dtype=np.float64)
    for tree in model.trees:
        weights = np.zeros(n, dtype=np.float64)
        frontier: dict[int, np.ndarray] = {0: np.arange(n, dtype=np.int64)}
        while frontier:
            layer = split_frontier(tree, frontier, local_party=ACTIVE)
            next_frontier: dict[int, np.ndarray] = {}
            for node_id, node_rows in layer.leaves.items():
                weights[node_rows] = tree.nodes[node_id].weight
            for node_id, node_rows in layer.local.items():
                goes_left = route_local(
                    codes[ACTIVE], tree.nodes[node_id], node_rows
                )
                apply_route(tree, node_id, node_rows, goes_left, next_frontier)
            for owner in sorted(layer.remote):
                for node_id in sorted(layer.remote[owner]):
                    node_rows = layer.remote[owner][node_id]
                    goes_left = route_local(
                        codes[owner], tree.nodes[node_id], node_rows
                    )
                    apply_route(
                        tree, node_id, node_rows, goes_left, next_frontier
                    )
            frontier = next_frontier
        margins += model.learning_rate * weights
    return margins


def _nearest_rank_p99(latencies: list[float]) -> float:
    """Same nearest-rank p99 the SLO watcher reports (0 when empty)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = min(len(ordered) - 1, max(0, -(-99 * len(ordered) // 100) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class CanaryConfig:
    """Rollout policy for one candidate version.

    Attributes:
        candidate: registry label of the version under canary.
        traffic_fraction: deterministic slice of sessions served by the
            candidate while the canary is open.
        decision_after: candidate-served completions to observe before
            a promote verdict (violations roll back earlier).
        seed: slicing seed — which sessions canary is a pure function
            of (seed, session key).
        expect_identical: the golden contract.  ``True`` demands
            bit-identical margins vs. the incumbent (model unchanged);
            ``False`` compares p99/degraded-rate bands (model changed).
        p99_band: candidate p99 may be at most this multiple of the
            incumbent's observed p99 (banded mode only).
        degraded_band: same, for the degraded-request rate.
        degraded_allowance: absolute degraded-rate floor applied when
            the incumbent shows zero degradation (a strictly-zero band
            would fail a candidate on one unlucky WAN timeout).
        min_baseline: incumbent-served completions required before a
            banded verdict (defers the decision, never blocks rollback).
    """

    candidate: str
    traffic_fraction: float = 0.05
    decision_after: int = 128
    seed: int = 0
    expect_identical: bool = True
    p99_band: float = 1.5
    degraded_band: float = 2.0
    degraded_allowance: float = 0.0
    min_baseline: int = 32

    def __post_init__(self) -> None:
        if not 0.0 < self.traffic_fraction < 1.0:
            raise ValueError("traffic_fraction must be in (0, 1)")
        if self.decision_after < 1:
            raise ValueError("decision_after must be >= 1")


class CanaryController:
    """Drives one candidate version through the canary state machine.

    Plug :meth:`select` into every runtime's ``version_selector`` and
    feed :meth:`observe` from the completion stream (the
    :class:`~repro.serve.fleet.ServingFleet` wires both when given a
    controller).  All decisions run on completion timestamps from the
    simulated clock — the controller is as deterministic as the loop
    it watches.

    Args:
        registry: the model registry holding incumbent and candidate.
        config: the rollout policy.
        event_log: optional shared
            :class:`~repro.obs.events.EventLog`; every transition is
            mirrored into it under subsystem ``"serve.canary"``.
        labels: constant labels (scenario / arm tags) merged into every
            emitted event.
        incident_store: optional
            :class:`~repro.obs.incident.IncidentStore`; a rollback
            snapshots a ``canary_rollback`` post-mortem bundle there
            (path recorded in :attr:`incidents`).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: CanaryConfig,
        event_log=None,
        labels: dict | None = None,
        incident_store=None,
    ) -> None:
        self.registry = registry
        self.config = config
        self.incumbent = registry.active()
        self.candidate = registry.get(config.candidate)
        if self.candidate.version == self.incumbent.version:
            raise ValueError("candidate is already the active version")
        self.state = "canary"
        self.event_log = event_log
        self.labels = dict(labels or {})
        self.incident_store = incident_store
        self.incidents: list[str] = []
        self._records: list[Event] = []
        self.mismatches = 0
        self.canary_served = 0
        self.baseline_served = 0
        self._canary_latencies: list[float] = []
        self._baseline_latencies: list[float] = []
        self._canary_degraded = 0
        self._baseline_degraded = 0

    # ------------------------------------------------------------------
    # Traffic slicing
    # ------------------------------------------------------------------
    def _in_slice(self, key: int) -> bool:
        digest = hashlib.sha256(
            f"{self.config.seed}:canary:{key}".encode()
        ).digest()[:8]
        point = int.from_bytes(digest, "big") / float(1 << 64)
        return point < self.config.traffic_fraction

    def select(self, request: Request) -> ModelVersion:
        """The ``version_selector`` hook: slice while the canary is
        open, otherwise whatever the registry says is active."""
        if self.state == "canary" and self._in_slice(request.session_key()):
            return self.candidate
        return self.registry.active()

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    def observe(self, request: Request | None, outcome: Prediction) -> None:
        """Ingest one completion (no-op once the canary is decided)."""
        if self.state != "canary" or outcome.rejected:
            return
        if outcome.version == self.candidate.version:
            self.canary_served += 1
            self._canary_latencies.append(outcome.latency)
            if outcome.degraded:
                self._canary_degraded += 1
            if self.config.expect_identical and request is not None:
                golden = golden_margins(self.incumbent, request.rows)
                clean = ~outcome.degraded_rows
                if not np.array_equal(
                    outcome.margins[clean], golden[clean]
                ):
                    self.mismatches += 1
                    self._emit(
                        "golden_mismatch",
                        outcome.finished,
                        request_id=outcome.request_id,
                    )
                    self._rollback(outcome.finished)
                    return
            if self.canary_served >= self.config.decision_after:
                self._decide(outcome.finished)
        else:
            self.baseline_served += 1
            self._baseline_latencies.append(outcome.latency)
            if outcome.degraded:
                self._baseline_degraded += 1

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    def _decide(self, now: float) -> None:
        if self.config.expect_identical:
            # Every observed canary margin matched bit-for-bit (a
            # mismatch would have rolled back before reaching here).
            self._promote(now)
            return
        if self.baseline_served < self.config.min_baseline:
            return  # defer: not enough incumbent evidence yet
        canary_p99 = _nearest_rank_p99(self._canary_latencies)
        baseline_p99 = _nearest_rank_p99(self._baseline_latencies)
        canary_rate = self._canary_degraded / self.canary_served
        baseline_rate = self._baseline_degraded / self.baseline_served
        degraded_limit = max(
            self.config.degraded_band * baseline_rate,
            self.config.degraded_allowance,
        )
        if canary_p99 > self.config.p99_band * baseline_p99:
            self._emit(
                "p99_band_violation", now, canary=canary_p99, baseline=baseline_p99
            )
            self._rollback(now)
        elif canary_rate > degraded_limit:
            self._emit(
                "degraded_band_violation",
                now,
                canary=canary_rate,
                baseline=baseline_rate,
            )
            self._rollback(now)
        else:
            self._promote(now)

    def _promote(self, now: float) -> None:
        self.registry.activate(self.candidate.version, now=now)  # hot-swap
        self.state = "promoted"
        self._emit("promoted", now, version=self.candidate.version)

    def _rollback(self, now: float) -> None:
        # The active pointer never moved off the incumbent, so rollback
        # is one state assignment — atomically zero candidate traffic
        # from the next select() on.
        self.state = "rolled_back"
        self._emit("rolled_back", now, version=self.candidate.version)
        if self.incident_store is not None:
            from repro.obs.incident import snapshot_incident

            bundle = snapshot_incident(
                "canary_rollback",
                label=self.candidate.version,
                time=now,
                event_log=self.event_log,
                context={
                    "candidate": self.candidate.version,
                    "incumbent": self.incumbent.version,
                    "mismatches": self.mismatches,
                    "canary_served": self.canary_served,
                    "baseline_served": self.baseline_served,
                    "state": self.state,
                },
            )
            self.incidents.append(self.incident_store.save(bundle))

    def _emit(self, event: str, now: float, **fields) -> None:
        record = Event(
            time=now,
            subsystem="serve.canary",
            kind=event,
            labels=dict(self.labels),
            payload=dict(fields),
        )
        self._records.append(record)
        if self.event_log is not None:
            self.event_log.append(record)

    @property
    def events(self) -> list[dict]:
        """Transitions in the pre-unification flat shape (compat)."""
        return [record.legacy_dict() for record in self._records]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready rollout posture."""
        return {
            "candidate": self.candidate.version,
            "incumbent": self.incumbent.version,
            "state": self.state,
            "canary_served": self.canary_served,
            "baseline_served": self.baseline_served,
            "mismatches": self.mismatches,
            "canary_p99": _nearest_rank_p99(self._canary_latencies),
            "baseline_p99": _nearest_rank_p99(self._baseline_latencies),
            "events": list(self.events),
        }
