"""The named systems of the paper's evaluation (§6.3 competitors).

Every system is a :class:`SystemSpec` bundling the protocol
configuration, cost model and cluster topology under which the
protocol scheduler prices a workload trace:

=================  ==================================================
system             modeling
=================  ==================================================
``xgboost``        non-federated plaintext GBDT on co-located data
``xgboost_b``      same, on Party B's columns only
``vf_mock``        federated protocol, mocked (plaintext) crypto
``vf_gbdt``        full crypto, none of the §4/§5 optimizations
``vf2boost``       full crypto, all four optimizations
``secureboost``    FATE SecureBoost: sequential protocol, Pythonic
                   runtime (12.5x compute multiplier), single machine
``fedlearner``     Fedlearner: vectorized histograms (8.9x multiplier)
                   but no intra-party distribution
=================  ==================================================

The compute multipliers encode the slowdowns the paper *measured* for
these competitors (12.11-12.85x and 8.61-9.20x respectively versus
VF-GBDT); see DESIGN.md §1 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bench.costmodel import CostModel
from repro.core.config import VF2BoostConfig
from repro.core.protocol import ProtocolScheduler, ScheduleResult
from repro.core.trace import TraceLog
from repro.fed.cluster import PAPER_CLUSTER, ClusterSpec
from repro.gbdt.params import GBDTParams

__all__ = ["SystemSpec", "SYSTEMS", "get_system", "simulate_plaintext_gbdt"]


@dataclass(frozen=True)
class SystemSpec:
    """A named end-to-end system configuration.

    Attributes:
        name: registry key.
        display: human-readable label used in benchmark tables.
        federated: whether the system runs the cross-party protocol.
        make_config: builds the protocol config from GBDT params.
        make_cost: builds the cost model.
        make_cluster: builds the cluster topology.
    """

    name: str
    display: str
    federated: bool
    make_config: Callable[[GBDTParams], VF2BoostConfig]
    make_cost: Callable[[], CostModel]
    make_cluster: Callable[[], ClusterSpec]

    def schedule(
        self,
        trace: TraceLog,
        params: GBDTParams,
        cluster: ClusterSpec | None = None,
    ) -> ScheduleResult:
        """Price a workload trace under this system.

        Args:
            cluster: optional topology override — the paper runs the
                small datasets on a single machine per party (§6.3).
        """
        if not self.federated:
            raise ValueError(f"{self.name} is not a federated system")
        scheduler = ProtocolScheduler(
            self.make_config(params), self.make_cost(), cluster or self.make_cluster()
        )
        return scheduler.schedule(trace)

    def seconds_per_tree(
        self,
        trace: TraceLog,
        params: GBDTParams,
        cluster: ClusterSpec | None = None,
    ) -> float:
        """Average simulated seconds per boosting round."""
        if self.federated:
            result = self.schedule(trace, params, cluster)
            return result.makespan / max(1, len(trace.trees))
        return simulate_plaintext_gbdt(
            trace, params, self.make_cost(), cluster or self.make_cluster()
        )


def _single_machine() -> ClusterSpec:
    """One 16-core machine per party (the competitors' deployment)."""
    return ClusterSpec(n_workers=1, cores_per_worker=16)


SYSTEMS: dict[str, SystemSpec] = {
    "xgboost": SystemSpec(
        name="xgboost",
        display="XGBoost (co-located)",
        federated=False,
        make_config=lambda p: VF2BoostConfig.vf_mock(params=p),
        make_cost=CostModel.paper,
        make_cluster=lambda: PAPER_CLUSTER,
    ),
    "xgboost_b": SystemSpec(
        name="xgboost_b",
        display="XGBoost (Party B only)",
        federated=False,
        make_config=lambda p: VF2BoostConfig.vf_mock(params=p),
        make_cost=CostModel.paper,
        make_cluster=lambda: PAPER_CLUSTER,
    ),
    "vf_mock": SystemSpec(
        name="vf_mock",
        display="VF-MOCK",
        federated=True,
        make_config=lambda p: VF2BoostConfig.vf_mock(params=p),
        make_cost=CostModel.paper,
        make_cluster=lambda: PAPER_CLUSTER,
    ),
    "vf_gbdt": SystemSpec(
        name="vf_gbdt",
        display="VF-GBDT",
        federated=True,
        make_config=lambda p: VF2BoostConfig.vf_gbdt(params=p),
        make_cost=CostModel.paper,
        make_cluster=lambda: PAPER_CLUSTER,
    ),
    "vf2boost": SystemSpec(
        name="vf2boost",
        display="VF2Boost",
        federated=True,
        make_config=lambda p: VF2BoostConfig.vf2boost(params=p),
        make_cost=CostModel.paper,
        make_cluster=lambda: PAPER_CLUSTER,
    ),
    "secureboost": SystemSpec(
        name="secureboost",
        display="SecureBoost (FATE)",
        federated=True,
        make_config=lambda p: VF2BoostConfig.vf_gbdt(params=p),
        make_cost=CostModel.fate_like,
        make_cluster=_single_machine,
    ),
    "fedlearner": SystemSpec(
        name="fedlearner",
        display="Fedlearner",
        federated=True,
        make_config=lambda p: VF2BoostConfig.vf_gbdt(params=p),
        make_cost=CostModel.fedlearner_like,
        make_cluster=_single_machine,
    ),
}


def get_system(name: str) -> SystemSpec:
    """Look up a system by name.

    Raises:
        KeyError: for unknown system names.
    """
    try:
        return SYSTEMS[name]
    except KeyError:
        raise KeyError(f"unknown system {name!r}; known: {sorted(SYSTEMS)}") from None


def simulate_plaintext_gbdt(
    trace: TraceLog,
    params: GBDTParams,
    cost: CostModel,
    cluster: ClusterSpec,
) -> float:
    """Seconds per tree of non-federated plaintext GBDT on the trace.

    XGBoost-style training has no cross-party phases: per layer it
    accumulates ``2 * instances * d_total`` statistics (halved beyond
    the root by the subtraction trick) and evaluates every bin once.
    """
    d_total = trace.active_shape.nnz_per_instance + sum(
        shape.nnz_per_instance for shape in trace.passive_shapes
    )
    bins_total = trace.active_shape.histogram_bins + sum(
        shape.histogram_bins for shape in trace.passive_shapes
    )
    lanes = cluster.compute_lanes
    total = 0.0
    for tree in trace.trees:
        for layer in tree.layers:
            subtraction = 1.0 if layer.depth == 0 else 0.55
            accum = 2 * layer.n_instances * d_total * cost.plain_accum() * subtraction
            split = len(layer.nodes) * bins_total * cost.split_bin()
            total += (accum + split) / lanes
    return total / max(1, len(trace.trees))
