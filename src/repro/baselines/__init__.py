"""Baseline systems the paper compares against (§6.3)."""

from repro.baselines.systems import (
    SYSTEMS,
    SystemSpec,
    get_system,
    simulate_plaintext_gbdt,
)

__all__ = ["SYSTEMS", "SystemSpec", "get_system", "simulate_plaintext_gbdt"]
