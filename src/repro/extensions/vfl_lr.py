"""Vertical federated logistic regression with re-ordered reduction.

§5.1's discussion claims the re-ordered accumulation technique carries
beyond GBDT: "for the vertical federated LR [84], we can accelerate
the reduction of encrypted gradients in a mini-batch". This module
substantiates that claim with a working two-party vertical federated
LR in the same threat model as the GBDT trainer (semi-honest, Party B
holds labels and the private key):

1. both parties compute partial margins ``u_p = X_p w_p``; Party A's
   partial margin is disclosed to B (a 1-D projection of A's features,
   the standard disclosure of coordinator-free VFL-LR protocols — see
   the privacy note below);
2. B computes residuals ``d = sigmoid(u_A + u_B) - y``, encrypts them
   and ships ``[[d]]`` to A (labels stay hidden, exactly like the
   gradient stream of the GBDT protocol);
3. A computes its encrypted gradient per feature,
   ``[[g_j]] = sum_i x_ij (x) [[d_i]]``, reducing each feature's terms
   with either naive or **re-ordered** accumulation;
4. A blinds ``[[g_j + r_j]]`` with a random mask, B decrypts and
   returns the masked plaintext, A unmasks and takes its step. B never
   sees A's gradient; A never sees labels or residuals.

Privacy note: disclosing ``u_A`` reveals one linear projection of A's
features per iteration. Protocols that hide even this exist (third
party, or secret-shared margins) but are orthogonal here — the point
of this module is the crypto-path structure that §5.1 talks about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.accumulation import ExponentWorkspace
from repro.crypto.ciphertext import EncryptedNumber, PaillierContext
from repro.fed.channel import RecordingChannel
from repro.fed.messages import CountedCipherPayload
from repro.gbdt.loss import sigmoid
from repro.gbdt.metrics import auc, logloss

__all__ = ["VflLrConfig", "VflLrResult", "VerticalLogisticRegression"]


@dataclass
class VflLrConfig:
    """Hyper-parameters of the federated LR trainer.

    Attributes:
        iterations: full-batch gradient steps.
        learning_rate: step size.
        reg_lambda: L2 penalty.
        key_bits: Paillier modulus size.
        exponent_jitter: encoding jitter ``E`` — the knob that makes
            re-ordered reduction matter.
        reordered_reduction: use per-exponent workspaces for the
            gradient reduction (§5.1's claim).
        seed: RNG seed (keygen, masks).
    """

    iterations: int = 10
    learning_rate: float = 0.5
    reg_lambda: float = 0.01
    key_bits: int = 256
    exponent_jitter: int = 4
    reordered_reduction: bool = True
    seed: int = 0


@dataclass
class VflLrResult:
    """Trained weights plus per-iteration diagnostics."""

    weights_a: np.ndarray
    weights_b: np.ndarray
    intercept: float
    losses: list[float] = field(default_factory=list)
    channel: RecordingChannel | None = None
    scalings: int = 0
    additions: int = 0

    def predict_proba(self, features_a: np.ndarray, features_b: np.ndarray) -> np.ndarray:
        """Joint prediction (needs both parties' columns)."""
        margin = (
            features_a @ self.weights_a
            + features_b @ self.weights_b
            + self.intercept
        )
        return sigmoid(margin)

    def validation_auc(self, features_a, features_b, labels) -> float:
        """AUC of the joint model."""
        return auc(labels, self.predict_proba(features_a, features_b))


class VerticalLogisticRegression:
    """Two-party vertical federated LR over the Paillier substrate."""

    def __init__(self, config: VflLrConfig | None = None) -> None:
        self.config = config or VflLrConfig()

    def fit(
        self,
        features_a: np.ndarray,
        features_b: np.ndarray,
        labels: np.ndarray,
    ) -> VflLrResult:
        """Train on vertically partitioned features.

        Args:
            features_a: passive party's columns (no labels).
            features_b: active party's columns.
            labels: active party's binary labels.
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        n = features_a.shape[0]
        if features_b.shape[0] != n or labels.shape[0] != n:
            raise ValueError("parties must hold aligned instances")

        context = PaillierContext.create(
            config.key_bits, seed=config.seed, jitter=config.exponent_jitter
        )
        public = context.public_context()
        channel = RecordingChannel(config.key_bits, active_party=0)

        weights_a = np.zeros(features_a.shape[1])
        weights_b = np.zeros(features_b.shape[1])
        intercept = 0.0
        losses: list[float] = []

        for _ in range(config.iterations):
            # (1) partial margins; A's is disclosed (see module docstring).
            margin = features_a @ weights_a + features_b @ weights_b + intercept
            prob = sigmoid(margin)
            residuals = prob - labels
            losses.append(logloss(labels, prob))

            # (2) B encrypts residuals for A (labels protected).
            encrypted = [context.encrypt(float(d)) for d in residuals]
            channel.send(
                CountedCipherPayload(0, 1, kind="residuals", n_ciphers=n)
            )

            # (3) A's encrypted gradient, reduced per feature.
            masked = []
            masks = rng.uniform(-1.0, 1.0, size=features_a.shape[1])
            for j in range(features_a.shape[1]):
                terms = (
                    public.multiply(encrypted[i], float(features_a[i, j]))
                    for i in range(n)
                )
                total = self._reduce(public, terms)
                masked.append(public.add_plain(total, float(masks[j] * n)))
            channel.send(
                CountedCipherPayload(
                    1, 0, kind="masked_grads", n_ciphers=len(masked)
                )
            )

            # (4) B decrypts the blinded gradients and returns them.
            revealed = np.array([context.decrypt(c) for c in masked])
            channel.send(
                CountedCipherPayload(
                    0, 1, kind="unmasked", n_ciphers=0,
                    extra_bytes=8 * len(masked),
                )
            )
            grad_a = revealed / n - masks
            grad_b = features_b.T @ residuals / n
            grad_intercept = float(residuals.mean())

            weights_a -= config.learning_rate * (
                grad_a + config.reg_lambda * weights_a
            )
            weights_b -= config.learning_rate * (
                grad_b + config.reg_lambda * weights_b
            )
            intercept -= config.learning_rate * grad_intercept

        return VflLrResult(
            weights_a=weights_a,
            weights_b=weights_b,
            intercept=intercept,
            losses=losses,
            channel=channel,
            scalings=public.stats.scalings,
            additions=public.stats.additions,
        )

    def _reduce(self, context: PaillierContext, terms) -> EncryptedNumber:
        """Sum encrypted gradient terms, naive or re-ordered (§5.1)."""
        if self.config.reordered_reduction:
            workspace = ExponentWorkspace(context)
            for term in terms:
                workspace.add(term)
            return workspace.finalize()
        total: EncryptedNumber | None = None
        for term in terms:
            total = term if total is None else context.add(total, term)
        assert total is not None
        return total
