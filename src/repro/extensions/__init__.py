"""Extensions beyond the paper's core system (its §5 discussions & §8).

* :mod:`repro.extensions.vfl_lr` — vertical federated logistic
  regression with re-ordered gradient reduction (§5.1 discussion);
* gradient-pair packing lives in :mod:`repro.crypto.pairing` (§5.2
  discussion / BatchCrypt direction).
"""

from repro.extensions.vfl_lr import (
    VerticalLogisticRegression,
    VflLrConfig,
    VflLrResult,
)

__all__ = ["VerticalLogisticRegression", "VflLrConfig", "VflLrResult"]
