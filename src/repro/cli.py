"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro table1
    python -m repro table2 fig7
    python -m repro all
    python -m repro list
    python -m repro trace run.report.json -o run.trace.json

Each experiment prints its rendered table; heavier experiments accept
the same keyword knobs through the library API (see
``repro.bench.experiments``).  The ``trace`` subcommand re-exports the
spans stored in a saved :class:`~repro.obs.RunReport` as Chrome
trace-event JSON (openable at https://ui.perfetto.dev) and prints the
report's phase breakdown.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments
from repro.gbdt.params import GBDTParams

__all__ = ["main", "EXPERIMENTS"]

_FAST = GBDTParams(n_trees=6, n_layers=5, n_bins=16)


def _fig10() -> str:
    return experiments.run_fig10(params=_FAST)[1]


def _table4() -> str:
    return experiments.run_table4(params=_FAST)[1]


def _table6() -> str:
    return experiments.run_table6(params=_FAST)[1]


EXPERIMENTS: dict[str, tuple[str, object]] = {
    "fig7": ("crypto operation throughputs (measured)", experiments.run_fig7),
    "table1": ("root-node ablation (analytic)", lambda: experiments.run_table1()[1]),
    "table2": ("per-tree ablation (analytic)", lambda: experiments.run_table2()[1]),
    "table3": ("dataset inventory", experiments.run_table3),
    "fig10": ("convergence vs time, census/a9a (counted)", _fig10),
    "table4": ("end-to-end large datasets (hybrid)", _table4),
    "table5": ("worker scalability (analytic)", lambda: experiments.run_table5()[1]),
    "table6": ("party scalability (hybrid)", _table6),
    "util": ("§6.2 resource utilization (analytic)", lambda: experiments.run_resource_utilization()[1]),
}


def _trace_main(argv: list[str]) -> int:
    """``repro trace``: saved RunReport -> Chrome trace + phase table."""
    from repro.bench.report import phase_table
    from repro.obs import RunReport

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Export the Chrome trace stored in a saved run report.",
    )
    parser.add_argument("report", help="RunReport JSON (e.g. from --report-out)")
    parser.add_argument(
        "-o",
        "--out",
        default=None,
        help="trace output path (default: <report stem>.trace.json)",
    )
    args = parser.parse_args(argv)

    report = RunReport.load(args.report)
    out = args.out
    if out is None:
        stem = args.report[:-5] if args.report.endswith(".json") else args.report
        out = f"{stem}.trace.json"
    try:
        n_spans = report.write_chrome_trace(out)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"wrote {out} ({n_spans} spans; open at https://ui.perfetto.dev)")
    if report.phases:
        print(
            phase_table(
                report.phases,
                title=f"{report.kind} run {report.label!r} phase breakdown:",
            )
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point. Returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate VF2Boost (SIGMOD 2021) evaluation artifacts.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names (see 'list'), or 'all'; "
        "or 'trace <report.json>' to export a saved trace",
    )
    args = parser.parse_args(argv)

    requested = args.experiments or ["list"]
    if requested == ["list"] or "list" in requested:
        print("available experiments:")
        for name, (description, _) in EXPERIMENTS.items():
            print(f"  {name:<8} {description}")
        print("  all      run every experiment")
        print("  trace    export Chrome trace from a saved run report")
        return 0
    if "all" in requested:
        requested = list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in requested:
        __, runner = EXPERIMENTS[name]
        start = time.perf_counter()
        print(f"==> {name}")
        print(runner())
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
