"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro table1
    python -m repro table2 fig7
    python -m repro fig7 util --json
    python -m repro all
    python -m repro list
    python -m repro trace run.report.json -o run.trace.json
    python -m repro trace run.report.json --summary
    python -m repro whatif --speedup powmod=2 --break-even powmod
    python -m repro bench-gate --db BENCH_perf.json --explain
    python -m repro calibrate -o profile.json --check
    python -m repro train --trees 8 --checkpoint-dir ckpts --fault-seed 7
    python -m repro faults --sweep
    python -m repro events serve.events.jsonl --subsystem serve.slo
    python -m repro incidents list --dir incidents
    python -m repro incidents diff 1 2 --dir incidents

Each experiment prints its rendered table; heavier experiments accept
the same keyword knobs through the library API (see
``repro.bench.experiments``).  ``--json`` switches the experiments
that produce structured data (``fig7``, ``util``) to machine-readable
output.  The ``trace`` subcommand re-exports the spans stored in a
saved :class:`~repro.obs.RunReport` as Chrome trace-event JSON
(openable at https://ui.perfetto.dev) and prints the report's phase
breakdown; ``--summary`` prints the phase table and per-lane
utilization without writing any file.  ``whatif`` re-prices the
analytic schedule under perturbed unit costs and predicts makespan /
Figure-7 deltas plus the break-even point where the critical-path
bottleneck shifts lanes.  ``bench-gate`` runs the benchmark scenarios, gates them
against the append-only performance database and appends the new
entries when the gate passes (exit 1 on regression; ``--faults`` adds
the recovery-cost scenario, ``--serve`` the fleet-serving scenario,
``--explain`` prints a per-phase/per-op forensic diff of any
regression).  ``calibrate`` microbenchmarks this host
into a calibration profile and optionally checks its cost ratios for
drift against the paper references.  ``train`` runs a federated
training job on synthetic data with optional fault injection,
checkpointing and resume; ``faults`` sweeps fault rates and verifies
the fault-free model is reproduced bit-exactly at every point.
``events`` filters and pretty-prints a flight-recorder stream (an
``--events-out`` JSONL or the ``events`` field of a saved RunReport);
``incidents`` lists, shows and diffs the post-mortem bundles a
failure drops into ``--incident-dir`` (``--smoke`` runs a tiny
crash-and-resume training job end to end and checks the bundle it
produces — the tier-1 wiring).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments
from repro.gbdt.params import GBDTParams

__all__ = ["main", "EXPERIMENTS"]

_FAST = GBDTParams(n_trees=6, n_layers=5, n_bins=16)


def _fig10() -> str:
    return experiments.run_fig10(params=_FAST)[1]


def _table4() -> str:
    return experiments.run_table4(params=_FAST)[1]


def _table6() -> str:
    return experiments.run_table6(params=_FAST)[1]


EXPERIMENTS: dict[str, tuple[str, object]] = {
    "fig7": ("crypto operation throughputs (measured)", experiments.run_fig7),
    "table1": ("root-node ablation (analytic)", lambda: experiments.run_table1()[1]),
    "table2": ("per-tree ablation (analytic)", lambda: experiments.run_table2()[1]),
    "table3": ("dataset inventory", experiments.run_table3),
    "fig10": ("convergence vs time, census/a9a (counted)", _fig10),
    "table4": ("end-to-end large datasets (hybrid)", _table4),
    "table5": ("worker scalability (analytic)", lambda: experiments.run_table5()[1]),
    "table6": ("party scalability (hybrid)", _table6),
    "util": ("§6.2 resource utilization (analytic)", lambda: experiments.run_resource_utilization()[1]),
    "critical": ("critical-path attribution + annotated Gantt (analytic)", lambda: experiments.run_critical_path()[1]),
}


def _trace_main(argv: list[str]) -> int:
    """``repro trace``: saved RunReport -> Chrome trace + phase table."""
    from repro.bench.report import format_table, phase_table
    from repro.obs import RunReport, Tracer

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Export the Chrome trace stored in a saved run report.",
    )
    parser.add_argument("report", help="RunReport JSON (e.g. from --report-out)")
    parser.add_argument(
        "-o",
        "--out",
        default=None,
        help="trace output path (default: <report stem>.trace.json)",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print the phase table and per-lane utilization only; "
        "no trace file is written",
    )
    args = parser.parse_args(argv)

    report = RunReport.load(args.report)
    if args.summary:
        phases = report.phases
        tracer = Tracer()
        tracer.extend(report.span_objects())
        if not phases:
            phases = tracer.phase_totals()
        if phases:
            print(
                phase_table(
                    phases,
                    title=f"{report.kind} run {report.label!r} phase breakdown:",
                )
            )
        utilization = tracer.utilization()
        if utilization:
            busy = tracer.lane_busy()
            print(
                format_table(
                    ["lane", "busy (s)", "utilization"],
                    [
                        [f"{track}#{lane}", f"{busy[(track, lane)]:.3f}",
                         f"{fraction:6.1%}"]
                        for (track, lane), fraction in utilization.items()
                    ],
                    title="per-lane utilization "
                    f"(makespan {tracer.makespan:.3f}s):",
                )
            )
        elif not phases:
            print(
                f"report {report.label!r} holds neither phases nor spans; "
                "nothing to summarize",
                file=sys.stderr,
            )
            return 1
        return 0
    out = args.out
    if out is None:
        stem = args.report[:-5] if args.report.endswith(".json") else args.report
        out = f"{stem}.trace.json"
    try:
        n_spans = report.write_chrome_trace(out)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"wrote {out} ({n_spans} spans; open at https://ui.perfetto.dev)")
    if report.phases:
        print(
            phase_table(
                report.phases,
                title=f"{report.kind} run {report.label!r} phase breakdown:",
            )
        )
    return 0


def _whatif_main(argv: list[str]) -> int:
    """``repro whatif``: predict makespan deltas under cheaper ops."""
    import json

    from repro.obs.whatif import break_even, parse_speedups, run_whatif

    parser = argparse.ArgumentParser(
        prog="repro whatif",
        description=(
            "Re-price the recorded task graph under a perturbed cost "
            "model and report predicted makespan / Figure-7 deltas and "
            "critical-path bottleneck shifts — the decision tool for "
            "crypto-backend work."
        ),
    )
    parser.add_argument(
        "--speedup",
        action="append",
        default=[],
        metavar="OP=FACTOR",
        help="speed an op family up by FACTOR (e.g. powmod=2, wan=4); "
        "repeatable",
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="price from a calibration profile JSON (repro calibrate -o) "
        "instead of the paper cost model",
    )
    parser.add_argument(
        "--break-even",
        default=None,
        metavar="OP",
        help="sweep OP's speedup factor until the critical-path "
        "bottleneck shifts to another lane",
    )
    parser.add_argument("--instances", type=int, default=None)
    parser.add_argument("--features", type=int, default=None)
    parser.add_argument("--trees", type=int, default=None)
    parser.add_argument("--layers", type=int, default=None)
    parser.add_argument("--bins", type=int, default=None)
    parser.add_argument("--json", action="store_true", help="JSON output")
    args = parser.parse_args(argv)

    cost = None
    if args.profile:
        from repro.bench.calibrate import CalibrationProfile
        from repro.bench.costmodel import CostModel

        cost = CostModel.from_profile(CalibrationProfile.load(args.profile))
    shape = None
    overrides = {
        "n_instances": args.instances,
        "n_features": args.features,
        "n_trees": args.trees,
        "n_layers": args.layers,
        "n_bins": args.bins,
    }
    if any(value is not None for value in overrides.values()):
        from repro.obs.whatif import DEFAULT_SHAPE

        shape = dict(DEFAULT_SHAPE)
        shape.update(
            {key: value for key, value in overrides.items() if value is not None}
        )
    try:
        speedups = parse_speedups(args.speedup)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not speedups and not args.break_even:
        print("error: pass --speedup OP=FACTOR and/or --break-even OP",
              file=sys.stderr)
        return 2

    payload = {}
    if speedups:
        result = run_whatif(speedups, shape=shape, cost=cost)
        if args.json:
            payload["whatif"] = result.to_dict()
        else:
            for line in result.lines():
                print(line)
    if args.break_even:
        try:
            point = break_even(args.break_even, shape=shape, cost=cost)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.json:
            payload["break_even"] = point
        else:
            if point["factor"] is None:
                print(
                    f"break-even: {point['op']} never shifts the bottleneck "
                    f"off {point['bottleneck_before'] or '-'} (tried up to "
                    "x128)"
                )
            else:
                print(
                    f"break-even: {point['op']} x{point['factor']:g} shifts "
                    f"the bottleneck {point['bottleneck_before']} -> "
                    f"{point['bottleneck_after']} "
                    f"(makespan {point['makespan_before']:.3f}s -> "
                    f"{point['makespan_after']:.3f}s, "
                    f"{point['speedup_at_shift']:.2f}x)"
                )
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
    return 0


def _bench_gate_main(argv: list[str]) -> int:
    """``repro bench-gate``: run scenarios, gate vs the perf database."""
    import json

    from repro.bench.perfdb import (
        PerfDB,
        backend_parity_scenario,
        counted_scenario,
        faults_scenario,
        fig7_scenario,
        gate,
        gate_events,
        serve_fleet_scenario,
    )

    parser = argparse.ArgumentParser(
        prog="repro bench-gate",
        description=(
            "Run the benchmark scenarios, gate them against the "
            "append-only performance database, and append the new "
            "entries when the gate passes."
        ),
    )
    parser.add_argument(
        "--db",
        default="BENCH_perf.json",
        help="performance database path (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=5,
        help="sliding-window size for measured scalars (default: 5)",
    )
    parser.add_argument(
        "--measured-rtol",
        type=float,
        default=0.25,
        help="relative tolerance for measured scalars (default: 0.25)",
    )
    parser.add_argument(
        "--fig7",
        action="store_true",
        help="also run the measured Figure 7 throughput scenario",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("auto", "python", "fast", "gmpy2"),
        help="crypto backend for the Figure 7 scenario; a named backend "
        "writes its own fig7-<backend> entry so each engine keeps its "
        "own throughput history ('auto' resolves to the fastest "
        "importable one)",
    )
    parser.add_argument(
        "--parity",
        action="store_true",
        help="also run the exact cross-backend parity scenario (op "
        "totals and model bytes identical under every available "
        "crypto backend)",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="also run the exact fault-recovery cost scenario",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also run the fleet-serving scenario (routing/shed/canary)",
    )
    parser.add_argument(
        "--key-bits",
        type=int,
        default=512,
        help="key size for the measured scenario (default: 512)",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=48,
        help="samples for the measured scenario (default: 48)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="append the new entries even when the gate fails",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="on failure, print a per-phase/per-op/per-lane diagnosis of "
        "each regressed scenario (repro.obs.forensics differ)",
    )
    parser.add_argument(
        "--incident-dir",
        default=None,
        help="on regression, drop a bench_regression post-mortem bundle "
        "(verdict events + failure context) into this directory",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the gate result as JSON instead of text",
    )
    args = parser.parse_args(argv)

    backend = args.backend
    if backend == "auto":
        from repro.crypto.backend import auto_select

        backend = auto_select().name
    entries = [counted_scenario()]
    if args.faults:
        entries.append(faults_scenario())
    if args.serve:
        entries.append(serve_fleet_scenario())
    if args.parity:
        entries.append(backend_parity_scenario())
    if args.fig7:
        entries.append(
            fig7_scenario(
                key_bits=args.key_bits, samples=args.samples, backend=backend
            )
        )
    db = PerfDB.load(args.db)
    result = gate(
        db, entries, window=args.window, measured_rtol=args.measured_rtol
    )
    explanation: list[str] = []
    if args.explain and not result.ok:
        from repro.obs.forensics import explain_failures

        by_name = {entry.name: entry for entry in entries}
        failed: dict[str, set] = {}
        for verdict in result.failures():
            failed.setdefault(verdict.entry, set()).add(verdict.scalar)
        for name in sorted(failed):
            history = db.history(name)
            if not history or name not in by_name:
                explanation.append(f"{name}: no baseline history to diff")
                continue
            explanation.append(f"--- {name}: why the gate failed ---")
            explanation.extend(
                explain_failures(history[-1], by_name[name], failed[name])
            )
    if args.json:
        payload = result.to_dict()
        if explanation:
            payload["explanation"] = explanation
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        for line in result.lines():
            print(line)
        for line in explanation:
            print(line)
    if result.ok or args.force:
        for entry in entries:
            db.append(entry)
        db.save(args.db)
        print(
            f"{'appended' if result.ok else 'force-appended'} "
            f"{len(entries)} entries to {args.db}",
            # keep --json stdout a single parseable object
            file=sys.stderr if args.json else sys.stdout,
        )
    if not result.ok:
        if args.incident_dir:
            from repro.obs.events import EventLog
            from repro.obs.incident import IncidentStore, snapshot_incident

            log = EventLog()
            gate_events(result, log)
            bundle = snapshot_incident(
                "bench_regression",
                label=args.db,
                event_log=log,
                context={
                    "failures": [
                        {
                            "entry": verdict.entry,
                            "scalar": verdict.scalar,
                            "value": verdict.value,
                            "baseline": verdict.baseline,
                            "reason": verdict.reason,
                        }
                        for verdict in result.failures()
                    ],
                    "explanation": explanation,
                },
            )
            path = IncidentStore(args.incident_dir).save(bundle)
            print(
                f"wrote incident bundle {path}",
                file=sys.stderr if args.json else sys.stdout,
            )
        print(
            f"bench gate FAILED: {len(result.failures())} regression(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _calibrate_main(argv: list[str]) -> int:
    """``repro calibrate``: microbenchmark this host into a profile."""
    from repro.bench.calibrate import calibrate, check_drift

    parser = argparse.ArgumentParser(
        prog="repro calibrate",
        description=(
            "Microbenchmark this host's crypto unit costs into a "
            "calibration profile, optionally checking cost-ratio drift "
            "against the paper references."
        ),
    )
    parser.add_argument(
        "-o", "--out", default=None, help="write the profile JSON here"
    )
    parser.add_argument(
        "--key-bits", type=int, default=512, help="modulus size (default: 512)"
    )
    parser.add_argument(
        "--samples", type=int, default=24, help="ops per measurement (default: 24)"
    )
    parser.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "python", "fast", "gmpy2"),
        help="crypto backend to measure under; 'auto' (default) picks "
        "the fastest importable engine and records its name in the "
        "profile",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when the cost ratios drifted from the paper's",
    )
    args = parser.parse_args(argv)

    profile = calibrate(
        key_bits=args.key_bits, samples=args.samples, backend=args.backend
    )
    print(f"backend: {profile.backend}")
    for name, value in sorted(profile.unit_costs.items()):
        print(f"{name}: {value:.3e} s")
    print(
        f"packing: x{profile.packing_gain:.2f} per value "
        f"at width {profile.pack_width}"
    )
    if args.out:
        profile.save(args.out)
        print(f"wrote {args.out}")
    if args.check:
        report = check_drift(profile)
        for line in report.lines():
            print(line)
        if not report.ok:
            print(
                f"calibration drift: {len(report.failures())} ratio(s) "
                "outside tolerance",
                file=sys.stderr,
            )
            return 1
    return 0


def _synthetic_parties(rows: int, features: int, bins: int, seed: int):
    """Seeded synthetic data, vertically split B/A down the middle."""
    from repro.data.synthetic import SyntheticSpec, generate_classification
    from repro.gbdt.binning import bin_dataset

    import numpy as np

    spec = SyntheticSpec(n_instances=rows, n_features=features, seed=seed)
    matrix, labels = generate_classification(spec)
    full = bin_dataset(matrix, bins)
    half = features // 2
    parties = [
        full.subset_features(np.arange(0, half)),
        full.subset_features(np.arange(half, features)),
    ]
    return parties, labels


def _plan_from_args(args) -> "object | None":
    """A FaultPlan from CLI flags; None when every knob is zero."""
    from repro.fed.faults import FaultPlan

    crash_after = tuple(
        int(item) for item in (args.crash_after or "").split(",") if item.strip()
    )
    plan = FaultPlan(
        seed=args.fault_seed,
        drop_rate=args.drop_rate,
        duplicate_rate=args.dup_rate,
        delay_rate=args.delay_rate,
        ack_drop_rate=args.ack_drop_rate,
        crash_after_trees=crash_after,
    )
    return None if plan.is_null else plan


def _train_main(argv: list[str]) -> int:
    """``repro train``: fault-tolerant federated training on synthetic data."""
    from repro.core.config import VF2BoostConfig
    from repro.core.serialization import save_model
    from repro.core.trainer import FederatedTrainer
    from repro.fed.retry import RetryPolicy

    parser = argparse.ArgumentParser(
        prog="repro train",
        description=(
            "Train a federated model on seeded synthetic data, optionally "
            "under an injected fault plan with checkpoint/resume."
        ),
    )
    parser.add_argument("--rows", type=int, default=400)
    parser.add_argument("--features", type=int, default=10)
    parser.add_argument("--trees", type=int, default=6)
    parser.add_argument("--layers", type=int, default=4)
    parser.add_argument("--bins", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0, help="data/crypto seed")
    parser.add_argument(
        "--crypto-mode", default="counted", choices=("counted", "real", "mock")
    )
    parser.add_argument(
        "--backend",
        default="python",
        choices=("auto", "python", "fast", "gmpy2"),
        help="crypto backend for real-mode training; op counts and the "
        "trained model are bit-identical across backends, only "
        "wall-clock changes ('auto' picks the fastest importable one)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write a checkpoint after every tree (required with --crash-after)",
    )
    parser.add_argument(
        "--resume-from", default=None, help="checkpoint to resume from"
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, help="fault schedule seed"
    )
    parser.add_argument("--drop-rate", type=float, default=0.0)
    parser.add_argument("--dup-rate", type=float, default=0.0)
    parser.add_argument("--delay-rate", type=float, default=0.0)
    parser.add_argument("--ack-drop-rate", type=float, default=0.0)
    parser.add_argument(
        "--crash-after",
        default="",
        help="comma-separated tree indices after which the trainer crashes "
        "(each crash checkpoints and auto-resumes)",
    )
    parser.add_argument("--max-retries", type=int, default=6)
    parser.add_argument(
        "--incident-dir",
        default=None,
        help="drop post-mortem bundles (crashes, fault recoveries) here; "
        "inspect them with 'repro incidents'",
    )
    parser.add_argument(
        "--model-out", default=None, help="write the model skeleton here"
    )
    parser.add_argument(
        "--report-out", default=None, help="write the RunReport JSON here"
    )
    args = parser.parse_args(argv)

    parties, labels = _synthetic_parties(
        args.rows, args.features, args.bins, args.seed
    )
    config = VF2BoostConfig.vf2boost(
        params=GBDTParams(
            n_trees=args.trees, n_layers=args.layers, n_bins=args.bins
        ),
        crypto_mode=args.crypto_mode,
        key_bits=256 if args.crypto_mode == "real" else 2048,
        seed=args.seed,
    )
    plan = _plan_from_args(args)
    trainer = FederatedTrainer(config, incident_dir=args.incident_dir)
    from repro.crypto.backend import auto_select
    from repro.crypto.math_utils import use_backend

    backend = auto_select().name if args.backend == "auto" else args.backend
    with use_backend(backend):
        result = trainer.fit_resilient(
            parties,
            labels,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=args.max_retries),
            resume_from=args.resume_from,
            checkpoint_dir=args.checkpoint_dir,
        )
    print(
        f"trained {len(result.model.trees)} trees "
        f"(final train loss {result.history[-1].train_loss:.4f})"
    )
    if result.faults:
        resumed = result.faults.get("resumes", 0)
        print(
            f"faults: {result.faults['drops']} drops, "
            f"{result.faults['resends']} resends, "
            f"{result.faults['dedupe_dropped']} deduped, "
            f"{resumed} resume(s), "
            f"{result.faults['recovery_seconds']:.2f}s recovery"
        )
    if result.incidents:
        print(
            f"incidents: {len(result.incidents)} bundle(s) in "
            f"{args.incident_dir} (inspect with 'repro incidents list "
            f"--dir {args.incident_dir}')"
        )
    if args.model_out:
        stem = (
            args.model_out[:-5]
            if args.model_out.endswith(".json")
            else args.model_out
        )
        written = save_model(result.model, args.model_out, f"{stem}.private")
        print(f"wrote {', '.join(written)}")
    if args.report_out:
        result.run_report(label="cli-train").save(args.report_out)
        print(f"wrote {args.report_out}")
    return 0


def _faults_main(argv: list[str]) -> int:
    """``repro faults``: recovery-cost sweep with model-identity check."""
    import json

    from repro.core.config import VF2BoostConfig
    from repro.core.serialization import model_to_payloads
    from repro.core.trainer import FederatedTrainer
    from repro.fed.faults import FaultPlan
    from repro.fed.retry import RetryPolicy

    parser = argparse.ArgumentParser(
        prog="repro faults",
        description=(
            "Sweep message-drop rates over a seeded synthetic training "
            "run, report the recovery cost at each point, and verify the "
            "trained model stays bit-identical to the fault-free run."
        ),
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="full sweep (drop rates 0 to 0.3; the EXPERIMENTS.md table)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced two-point sweep for CI (tier-1 wiring)",
    )
    parser.add_argument("--rows", type=int, default=240)
    parser.add_argument("--features", type=int, default=8)
    parser.add_argument("--trees", type=int, default=3)
    parser.add_argument("--layers", type=int, default=3)
    parser.add_argument("--bins", type=int, default=8)
    parser.add_argument("--fault-seed", type=int, default=7)
    parser.add_argument("--max-retries", type=int, default=8)
    parser.add_argument("--json", action="store_true", help="JSON output")
    args = parser.parse_args(argv)

    if args.smoke:
        rates = (0.0, 0.1)
    else:
        rates = (0.0, 0.02, 0.05, 0.1, 0.2, 0.3)

    parties, labels = _synthetic_parties(
        args.rows, args.features, args.bins, seed=3
    )
    config = VF2BoostConfig.vf2boost(
        params=GBDTParams(
            n_trees=args.trees, n_layers=args.layers, n_bins=args.bins
        ),
        crypto_mode="counted",
    )
    policy = RetryPolicy(max_retries=args.max_retries)
    baseline_bytes = None
    rows = []
    all_identical = True
    for rate in rates:
        plan = FaultPlan(
            seed=args.fault_seed,
            drop_rate=rate,
            duplicate_rate=rate / 2,
            ack_drop_rate=rate / 2,
        )
        result = FederatedTrainer(config).fit(
            parties,
            labels,
            fault_plan=None if plan.is_null else plan,
            retry_policy=policy,
        )
        model_bytes = json.dumps(
            model_to_payloads(result.model), sort_keys=True
        )
        if baseline_bytes is None:
            baseline_bytes = model_bytes
        identical = model_bytes == baseline_bytes
        all_identical = all_identical and identical
        summary = result.faults or {
            "resends": 0,
            "dropped_bytes": 0,
            "recovery_seconds": 0.0,
        }
        rows.append(
            {
                "drop_rate": rate,
                "resends": summary["resends"],
                "dropped_bytes": summary["dropped_bytes"],
                "recovery_seconds": summary["recovery_seconds"],
                "model_identical": identical,
            }
        )
    if args.json:
        print(json.dumps({"rows": rows, "ok": all_identical}, indent=1))
    else:
        print(f"{'drop':>6} {'resends':>8} {'dropped-B':>10} "
              f"{'recovery-s':>11}  model")
        for row in rows:
            print(
                f"{row['drop_rate']:>6.2f} {row['resends']:>8d} "
                f"{row['dropped_bytes']:>10d} "
                f"{row['recovery_seconds']:>11.3f}  "
                + ("identical" if row["model_identical"] else "DIVERGED")
            )
    if not all_identical:
        print("fault sweep FAILED: model diverged under faults", file=sys.stderr)
        return 1
    return 0


def _events_main(argv: list[str]) -> int:
    """``repro events``: filter/pretty-print a flight-recorder stream."""
    import json

    from repro.obs.events import event_from_wire, read_events_jsonl

    parser = argparse.ArgumentParser(
        prog="repro events",
        description=(
            "Filter and pretty-print a flight-recorder event stream: an "
            "--events-out JSONL file, or the 'events' field of a saved "
            "RunReport JSON."
        ),
    )
    parser.add_argument(
        "path", help="events JSONL (--events-out) or RunReport JSON"
    )
    parser.add_argument(
        "--subsystem", default=None, help="keep only this producer"
    )
    parser.add_argument("--kind", default=None, help="keep only this kind")
    parser.add_argument(
        "--tail", type=int, default=0, help="keep only the last N (after filters)"
    )
    parser.add_argument(
        "--json", action="store_true", help="print flat wire dicts as JSON"
    )
    args = parser.parse_args(argv)

    with open(args.path) as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict) and isinstance(data.get("events"), list):
        events = [event_from_wire(record) for record in data["events"]]
    elif isinstance(data, dict):
        events = [event_from_wire(data)]
    else:
        events = read_events_jsonl(args.path)

    total = len(events)
    if args.subsystem is not None:
        events = [e for e in events if e.subsystem == args.subsystem]
    if args.kind is not None:
        events = [e for e in events if e.kind == args.kind]
    if args.tail > 0:
        events = events[-args.tail:]
    if args.json:
        print(json.dumps([e.to_dict() for e in events], indent=1,
                         sort_keys=True))
        return 0
    for e in events:
        extras = " ".join(
            f"{key}={e.payload[key]}" for key in sorted(e.payload)
        )
        print(f"{e.time:>10.3f}s  {e.subsystem:<14} {e.kind:<22} {extras}")
    print(f"({len(events)} of {total} events shown)")
    return 0


def _incidents_smoke(json_out: bool = False) -> int:
    """A tiny crash-and-resume training job must drop a valid bundle."""
    import json
    import os
    import tempfile

    from repro.core.config import VF2BoostConfig
    from repro.core.trainer import FederatedTrainer
    from repro.fed.faults import FaultPlan
    from repro.fed.retry import RetryPolicy
    from repro.obs.incident import IncidentStore

    parties, labels = _synthetic_parties(120, 6, 8, seed=3)
    config = VF2BoostConfig.vf2boost(
        params=GBDTParams(n_trees=2, n_layers=3, n_bins=8),
        crypto_mode="counted",
    )
    plan = FaultPlan(seed=3, drop_rate=0.05, crash_after_trees=(0,))
    with tempfile.TemporaryDirectory() as tmp:
        incident_dir = os.path.join(tmp, "incidents")
        trainer = FederatedTrainer(config, incident_dir=incident_dir)
        result = trainer.fit_resilient(
            parties,
            labels,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=8),
            checkpoint_dir=os.path.join(tmp, "ckpts"),
        )
        store = IncidentStore(incident_dir)
        paths = store.paths()
        failures = []
        if not result.incidents or not paths:
            failures.append("no incident bundle was written")
        else:
            first = store.load(1)
            reloaded = store.load(os.path.basename(paths[0]))
            if first.kind != "training_interrupted":
                failures.append(
                    f"first bundle kind {first.kind!r}, expected "
                    "'training_interrupted'"
                )
            if first.fingerprint() != reloaded.fingerprint():
                failures.append("bundle fingerprint changed across reload")
            if not first.events:
                failures.append("crash bundle captured no events")
        summary = {
            "ok": not failures,
            "bundles": [os.path.basename(path) for path in paths],
            "failures": failures,
        }
    if json_out:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        for name in summary["bundles"]:
            print(f"bundle: {name}")
        print("incident smoke " + ("OK" if summary["ok"] else "FAILED"))
    if failures:
        for failure in failures:
            print(f"incident smoke: {failure}", file=sys.stderr)
        return 1
    return 0


def _incidents_main(argv: list[str]) -> int:
    """``repro incidents``: list/show/diff post-mortem bundles."""
    import json

    from repro.obs.incident import IncidentStore, diff_bundles

    parser = argparse.ArgumentParser(
        prog="repro incidents",
        description=(
            "Inspect the post-mortem bundles a failure drops into "
            "--incident-dir: list them, show one, or diff two."
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default="list",
        choices=("list", "show", "diff"),
        help="list (default), show <ref>, or diff <ref> <ref>",
    )
    parser.add_argument(
        "refs",
        nargs="*",
        help="bundle references: 1-based index, file name, or path",
    )
    parser.add_argument(
        "--dir",
        default="incidents",
        help="incident directory (default: incidents)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a tiny crash-and-resume training job and verify the "
        "bundle it produces (tier-1 wiring); ignores action/refs",
    )
    parser.add_argument("--json", action="store_true", help="JSON output")
    args = parser.parse_args(argv)

    if args.smoke:
        return _incidents_smoke(json_out=args.json)

    store = IncidentStore(args.dir)
    if args.action == "list":
        rows = store.rows()
        if args.json:
            print(json.dumps(rows, indent=1, sort_keys=True))
            return 0
        if not rows:
            print(f"no incident bundles in {args.dir}")
            return 0
        for index, row in enumerate(rows, start=1):
            label = f" [{row['label']}]" if row["label"] else ""
            print(
                f"{index:>3}  {row['kind']:<22}{label} t={row['time']:.3f}s "
                f"events={row['events']} open_alerts={row['open_alerts']} "
                f"fp={row['fingerprint']}  {row['file']}"
            )
        return 0
    if args.action == "show":
        if len(args.refs) != 1:
            print("error: show takes exactly one bundle reference",
                  file=sys.stderr)
            return 2
        try:
            bundle = store.load(args.refs[0])
        except (LookupError, OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if args.json:
            print(bundle.to_json())
        else:
            print(bundle.headline())
            for key, value in sorted(bundle.context.items()):
                print(f"  context.{key}: {value}")
            for episode in bundle.open_alerts:
                print(f"  open alert: {episode.get('rule', '?')}")
            for record in bundle.events[-10:]:
                print(
                    f"  {record.get('time', 0.0):>10.3f}s "
                    f"{record.get('subsystem', ''):<14} "
                    f"{record.get('kind', '')}"
                )
        return 0
    # diff
    if len(args.refs) != 2:
        print("error: diff takes exactly two bundle references",
              file=sys.stderr)
        return 2
    try:
        left = store.load(args.refs[0])
        right = store.load(args.refs[1])
    except (LookupError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    lines = diff_bundles(left, right)
    if args.json:
        print(json.dumps({"diff": lines}, indent=1, sort_keys=True))
    else:
        for line in lines:
            print(line)
    return 0


#: experiments with a machine-readable variant (``--json``)
JSON_EXPERIMENTS: dict[str, object] = {
    "fig7": lambda: experiments.run_fig7_data(),
    "util": lambda: experiments.run_resource_utilization()[0],
    "critical": lambda: experiments.run_critical_path()[0],
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point. Returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "whatif":
        return _whatif_main(argv[1:])
    if argv and argv[0] == "bench-gate":
        return _bench_gate_main(argv[1:])
    if argv and argv[0] == "calibrate":
        return _calibrate_main(argv[1:])
    if argv and argv[0] == "train":
        return _train_main(argv[1:])
    if argv and argv[0] == "faults":
        return _faults_main(argv[1:])
    if argv and argv[0] == "events":
        return _events_main(argv[1:])
    if argv and argv[0] == "incidents":
        return _incidents_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate VF2Boost (SIGMOD 2021) evaluation artifacts.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names (see 'list'), or 'all'; "
        "or 'trace <report.json>' to export a saved trace",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit structured JSON (supported: "
        + ", ".join(sorted(JSON_EXPERIMENTS))
        + "); prints one object keyed by experiment name",
    )
    args = parser.parse_args(argv)

    requested = args.experiments or ["list"]
    if requested == ["list"] or "list" in requested:
        print("available experiments:")
        for name, (description, _) in EXPERIMENTS.items():
            print(f"  {name:<8} {description}")
        print("  all      run every experiment")
        print("  trace    export Chrome trace from a saved run report")
        print("  whatif   predict makespan deltas under cheaper ops")
        print("  bench-gate  run + gate benchmarks vs BENCH_perf.json")
        print("  calibrate   microbenchmark this host's crypto unit costs")
        print("  train       train on synthetic data (faults, checkpoints)")
        print("  faults      recovery-cost sweep + model-identity check")
        print("  events      filter/pretty-print a flight-recorder stream")
        print("  incidents   list/show/diff post-mortem bundles")
        return 0
    if "all" in requested:
        requested = list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.json:
        import json

        unsupported = [n for n in requested if n not in JSON_EXPERIMENTS]
        if unsupported:
            print(
                "no JSON output for: " + ", ".join(unsupported)
                + " (supported: " + ", ".join(sorted(JSON_EXPERIMENTS)) + ")",
                file=sys.stderr,
            )
            return 2
        data = {name: JSON_EXPERIMENTS[name]() for name in requested}
        print(json.dumps(data, indent=1, sort_keys=True))
        return 0
    for name in requested:
        __, runner = EXPERIMENTS[name]
        start = time.perf_counter()
        print(f"==> {name}")
        print(runner())
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
