"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro table1
    python -m repro table2 fig7
    python -m repro fig7 util --json
    python -m repro all
    python -m repro list
    python -m repro trace run.report.json -o run.trace.json
    python -m repro bench-gate --db BENCH_perf.json
    python -m repro calibrate -o profile.json --check

Each experiment prints its rendered table; heavier experiments accept
the same keyword knobs through the library API (see
``repro.bench.experiments``).  ``--json`` switches the experiments
that produce structured data (``fig7``, ``util``) to machine-readable
output.  The ``trace`` subcommand re-exports the spans stored in a
saved :class:`~repro.obs.RunReport` as Chrome trace-event JSON
(openable at https://ui.perfetto.dev) and prints the report's phase
breakdown.  ``bench-gate`` runs the benchmark scenarios, gates them
against the append-only performance database and appends the new
entries when the gate passes (exit 1 on regression).  ``calibrate``
microbenchmarks this host into a calibration profile and optionally
checks its cost ratios for drift against the paper references.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments
from repro.gbdt.params import GBDTParams

__all__ = ["main", "EXPERIMENTS"]

_FAST = GBDTParams(n_trees=6, n_layers=5, n_bins=16)


def _fig10() -> str:
    return experiments.run_fig10(params=_FAST)[1]


def _table4() -> str:
    return experiments.run_table4(params=_FAST)[1]


def _table6() -> str:
    return experiments.run_table6(params=_FAST)[1]


EXPERIMENTS: dict[str, tuple[str, object]] = {
    "fig7": ("crypto operation throughputs (measured)", experiments.run_fig7),
    "table1": ("root-node ablation (analytic)", lambda: experiments.run_table1()[1]),
    "table2": ("per-tree ablation (analytic)", lambda: experiments.run_table2()[1]),
    "table3": ("dataset inventory", experiments.run_table3),
    "fig10": ("convergence vs time, census/a9a (counted)", _fig10),
    "table4": ("end-to-end large datasets (hybrid)", _table4),
    "table5": ("worker scalability (analytic)", lambda: experiments.run_table5()[1]),
    "table6": ("party scalability (hybrid)", _table6),
    "util": ("§6.2 resource utilization (analytic)", lambda: experiments.run_resource_utilization()[1]),
}


def _trace_main(argv: list[str]) -> int:
    """``repro trace``: saved RunReport -> Chrome trace + phase table."""
    from repro.bench.report import phase_table
    from repro.obs import RunReport

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Export the Chrome trace stored in a saved run report.",
    )
    parser.add_argument("report", help="RunReport JSON (e.g. from --report-out)")
    parser.add_argument(
        "-o",
        "--out",
        default=None,
        help="trace output path (default: <report stem>.trace.json)",
    )
    args = parser.parse_args(argv)

    report = RunReport.load(args.report)
    out = args.out
    if out is None:
        stem = args.report[:-5] if args.report.endswith(".json") else args.report
        out = f"{stem}.trace.json"
    try:
        n_spans = report.write_chrome_trace(out)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"wrote {out} ({n_spans} spans; open at https://ui.perfetto.dev)")
    if report.phases:
        print(
            phase_table(
                report.phases,
                title=f"{report.kind} run {report.label!r} phase breakdown:",
            )
        )
    return 0


def _bench_gate_main(argv: list[str]) -> int:
    """``repro bench-gate``: run scenarios, gate vs the perf database."""
    import json

    from repro.bench.perfdb import PerfDB, counted_scenario, fig7_scenario, gate

    parser = argparse.ArgumentParser(
        prog="repro bench-gate",
        description=(
            "Run the benchmark scenarios, gate them against the "
            "append-only performance database, and append the new "
            "entries when the gate passes."
        ),
    )
    parser.add_argument(
        "--db",
        default="BENCH_perf.json",
        help="performance database path (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=5,
        help="sliding-window size for measured scalars (default: 5)",
    )
    parser.add_argument(
        "--measured-rtol",
        type=float,
        default=0.25,
        help="relative tolerance for measured scalars (default: 0.25)",
    )
    parser.add_argument(
        "--fig7",
        action="store_true",
        help="also run the measured Figure 7 throughput scenario",
    )
    parser.add_argument(
        "--key-bits",
        type=int,
        default=512,
        help="key size for the measured scenario (default: 512)",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=48,
        help="samples for the measured scenario (default: 48)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="append the new entries even when the gate fails",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the gate result as JSON instead of text",
    )
    args = parser.parse_args(argv)

    entries = [counted_scenario()]
    if args.fig7:
        entries.append(fig7_scenario(key_bits=args.key_bits, samples=args.samples))
    db = PerfDB.load(args.db)
    result = gate(
        db, entries, window=args.window, measured_rtol=args.measured_rtol
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=1, sort_keys=True))
    else:
        for line in result.lines():
            print(line)
    if result.ok or args.force:
        for entry in entries:
            db.append(entry)
        db.save(args.db)
        print(
            f"{'appended' if result.ok else 'force-appended'} "
            f"{len(entries)} entries to {args.db}",
            # keep --json stdout a single parseable object
            file=sys.stderr if args.json else sys.stdout,
        )
    if not result.ok:
        print(
            f"bench gate FAILED: {len(result.failures())} regression(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _calibrate_main(argv: list[str]) -> int:
    """``repro calibrate``: microbenchmark this host into a profile."""
    from repro.bench.calibrate import calibrate, check_drift

    parser = argparse.ArgumentParser(
        prog="repro calibrate",
        description=(
            "Microbenchmark this host's crypto unit costs into a "
            "calibration profile, optionally checking cost-ratio drift "
            "against the paper references."
        ),
    )
    parser.add_argument(
        "-o", "--out", default=None, help="write the profile JSON here"
    )
    parser.add_argument(
        "--key-bits", type=int, default=512, help="modulus size (default: 512)"
    )
    parser.add_argument(
        "--samples", type=int, default=24, help="ops per measurement (default: 24)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when the cost ratios drifted from the paper's",
    )
    args = parser.parse_args(argv)

    profile = calibrate(key_bits=args.key_bits, samples=args.samples)
    for name, value in sorted(profile.unit_costs.items()):
        print(f"{name}: {value:.3e} s")
    print(
        f"packing: x{profile.packing_gain:.2f} per value "
        f"at width {profile.pack_width}"
    )
    if args.out:
        profile.save(args.out)
        print(f"wrote {args.out}")
    if args.check:
        report = check_drift(profile)
        for line in report.lines():
            print(line)
        if not report.ok:
            print(
                f"calibration drift: {len(report.failures())} ratio(s) "
                "outside tolerance",
                file=sys.stderr,
            )
            return 1
    return 0


#: experiments with a machine-readable variant (``--json``)
JSON_EXPERIMENTS: dict[str, object] = {
    "fig7": lambda: experiments.run_fig7_data(),
    "util": lambda: experiments.run_resource_utilization()[0],
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point. Returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "bench-gate":
        return _bench_gate_main(argv[1:])
    if argv and argv[0] == "calibrate":
        return _calibrate_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate VF2Boost (SIGMOD 2021) evaluation artifacts.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names (see 'list'), or 'all'; "
        "or 'trace <report.json>' to export a saved trace",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit structured JSON (supported: "
        + ", ".join(sorted(JSON_EXPERIMENTS))
        + "); prints one object keyed by experiment name",
    )
    args = parser.parse_args(argv)

    requested = args.experiments or ["list"]
    if requested == ["list"] or "list" in requested:
        print("available experiments:")
        for name, (description, _) in EXPERIMENTS.items():
            print(f"  {name:<8} {description}")
        print("  all      run every experiment")
        print("  trace    export Chrome trace from a saved run report")
        print("  bench-gate  run + gate benchmarks vs BENCH_perf.json")
        print("  calibrate   microbenchmark this host's crypto unit costs")
        return 0
    if "all" in requested:
        requested = list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.json:
        import json

        unsupported = [n for n in requested if n not in JSON_EXPERIMENTS]
        if unsupported:
            print(
                "no JSON output for: " + ", ".join(unsupported)
                + " (supported: " + ", ".join(sorted(JSON_EXPERIMENTS)) + ")",
                file=sys.stderr,
            )
            return 2
        data = {name: JSON_EXPERIMENTS[name]() for name in requested}
        print(json.dumps(data, indent=1, sort_keys=True))
        return 0
    for name in requested:
        __, runner = EXPERIMENTS[name]
        start = time.perf_counter()
        print(f"==> {name}")
        print(runner())
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
