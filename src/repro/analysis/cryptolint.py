"""Paillier-misuse checker (rules ``CR001``-``CR003``).

Three failure modes the runtime cannot reliably surface:

* **CR001 — cross-key homomorphic arithmetic.**  Adding ciphertexts of
  different public keys produces garbage that still *decrypts* to a
  number; nothing throws.  The checker tracks, per function, which
  context created each cipher variable (``x = ctx_a.encrypt(...)``)
  and flags ``ctx.add(x, y)`` / ``x + y`` / ``x - y`` when the two
  provenances differ.

* **CR002 — exponent/raw-layer bypass.**  All cipher arithmetic must go
  through :mod:`repro.crypto.ciphertext`'s align-scale path, which
  scales the smaller-exponent cipher before HAdd (§2.2/Figure 8).
  Calling ``raw_add``/``raw_multiply``/``raw_add_plain``/
  ``raw_encrypt``/``raw_decrypt`` — or constructing
  :class:`~repro.crypto.ciphertext.EncryptedNumber` directly — outside
  the crypto layer skips both the alignment and the op counters.

* **CR003 — uncounted crypto ops.**  Within the crypto layer itself,
  every function that invokes a raw Paillier primitive must bump an
  :class:`~repro.crypto.ciphertext.OpStats` counter
  (``self.stats.<op> += 1``); a silent op corrupts the benchmark
  ledger that prices protocols under the paper's cost model (§5).

* **CR105 — powmod choke-point bypass.**  Crypto hot paths must route
  modular exponentiation through
  :func:`repro.crypto.math_utils.powmod`, the single observed choke
  point that fires the profiler's powmod observer and dispatches to
  the active :class:`~repro.crypto.backend.CryptoBackend`.  A direct
  three-argument ``pow(base, e, m)`` inside ``crypto/`` silently
  undercounts the op *and* pins the pure-Python engine regardless of
  the selected backend.  Only the dispatch layer itself
  (``math_utils.py``) and the backend engines (``backend.py``) may
  call it.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import (
    ModuleInfo,
    PackageIndex,
    call_name,
    dotted_name,
    iter_functions,
    node_span,
)
from repro.analysis.findings import Finding, Reporter, Severity

__all__ = ["CryptoChecker", "RAW_OPS", "run"]

#: raw Paillier primitives (defined on the public/private key objects)
RAW_OPS = {"raw_encrypt", "raw_decrypt", "raw_add", "raw_add_plain", "raw_multiply"}

#: package-inner paths allowed to call raw primitives / construct ciphers
# (pairing.py operates in the packed-integer domain of §4.2 and counts
# its ops explicitly — CR003 verifies that.)
DEFAULT_ALLOWED_RAW = (
    "crypto/paillier.py",
    "crypto/ciphertext.py",
    "crypto/pairing.py",
)
DEFAULT_ALLOWED_CONSTRUCT = ("crypto/",)

#: the only crypto-layer modules allowed a direct 3-arg ``pow`` (CR105):
#: the observed dispatch choke point and the backend engines it calls
DEFAULT_ALLOWED_POW = (
    "crypto/math_utils.py",
    "crypto/backend.py",
)

#: cipher-producing call tails tracked for provenance (CR001)
_ENCRYPT_TAILS = {"encrypt", "encrypt_encoded", "encrypt_zero", "encrypt_pair"}

#: homomorphic-combination method tails checked for cross-key operands
_COMBINE_TAILS = {"add", "raw_add"}


class CryptoChecker:
    """Scan an index for the three crypto-misuse rules."""

    checker_name = "crypto"

    def __init__(
        self,
        index: PackageIndex,
        allowed_raw: tuple[str, ...] = DEFAULT_ALLOWED_RAW,
        allowed_construct: tuple[str, ...] = DEFAULT_ALLOWED_CONSTRUCT,
        allowed_pow: tuple[str, ...] = DEFAULT_ALLOWED_POW,
    ) -> None:
        self.index = index
        self.allowed_raw = allowed_raw
        self.allowed_construct = allowed_construct
        self.allowed_pow = allowed_pow

    def run(self) -> Reporter:
        reporter = Reporter()
        for module in self.index.modules.values():
            inner = str(module.path.relative_to(self.index.root))
            raw_allowed = self._matches(inner, self.allowed_raw)
            construct_allowed = self._matches(inner, self.allowed_construct)
            self._check_module(module, inner, raw_allowed, construct_allowed, reporter)
        return reporter

    @staticmethod
    def _matches(inner: str, prefixes: tuple[str, ...]) -> bool:
        return any(inner == p or inner.startswith(p) for p in prefixes)

    # ------------------------------------------------------------------
    def _check_module(
        self,
        module: ModuleInfo,
        inner: str,
        raw_allowed: bool,
        construct_allowed: bool,
        reporter: Reporter,
    ) -> None:
        is_primitive_module = inner.endswith("crypto/paillier.py")
        if inner.startswith("crypto/") and not self._matches(
            inner, self.allowed_pow
        ):
            for node in self._raw_pow_calls(module.tree):
                self._emit(
                    reporter,
                    module,
                    node,
                    "CR105",
                    "direct three-argument pow() in a crypto hot path "
                    "bypasses the observed powmod choke point (profiler "
                    "undercount) and pins the built-in engine regardless of "
                    "the selected backend; call "
                    "repro.crypto.math_utils.powmod instead",
                )
        for qualname, fn in iter_functions(module.tree):
            self._check_cross_key(module, fn, reporter)
            raw_calls = self._raw_calls(fn)
            if not raw_allowed:
                for node in raw_calls:
                    self._emit(
                        reporter,
                        module,
                        node,
                        "CR002",
                        f"raw Paillier primitive {call_name(node)!r} called outside "
                        "the crypto layer; use PaillierContext's counted align-scale "
                        "arithmetic instead",
                    )
            elif raw_calls and not is_primitive_module:
                if not self._counts_ops(fn):
                    self._emit(
                        reporter,
                        module,
                        fn,
                        "CR003",
                        f"{qualname} invokes a raw Paillier primitive without "
                        "incrementing an OpStats counter; the benchmark ledger "
                        "would silently under-count this operation",
                    )
            if not construct_allowed:
                for node in self._cipher_constructions(module, fn):
                    self._emit(
                        reporter,
                        module,
                        node,
                        "CR002",
                        "direct EncryptedNumber construction bypasses the "
                        "align-scale exponent bookkeeping of repro.crypto.ciphertext",
                    )

    # ------------------------------------------------------------------
    # CR001: cross-key arithmetic
    # ------------------------------------------------------------------
    def _check_cross_key(
        self, module: ModuleInfo, fn: ast.FunctionDef | ast.AsyncFunctionDef, reporter: Reporter
    ) -> None:
        provenance: dict[str, str] = {}
        for stmt in ast.walk(fn):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                origin = self._cipher_origin(stmt.value, provenance)
                if origin is not None:
                    provenance[target.id] = origin
                else:
                    provenance.pop(target.id, None)
        for node in ast.walk(fn):
            if not isinstance(node, (ast.Call, ast.BinOp)):
                continue
            operands: list[ast.expr] = []
            if isinstance(node, ast.Call):
                name = call_name(node)
                tail = name.rsplit(".", maxsplit=1)[-1] if name else None
                if tail in _COMBINE_TAILS and len(node.args) >= 2:
                    operands = list(node.args[:2])
            elif isinstance(node.op, (ast.Add, ast.Sub)):
                operands = [node.left, node.right]
            if len(operands) != 2:
                continue
            origins = [self._operand_origin(op, provenance) for op in operands]
            if origins[0] and origins[1] and origins[0] != origins[1]:
                self._emit(
                    reporter,
                    module,
                    node,
                    "CR001",
                    f"homomorphic combination of ciphertexts from different "
                    f"contexts ({origins[0]!r} vs {origins[1]!r}); ciphers under "
                    "different public keys do not add meaningfully",
                )

    def _cipher_origin(
        self, value: ast.expr, provenance: dict[str, str]
    ) -> str | None:
        """Context name when ``value`` is ``<ctx>.encrypt*(...)`` or a
        known cipher variable; else None."""
        if isinstance(value, ast.Call):
            name = call_name(value)
            if name and "." in name:
                head, _, tail = name.rpartition(".")
                if tail in _ENCRYPT_TAILS:
                    return head
        elif isinstance(value, ast.Name):
            return provenance.get(value.id)
        return None

    @staticmethod
    def _operand_origin(node: ast.expr, provenance: dict[str, str]) -> str | None:
        if isinstance(node, ast.Name):
            return provenance.get(node.id)
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name and "." in name:
                head, _, tail = name.rpartition(".")
                if tail in _ENCRYPT_TAILS:
                    return head
        return None

    # ------------------------------------------------------------------
    # Raw-call helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _raw_pow_calls(tree: ast.AST) -> list[ast.Call]:
        """Direct ``pow(base, exponent, modulus)`` calls (CR105)."""
        calls = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "pow"
                and len(node.args) >= 3
            ):
                calls.append(node)
        return calls

    @staticmethod
    def _raw_calls(fn: ast.AST) -> list[ast.Call]:
        calls = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in RAW_OPS:
                    calls.append(node)
        return calls

    @staticmethod
    def _counts_ops(fn: ast.AST) -> bool:
        """Does the function bump an OpStats counter (``*.stats.x += n``)?"""
        for node in ast.walk(fn):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                name = dotted_name(node.target)
                if name and ".stats." in f".{name}":
                    return True
        return False

    def _cipher_constructions(
        self, module: ModuleInfo, fn: ast.AST
    ) -> list[ast.Call]:
        calls = []
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            resolved = module.resolve(name) if name else None
            if resolved and resolved.endswith("crypto.ciphertext.EncryptedNumber"):
                calls.append(node)
            elif name == "EncryptedNumber":
                calls.append(node)
        return calls

    def _emit(
        self,
        reporter: Reporter,
        module: ModuleInfo,
        node: ast.AST,
        rule: str,
        message: str,
    ) -> None:
        span = node_span(node)
        reporter.emit(
            Finding(
                rule_id=rule,
                severity=Severity.ERROR,
                file=module.relpath,
                line=span[0],
                message=message,
                checker=self.checker_name,
            ),
            module.suppressions,
            span,
        )


def run(index: PackageIndex) -> Reporter:
    """Convenience wrapper: run the crypto checker over an index."""
    return CryptoChecker(index).run()
