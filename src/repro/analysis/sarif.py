"""SARIF 2.1.0 rendering of analyzer findings.

One static analysis log format understood by code-scanning UIs (GitHub,
VS Code SARIF viewers, ...) — ``python -m repro.analysis --format
sarif`` emits it so the tier-1 gate's findings can be ingested without
a bespoke parser.  Only the core slice of the spec is produced: one
``run`` with a ``tool.driver`` rule table and one ``result`` per
finding.  Findings anchored to synthetic locations (schedule graphs,
artifacts — line 0) omit the ``region`` since SARIF requires
``startLine >= 1``.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.findings import Finding, Severity

__all__ = ["render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: analyzer severity -> SARIF result level
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptor(finding: Finding) -> dict:
    return {
        "id": finding.rule_id,
        "name": finding.rule_id,
        "properties": {"checker": finding.checker},
    }


def _result(finding: Finding) -> dict:
    location: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.file},
        }
    }
    if finding.line >= 1:
        location["physicalLocation"]["region"] = {"startLine": finding.line}
    return {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [location],
    }


def render_sarif(
    findings: Iterable[Finding], tool_version: str = "2"
) -> str:
    """Render findings as a SARIF 2.1.0 JSON document (string)."""
    ordered = list(findings)
    rules: dict[str, dict] = {}
    for finding in ordered:
        rules.setdefault(finding.rule_id, _rule_descriptor(finding))
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "version": tool_version,
                        "informationUri": "https://example.invalid/repro",
                        "rules": [rules[k] for k in sorted(rules)],
                    }
                },
                "results": [_result(f) for f in ordered],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
