"""Static analysis of the reproduction: privacy, crypto, determinism, schedules.

Seven passes enforce the repo's cross-cutting invariants on every
commit (``python -m repro.analysis --strict``; a tier-1 pytest wrapper
runs the same gate), sharing one parsed :class:`PackageIndex` per
scanned root:

* :mod:`repro.analysis.taint` — party-boundary taint: label-derived
  plaintext must never flow into a cross-party message toward a passive
  party (``PB001/002``; static complement of the runtime
  :class:`~repro.fed.channel.PrivacyViolation` guard);
* :mod:`repro.analysis.cryptolint` — Paillier misuse: cross-key
  arithmetic, raw-layer/exponent bypass, uncounted ops (``CR001-003``);
* :mod:`repro.analysis.domains` — ciphertext-domain abstract
  interpretation: cross-domain arithmetic, exponent misalignment,
  double packing, decrypt/encrypt round trips (``CR101-104``);
* :mod:`repro.analysis.determinism` — wall clock, unseeded RNG and
  set-order hazards in simulation-reachable modules (``DET*``);
* :mod:`repro.analysis.schedule` — cycles, dangling dependencies, lane
  conflicts and causality violations in the task graphs emitted by
  :class:`~repro.core.protocol.ProtocolScheduler` (``SCH001-005``);
* :mod:`repro.analysis.races` — happens-before race detection over the
  declared task footprints of those graphs (``SCH101-103``);
* :mod:`repro.analysis.conformance` — static<->runtime disclosure
  conformance against the versioned artifact and the golden wire
  ledger (``PB003``).

Findings share one reporting layer (:mod:`repro.analysis.findings`)
with ``# repro: allow[RULE]`` inline suppressions, an unused-
suppression audit (``SUP001``), and an optional coarse baseline for
incremental adoption; unparsable files surface as ``SYN001``.  Output
formats: text, JSON, SARIF 2.1.0.  See DESIGN.md §4.6 and §4.10.
"""

from repro.analysis.astutils import PackageIndex
from repro.analysis.cli import main, run_analysis
from repro.analysis.findings import Baseline, Finding, Reporter, Severity

__all__ = [
    "Baseline",
    "Finding",
    "PackageIndex",
    "Reporter",
    "Severity",
    "main",
    "run_analysis",
]
