"""Static analysis of the reproduction: privacy, crypto, determinism, schedules.

Four checkers enforce the repo's cross-cutting invariants on every
commit (``python -m repro.analysis --strict``; a tier-1 pytest wrapper
runs the same gate):

* :mod:`repro.analysis.taint` — party-boundary taint: label-derived
  plaintext must never flow into a cross-party message toward a passive
  party (``PB*`` rules; static complement of the runtime
  :class:`~repro.fed.channel.PrivacyViolation` guard);
* :mod:`repro.analysis.cryptolint` — Paillier misuse: cross-key
  arithmetic, raw-layer/exponent bypass, uncounted ops (``CR*``);
* :mod:`repro.analysis.determinism` — wall clock, unseeded RNG and
  set-order hazards in simulation-reachable modules (``DET*``);
* :mod:`repro.analysis.schedule` — cycles, dangling dependencies, lane
  conflicts and causality violations in the task graphs emitted by
  :class:`~repro.core.protocol.ProtocolScheduler` (``SCH*``).

Findings share one reporting layer (:mod:`repro.analysis.findings`)
with ``# repro: allow[RULE]`` inline suppressions and an optional
coarse baseline for incremental adoption.
"""

from repro.analysis.astutils import PackageIndex
from repro.analysis.cli import main, run_analysis
from repro.analysis.findings import Baseline, Finding, Reporter, Severity

__all__ = [
    "Baseline",
    "Finding",
    "PackageIndex",
    "Reporter",
    "Severity",
    "main",
    "run_analysis",
]
