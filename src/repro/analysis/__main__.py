"""``python -m repro.analysis`` — the static-analysis CI gate."""

from repro.analysis.cli import main

raise SystemExit(main())
