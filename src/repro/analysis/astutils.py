"""AST plumbing shared by the static checkers.

The analyzers never *import* the code under inspection — they parse it.
:class:`PackageIndex` walks a package directory, parses every module,
and precomputes what the checkers keep asking for:

* dotted module names and repo-relative paths;
* per-module import aliases (``import numpy as np`` -> ``np`` maps to
  ``numpy``; ``from repro.fed.messages import SplitQuery`` -> the name
  ``SplitQuery`` maps to ``repro.fed.messages.SplitQuery``);
* a function table mapping qualified and bare names to their defs, the
  backbone of the taint checker's interprocedural summaries;
* per-line suppression maps (see :mod:`repro.analysis.findings`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import parse_comment_suppressions

__all__ = [
    "ModuleInfo",
    "FunctionInfo",
    "PackageIndex",
    "call_name",
    "dotted_name",
    "node_span",
    "iter_functions",
]


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee (``loss.gradients`` for
    ``loss.gradients(...)``); ``None`` for computed callees."""
    return dotted_name(node.func)


def node_span(node: ast.AST) -> tuple[int, int]:
    """Inclusive (first, last) line numbers of a node."""
    first = getattr(node, "lineno", 0)
    last = getattr(node, "end_lineno", first) or first
    return first, last


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, def)`` for every function, including methods."""

    def walk(body: Iterable[ast.stmt], prefix: str):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                yield qualname, node
                yield from walk(node.body, f"{qualname}.")
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.")

    yield from walk(tree.body, "")


@dataclass
class ModuleInfo:
    """One parsed module of the package under analysis."""

    name: str  # dotted, e.g. "repro.core.trainer"
    path: Path
    relpath: str  # display path, relative to the scan root
    tree: ast.Module
    source_lines: list[str]
    suppressions: dict[int, set[str]]
    #: local name -> fully qualified imported name
    imports: dict[str, str] = field(default_factory=dict)

    def resolve(self, name: str | None) -> str | None:
        """Expand a (possibly dotted) local name through the import map.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when ``np`` aliases ``numpy``.
        Unknown heads resolve to themselves.
        """
        if not name:
            return name
        head, _, rest = name.partition(".")
        target = self.imports.get(head)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target


@dataclass
class FunctionInfo:
    """A function definition plus where it lives."""

    module: ModuleInfo
    qualname: str  # e.g. "FederatedTrainer._ship_gradients"
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def bare_name(self) -> str:
        """Unqualified function name (method-call resolution key)."""
        return self.node.name

    @property
    def param_names(self) -> list[str]:
        """Positional + keyword parameter names, ``self``/``cls`` included."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


class PackageIndex:
    """Parsed view of a package tree (no code is imported or executed).

    Args:
        root: directory whose ``*.py`` files form the package; usually
            the ``repro`` package directory itself.
        package: dotted prefix for module names (``repro`` by default;
            fixture trees pass their own).
    """

    def __init__(self, root: str | Path, package: str = "repro") -> None:
        self.root = Path(root)
        self.package = package
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: bare function name -> every definition with that name
        self.by_bare_name: dict[str, list[FunctionInfo]] = {}
        #: ``(relpath, line, message)`` of files that failed to parse;
        #: the CLI reports each as a ``SYN001`` finding instead of dying.
        self.parse_errors: list[tuple[str, int, str]] = []
        self._load()

    def _load(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            rel = path.relative_to(self.root)
            if any(part == "__pycache__" for part in rel.parts):
                continue
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                self.parse_errors.append(
                    (
                        str(Path(self.package) / rel),
                        exc.lineno or 0,
                        exc.msg or "syntax error",
                    )
                )
                continue
            parts = list(rel.with_suffix("").parts)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            name = ".".join([self.package] + parts) if parts else self.package
            module = ModuleInfo(
                name=name,
                path=path,
                relpath=str(Path(self.package) / rel),
                tree=tree,
                source_lines=source.splitlines(),
                suppressions=parse_comment_suppressions(source),
                imports=_collect_imports(tree),
            )
            self.modules[name] = module
            for qualname, fn_node in iter_functions(tree):
                info = FunctionInfo(module=module, qualname=qualname, node=fn_node)
                self.functions[f"{name}:{qualname}"] = info
                self.by_bare_name.setdefault(info.bare_name, []).append(info)

    def iter_modules(self, prefixes: tuple[str, ...] = ()) -> Iterator[ModuleInfo]:
        """All modules, optionally filtered by relpath prefixes.

        A prefix matches when the module's path *within the package*
        starts with it (``fed/`` matches ``repro/fed/channel.py``) or
        equals it exactly (``core/protocol.py``).
        """
        for module in self.modules.values():
            if not prefixes:
                yield module
                continue
            inner = str(module.path.relative_to(self.root))
            if any(inner == p or inner.startswith(p) for p in prefixes):
                yield module

    def resolve_function(
        self, module: ModuleInfo, name: str | None
    ) -> FunctionInfo | None:
        """Best-effort resolution of a call's callee to a definition.

        Tries, in order: a plain function in the same module, an
        imported ``module.function``, and finally a *unique* bare-name
        match anywhere in the package (the pragmatic answer for
        ``self.method(...)`` calls).  Ambiguous bare names resolve to
        ``None`` — callers treat that as an unknown callee.
        """
        if not name:
            return None
        tail = name.rsplit(".", maxsplit=1)[-1]
        local = self.functions.get(f"{module.name}:{name}")
        if local is not None:
            return local
        resolved = module.resolve(name)
        if resolved and "." in resolved:
            target_module, _, fn = resolved.rpartition(".")
            hit = self.functions.get(f"{target_module}:{fn}")
            if hit is not None:
                return hit
        candidates = self.by_bare_name.get(tail, [])
        if len(candidates) == 1:
            return candidates[0]
        return None
