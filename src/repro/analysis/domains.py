"""Ciphertext-domain abstract interpreter (rules ``CR101``-``CR104``).

The taint checker answers "does label-derived *content* leak?"; this
pass answers "is the crypto *algebra* well-typed?".  Every expression
in the protocol-reachable modules is assigned an abstract domain:

* ``Plain``   — an ordinary Python/numpy number;
* ``Cipher``  — a Paillier :class:`~repro.crypto.ciphertext.EncryptedNumber`
  (tagged with the context expression it was encrypted under and, when
  statically known, its fixed-point exponent);
* ``Packed``  — a :class:`~repro.crypto.packing.PackedCipher`, several
  fixed-exponent values in one ciphertext's limbs (§5.2);
* ``Encoded`` — a fixed-point :class:`~repro.crypto.encoding.EncodedNumber`.

Domains seed from parameter annotations and crypto-API calls, propagate
through assignments, containers and arithmetic, and cross function
boundaries via return-domain summaries computed over the shared
:class:`~repro.analysis.astutils.PackageIndex` (same fixpoint shape as
the taint summaries).  Four misuse patterns become findings:

* **CR101 — cross-domain arithmetic**: ``cipher + plain`` or
  ``cipher + encoded`` via operators (the implicit ``__add__`` hides
  whether an HAdd or a plaintext-add powmod runs — call
  ``ctx.add_plain``/encrypt explicitly), ``cipher * cipher`` (Paillier
  is additively homomorphic only), and any operator arithmetic on a
  ``Packed`` value (limbs must be unpacked or combined via HAdd of
  whole packs).
* **CR102 — alignment-free exponent mixing**: combining ciphers whose
  *statically known* exponents differ through an API that does not
  align them — ``raw_add`` on ``.ciphertext`` payloads, or packing a
  list of mixed-exponent ciphers (packed limbs share one exponent by
  construction; ``ctx.add`` is exempt because it scales operands).
* **CR103 — double packing**: feeding a ``Packed`` value back into a
  ``pack_*`` call; limbs of limbs silently corrupt every decode.
* **CR104 — decrypt-then-re-encrypt** (warning): encrypting a value
  that came straight from a decrypt — two wasted powmods per value;
  operate on the cipher or keep the plaintext.

The checker is intentionally conservative: unknown domains stay
unknown and never fire, so a finding means the misuse is visible in
the code itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace

from repro.analysis.astutils import (
    FunctionInfo,
    ModuleInfo,
    PackageIndex,
    call_name,
    node_span,
)
from repro.analysis.findings import Finding, Reporter, Severity

__all__ = ["Domain", "DomainChecker", "DEFAULT_SCOPE", "run"]

#: package-inner path prefixes forming the protocol-reachable scope
DEFAULT_SCOPE = ("core/", "gbdt/", "crypto/", "fed/", "serve/")

PLAIN, CIPHER, PACKED, ENCODED = "plain", "cipher", "packed", "encoded"

#: call tails producing ciphertext
_ENCRYPT_TAILS = {"encrypt", "encrypt_encoded", "encrypt_zero", "encrypt_pair"}

#: call tails producing packed ciphertext
_PACK_TAILS = {"pack_ciphers", "pack_histogram", "pack_values"}

#: call tails producing fixed-point encodings
_ENCODE_TAILS = {"encode", "encode_pair"}

#: call tails producing plaintext from ciphertext
_DECRYPT_TAILS = {
    "decrypt",
    "decrypt_raw",
    "decrypt_histogram",
    "unpack_values",
    "unpack_histogram",
    "decode_sums",
    "decode_pair_histogram",
}

_MAX_ROUNDS = 4


@dataclass(frozen=True)
class Domain:
    """Abstract value of one expression.

    Attributes:
        kind: ``plain`` / ``cipher`` / ``packed`` / ``encoded``.
        key: source-level context expression a cipher was produced by
            (``"ctx"``, ``"self.context"``); identity for messages only.
        exponent: statically known fixed-point exponent, else ``None``.
        from_decrypt: the value came straight out of a decrypt call
            (CR104's trigger).
        container: the expression is a list/tuple *of* this domain.
        mixed_exponents: container elements carry differing known
            exponents (CR102's packing trigger).
    """

    kind: str
    key: str | None = None
    exponent: int | None = None
    from_decrypt: bool = False
    container: bool = False
    mixed_exponents: bool = False

    def scalar(self) -> "Domain":
        """Element domain of a container (identity for scalars)."""
        return replace(self, container=False) if self.container else self


def _plain(from_decrypt: bool = False) -> Domain:
    return Domain(PLAIN, from_decrypt=from_decrypt)


def _annotation_domain(ann: ast.expr | None) -> Domain | None:
    """Domain a parameter/variable annotation implies, if any."""
    if ann is None:
        return None
    names: set[str] = set()
    for node in ast.walk(ann):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    container = bool(names & {"list", "List", "Sequence", "Iterable", "tuple", "Tuple"})
    if "EncryptedNumber" in names:
        return Domain(CIPHER, container=container)
    if "PackedCipher" in names:
        return Domain(PACKED, container=container)
    if "EncodedNumber" in names:
        return Domain(ENCODED, container=container)
    if names & {"float", "int"} and not names & {"str", "bytes"}:
        return _plain()
    return None


def _const_int(node: ast.expr | None) -> int | None:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return None if inner is None else -inner
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


class DomainChecker:
    """Abstract interpretation of crypto values over a package index."""

    checker_name = "domains"

    def __init__(
        self, index: PackageIndex, scope: tuple[str, ...] = DEFAULT_SCOPE
    ) -> None:
        self.index = index
        self.scope = scope
        #: function key -> return Domain (interprocedural summaries)
        self.summaries: dict[str, Domain | None] = {}

    # ------------------------------------------------------------------
    def run(self) -> Reporter:
        reporter = Reporter()
        functions = [
            info
            for module in self.index.iter_modules(self.scope)
            for info in self._module_functions(module)
        ]
        # Round 0..n-1: summaries to a fixpoint (no reporting); the
        # final round reports with stable summaries.
        for round_no in range(_MAX_ROUNDS):
            changed = False
            for info in functions:
                summary = _FunctionEval(self, info, reporter=None).summarize()
                key = f"{info.module.name}:{info.qualname}"
                if self.summaries.get(key) != summary:
                    self.summaries[key] = summary
                    changed = True
            if not changed:
                break
        for info in functions:
            _FunctionEval(self, info, reporter=reporter).summarize()
        return reporter

    def _module_functions(self, module: ModuleInfo):
        for key, info in self.index.functions.items():
            if info.module is module:
                yield info

    def summary_for(self, module: ModuleInfo, name: str | None) -> Domain | None:
        info = self.index.resolve_function(module, name)
        if info is None:
            return None
        return self.summaries.get(f"{info.module.name}:{info.qualname}")


class _FunctionEval:
    """One straight-line abstract interpretation of a function body."""

    def __init__(
        self,
        checker: DomainChecker,
        info: FunctionInfo,
        reporter: Reporter | None,
    ) -> None:
        self.checker = checker
        self.info = info
        self.module = info.module
        self.reporter = reporter
        self.env: dict[str, Domain] = {}
        self.returns: list[Domain | None] = []
        args = info.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            domain = _annotation_domain(arg.annotation)
            if domain is not None:
                self.env[arg.arg] = domain

    # ------------------------------------------------------------------
    def summarize(self) -> Domain | None:
        self._walk(self.info.node.body)
        domains = {d for d in self.returns}
        if len(domains) == 1:
            return domains.pop()
        return None

    def _walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs are separate index entries
            if isinstance(stmt, ast.Assign):
                domain = self.eval(stmt.value)
                if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                    self._bind(stmt.targets[0].id, domain)
            elif isinstance(stmt, ast.AnnAssign):
                domain = self.eval(stmt.value) if stmt.value is not None else None
                if domain is None:
                    domain = _annotation_domain(stmt.annotation)
                if isinstance(stmt.target, ast.Name):
                    self._bind(stmt.target.id, domain)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    left = self.env.get(stmt.target.id)
                    right = self.eval(stmt.value)
                    result = self._binop_domains(stmt, stmt.op, left, right)
                    self._bind(stmt.target.id, result)
                else:
                    self.eval(stmt.value)
            elif isinstance(stmt, ast.Return):
                domain = self.eval(stmt.value) if stmt.value is not None else None
                self.returns.append(domain)
            elif isinstance(stmt, ast.Expr):
                self.eval(stmt.value)
            elif isinstance(stmt, (ast.If, ast.While)):
                self.eval(stmt.test)
                self._walk(stmt.body)
                self._walk(stmt.orelse)
            elif isinstance(stmt, ast.For):
                iter_domain = self.eval(stmt.iter)
                if isinstance(stmt.target, ast.Name) and iter_domain is not None:
                    self._bind(stmt.target.id, iter_domain.scalar())
                self._walk(stmt.body)
                self._walk(stmt.orelse)
            elif isinstance(stmt, ast.With):
                self._walk(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body)
                for handler in stmt.handlers:
                    self._walk(handler.body)
                self._walk(stmt.orelse)
                self._walk(stmt.finalbody)

    def _bind(self, name: str, domain: Domain | None) -> None:
        if domain is None:
            self.env.pop(name, None)
        else:
            self.env[name] = domain

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def eval(self, node: ast.expr | None) -> Domain | None:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return None
            if isinstance(node.value, (int, float)):
                return _plain()
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            return self._binop_domains(node, node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            base = self.eval(node.value)
            return base.scalar() if base is not None else None
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return self._container_of(node.elts)
        if isinstance(node, ast.ListComp):
            domain = self.eval(node.elt)
            if domain is not None:
                return replace(domain, container=True)
            return None
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            a, b = self.eval(node.body), self.eval(node.orelse)
            return a if a == b else None
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Attribute):
            self.eval(node.value)
            return None
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return None
        return None

    def _container_of(self, elts: list[ast.expr]) -> Domain | None:
        domains = [self.eval(e) for e in elts]
        known = [d for d in domains if d is not None]
        if not known or any(d.kind != known[0].kind for d in known):
            return None
        exponents = {d.exponent for d in known if d.exponent is not None}
        return replace(
            known[0],
            container=True,
            exponent=exponents.pop() if len(exponents) == 1 else None,
            mixed_exponents=len(exponents) > 1,
        )

    # ------------------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> Domain | None:
        for keyword in node.keywords:
            self.eval(keyword.value)
        arg_domains = [self.eval(arg) for arg in node.args]
        name = call_name(node)
        tail = name.rsplit(".", maxsplit=1)[-1] if name else None
        head = name.rsplit(".", maxsplit=1)[0] if name and "." in name else None

        if tail in _ENCRYPT_TAILS:
            self._check_reencrypt(node, arg_domains)
            exponent = _const_int(self._keyword(node, "exponent"))
            if tail == "encrypt_zero" and exponent is None and node.args:
                exponent = _const_int(node.args[0])
            return Domain(CIPHER, key=head, exponent=exponent)
        if tail == "EncryptedNumber":
            key = None
            if node.args:
                key_name = call_name(node.args[0]) if isinstance(node.args[0], ast.Call) else None
                key = key_name or (
                    node.args[0].id if isinstance(node.args[0], ast.Name) else None
                )
            exponent = (
                _const_int(node.args[2]) if len(node.args) >= 3 else None
            ) or _const_int(self._keyword(node, "exponent"))
            return Domain(CIPHER, key=key, exponent=exponent)
        if tail in _PACK_TAILS or tail == "PackedCipher":
            if tail in _PACK_TAILS:
                self._check_pack(node, arg_domains)
            return Domain(PACKED)
        if tail in _ENCODE_TAILS or tail == "EncodedNumber":
            exponent = _const_int(self._keyword(node, "exponent"))
            return Domain(ENCODED, exponent=exponent)
        if tail in _DECRYPT_TAILS:
            return _plain(from_decrypt=True)
        if tail == "decrypt_encoded":
            return Domain(ENCODED, from_decrypt=True)
        if tail == "raw_add":
            self._check_raw_add(node)
            return None
        summary = self.checker.summary_for(self.module, name)
        return summary

    def _keyword(self, node: ast.Call, name: str) -> ast.expr | None:
        for keyword in node.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    def _binop_domains(
        self, node: ast.AST, op: ast.operator, left: Domain | None, right: Domain | None
    ) -> Domain | None:
        kinds = {d.kind for d in (left, right) if d is not None}
        additive = isinstance(op, (ast.Add, ast.Sub))
        multiplicative = isinstance(op, ast.Mult)
        if PACKED in kinds and (additive or multiplicative) and len(kinds) >= 1:
            other = (
                right if left is not None and left.kind == PACKED else left
            )
            if other is not None:
                self._emit(
                    node,
                    "CR101",
                    "operator arithmetic on a Packed cipher: limbs share one "
                    "ciphertext and cannot be combined with "
                    f"a {other.kind} operand; unpack first or HAdd whole "
                    "packs via the packing API",
                )
            return None
        if additive and kinds == {CIPHER, PLAIN}:
            self._emit(
                node,
                "CR101",
                "cipher + plain number through an operator hides a "
                "plaintext-add powmod; encrypt the operand or call "
                "ctx.add_plain(...) explicitly",
            )
            return Domain(CIPHER, key=self._cipher_key(left, right))
        if additive and kinds == {CIPHER, ENCODED}:
            self._emit(
                node,
                "CR101",
                "cipher + EncodedNumber mixes domains: encrypt the encoding "
                "(ctx.encrypt_encoded) or add via ctx.add_plain",
            )
            return Domain(CIPHER, key=self._cipher_key(left, right))
        if multiplicative and kinds == {CIPHER} and left is not None and right is not None:
            self._emit(
                node,
                "CR101",
                "cipher * cipher is not expressible in Paillier (additively "
                "homomorphic only); one operand must be plaintext",
            )
            return None
        if kinds == {CIPHER} and left is not None and right is not None:
            return replace(left, exponent=None, from_decrypt=False)
        if kinds == {PLAIN}:
            carried = any(
                d is not None and d.from_decrypt for d in (left, right)
            )
            return _plain(from_decrypt=carried)
        if kinds == {CIPHER, PLAIN} and multiplicative:
            return Domain(CIPHER, key=self._cipher_key(left, right))
        return None

    @staticmethod
    def _cipher_key(left: Domain | None, right: Domain | None) -> str | None:
        for domain in (left, right):
            if domain is not None and domain.kind == CIPHER:
                return domain.key
        return None

    def _check_pack(self, node: ast.Call, arg_domains: list[Domain | None]) -> None:
        for arg, domain in zip(node.args, arg_domains):
            if domain is None:
                continue
            if domain.kind == PACKED:
                self._emit(
                    node,
                    "CR103",
                    "packing a value that is already Packed: limbs of limbs "
                    "corrupt every decode; pack plain EncryptedNumbers only",
                )
            elif domain.kind == CIPHER and domain.container and domain.mixed_exponents:
                self._emit(
                    node,
                    "CR102",
                    "packing ciphers with differing known exponents: packed "
                    "limbs share one exponent by construction; scale_to a "
                    "common exponent before packing",
                )

    def _check_raw_add(self, node: ast.Call) -> None:
        """CR102 for ``raw_add(a.ciphertext, b.ciphertext)`` on
        known-mismatched exponents — the raw layer never aligns."""
        exponents = []
        for arg in node.args:
            if (
                isinstance(arg, ast.Attribute)
                and arg.attr == "ciphertext"
                and isinstance(arg.value, ast.Name)
            ):
                domain = self.env.get(arg.value.id)
                if domain is not None and domain.kind == CIPHER:
                    exponents.append(domain.exponent)
        known = {e for e in exponents if e is not None}
        if len(known) > 1:
            self._emit(
                node,
                "CR102",
                f"raw_add of ciphers with differing exponents {sorted(known)}: "
                "the raw layer does not align; use ctx.add (which scales) or "
                "scale_to a common exponent first",
            )

    def _check_reencrypt(
        self, node: ast.Call, arg_domains: list[Domain | None]
    ) -> None:
        for domain in arg_domains:
            if domain is not None and domain.from_decrypt:
                self._emit(
                    node,
                    "CR104",
                    "encrypting a freshly decrypted value — a decrypt/encrypt "
                    "round trip wastes two powmods per value; keep operating "
                    "on the cipher or keep the plaintext",
                    severity=Severity.WARNING,
                )
                return

    # ------------------------------------------------------------------
    def _emit(
        self, node: ast.AST, rule: str, message: str, severity: str = Severity.ERROR
    ) -> None:
        if self.reporter is None:
            return
        span = node_span(node)
        self.reporter.emit(
            Finding(
                rule_id=rule,
                severity=severity,
                file=self.module.relpath,
                line=span[0],
                message=message,
                checker=self.checker.checker_name,
            ),
            self.module.suppressions,
            span,
        )


def run(index: PackageIndex, scope: tuple[str, ...] = DEFAULT_SCOPE) -> Reporter:
    """Convenience wrapper: run the domain checker over an index."""
    return DomainChecker(index, scope).run()
