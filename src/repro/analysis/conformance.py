"""Static↔runtime disclosure conformance (rule ``PB003``).

The privacy argument of the reproduction lives in three places that can
silently drift apart:

* the **static** declared-disclosure set the taint checker exempts
  (:data:`repro.analysis.taint.DECLARED_DISCLOSURES`);
* the **runtime** allow-list :class:`~repro.fed.channel.RecordingChannel`
  enforces per send (``_DECLARED_PLAINTEXT`` / ``_LABEL_DERIVED``);
* the **observed** wire — the per-message-type ledger recorded during
  the golden-fingerprint runs (``tests/golden/opcounts.json``).

This pass extracts the first two *statically* (by parsing the channel
and taint modules out of the shared :class:`PackageIndex` — nothing is
imported or executed), merges them with the documented
:data:`RUNTIME_ONLY_DISCLOSURES` delta, and emits the result as a
versioned artifact (``tests/golden/disclosure_conformance.json``).
``PB003`` fires when any leg disagrees:

* the channel allow-list is not exactly the static declared set plus
  the documented runtime-only delta;
* a type is both "must be ciphertext" (label-derived) and
  plaintext-allowed;
* an allow-listed name is not a message class at all (a typo would
  silently allow nothing — or worse, a future class);
* the checked-in artifact is missing or stale;
* a golden run put a message type on the wire that no allow-list
  sanctions, or the observed per-variant type set drifted from the
  artifact's expectation (either direction — a *vanished* declared
  message is as suspicious as a new one).

The runtime half of the loop is closed in ``tests/test_obs_golden.py``,
which replays the golden fingerprint and compares the live
:meth:`RecordingChannel.wire_ledger` against the same artifact.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.analysis.astutils import ModuleInfo, PackageIndex, call_name
from repro.analysis.findings import Finding, Reporter, Severity

__all__ = [
    "ARTIFACT_VERSION",
    "RUNTIME_ONLY_DISCLOSURES",
    "extract_declarations",
    "build_artifact",
    "check",
]

checker_name = "conformance"

#: artifact schema version; bump on shape changes
ARTIFACT_VERSION = 1

#: disclosures sanctioned at the channel but invisible to the taint
#: checker's label-derived analysis, each with its documented rationale
#: — the *only* legitimate difference between the static and runtime
#: allow-lists.
RUNTIME_ONLY_DISCLOSURES = {
    "LeafWeightBroadcast": (
        "leaf weights are the published model output; disclosure is the "
        "point of training (suppressed PB001 at the send site)"
    ),
    "Ack": (
        "transport metadata only: echoes a sequence number and a type "
        "name the receiver already saw"
    ),
}

_CHANNEL_MODULE = "fed/channel.py"
_TAINT_MODULE = "analysis/taint.py"
_MESSAGES_MODULE = "fed/messages.py"

#: package-inner prefixes scanned for message construction sites
_CONSTRUCT_SCOPE = ("core/", "gbdt/", "fed/", "serve/", "extensions/")


def _module(index: PackageIndex, inner_path: str) -> ModuleInfo | None:
    for module in index.iter_modules((inner_path,)):
        return module
    return None


def _class_tuple_names(
    module: ModuleInfo, class_name: str, attr: str
) -> tuple[list[str], int]:
    """Names in a class-level tuple assignment, plus its line (0 if absent)."""
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == class_name):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == attr
                and isinstance(stmt.value, (ast.Tuple, ast.List))
            ):
                names = [
                    elt.id for elt in stmt.value.elts if isinstance(elt, ast.Name)
                ]
                return names, stmt.lineno
    return [], 0


def _module_string_set(module: ModuleInfo, name: str) -> set[str]:
    """String constants of a module-level set/tuple assignment."""
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
            and isinstance(stmt.value, (ast.Set, ast.Tuple, ast.List))
        ):
            return {
                elt.value
                for elt in stmt.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
    return set()


def _message_classes(module: ModuleInfo) -> set[str]:
    return {
        node.name
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ClassDef)
    }


def _constructed_types(index: PackageIndex, classes: set[str]) -> set[str]:
    """Message classes instantiated anywhere in the construct scope."""
    constructed: set[str] = set()
    for module in index.iter_modules(_CONSTRUCT_SCOPE):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                tail = name.rsplit(".", maxsplit=1)[-1] if name else None
                if tail in classes:
                    constructed.add(tail)
    return constructed


def extract_declarations(index: PackageIndex) -> dict:
    """Statically extract every disclosure declaration from the tree.

    Returns a dict with ``declared`` (taint), ``allowlist`` and
    ``label_derived`` (channel, plus their source lines), ``classes``
    (message class names) and ``constructed`` (classes instantiated in
    the protocol/serving scope).  Empty sets mean the module was not
    found — callers report that as PB003 rather than crashing.
    """
    channel = _module(index, _CHANNEL_MODULE)
    taint = _module(index, _TAINT_MODULE)
    messages = _module(index, _MESSAGES_MODULE)
    allowlist: list[str] = []
    label_derived: list[str] = []
    allow_line = derived_line = 0
    if channel is not None:
        allowlist, allow_line = _class_tuple_names(
            channel, "RecordingChannel", "_DECLARED_PLAINTEXT"
        )
        label_derived, derived_line = _class_tuple_names(
            channel, "RecordingChannel", "_LABEL_DERIVED"
        )
    declared = _module_string_set(taint, "DECLARED_DISCLOSURES") if taint else set()
    classes = _message_classes(messages) if messages else set()
    return {
        "declared": declared,
        "allowlist": set(allowlist),
        "allow_line": allow_line,
        "label_derived": set(label_derived),
        "derived_line": derived_line,
        "classes": classes,
        "constructed": _constructed_types(index, classes) if classes else set(),
        "channel_relpath": channel.relpath if channel else _CHANNEL_MODULE,
    }


def _observed_wire_types(opcounts: dict) -> dict[str, list[str]]:
    """Per-variant message types of a golden op-count/ledger document.

    Accepts both the full ``opcounts.json`` shape (``variants`` ->
    ``bytes_by_type``) and a bare ``{variant: {type: bytes}}`` ledger.
    """
    variants = opcounts.get("variants", opcounts)
    observed: dict[str, list[str]] = {}
    for variant, payload in sorted(variants.items()):
        if isinstance(payload, dict):
            by_type = payload.get("bytes_by_type", payload)
            observed[variant] = sorted(by_type)
    return observed


def build_artifact(index: PackageIndex, opcounts_path: str | Path | None = None) -> dict:
    """Build the versioned disclosure-conformance artifact (JSON-ready)."""
    decl = extract_declarations(index)
    expected_wire: dict[str, list[str]] = {}
    if opcounts_path is not None and Path(opcounts_path).exists():
        with open(opcounts_path, encoding="utf-8") as handle:
            expected_wire = _observed_wire_types(json.load(handle))
    return {
        "version": ARTIFACT_VERSION,
        "declared_disclosures": sorted(decl["declared"]),
        "runtime_allowlist": sorted(decl["allowlist"]),
        "label_derived": sorted(decl["label_derived"]),
        "runtime_only": {
            name: RUNTIME_ONLY_DISCLOSURES[name]
            for name in sorted(RUNTIME_ONLY_DISCLOSURES)
        },
        "declared_never_constructed": sorted(
            (decl["declared"] | decl["allowlist"]) - decl["constructed"]
        ),
        "constructed_types": sorted(decl["constructed"]),
        "expected_wire_types": expected_wire,
    }


def check(
    index: PackageIndex,
    artifact_path: str | Path,
    opcounts_path: str | Path | None = None,
    ledger: dict | None = None,
) -> Reporter:
    """Cross-check every disclosure declaration; PB003 on any drift.

    Args:
        index: the package index of the *repro* tree.
        artifact_path: checked-in conformance artifact location.
        opcounts_path: golden op-count document whose per-type byte
            ledger is the runtime observation (optional).
        ledger: an explicit ``{variant: {type: bytes}}`` wire ledger to
            check instead of / in addition to ``opcounts_path`` (the
            ``--wire-ledger`` CLI path).
    """
    reporter = Reporter()
    decl = extract_declarations(index)
    artifact_path = Path(artifact_path)
    artifact_file = artifact_path.name
    channel_file = decl["channel_relpath"]

    def emit(message: str, file: str, line: int = 0) -> None:
        reporter.emit(
            Finding(
                rule_id="PB003",
                severity=Severity.ERROR,
                file=file,
                line=line,
                message=message,
                checker=checker_name,
            )
        )

    if not decl["allowlist"] or not decl["declared"]:
        emit(
            "could not extract the disclosure declarations "
            "(RecordingChannel._DECLARED_PLAINTEXT / "
            "taint.DECLARED_DISCLOSURES); the conformance check has "
            "nothing to anchor on",
            channel_file,
        )
        return reporter

    # Leg 1: static set vs runtime allow-list, modulo the documented delta.
    expected_allow = decl["declared"] | set(RUNTIME_ONLY_DISCLOSURES)
    for name in sorted(decl["allowlist"] - expected_allow):
        emit(
            f"{name} is plaintext-allowed at the channel but neither a "
            "declared disclosure (taint.DECLARED_DISCLOSURES) nor a "
            "documented runtime-only disclosure "
            "(conformance.RUNTIME_ONLY_DISCLOSURES)",
            channel_file,
            decl["allow_line"],
        )
    for name in sorted(expected_allow - decl["allowlist"]):
        emit(
            f"{name} is a declared disclosure but missing from "
            "RecordingChannel._DECLARED_PLAINTEXT; the runtime guard "
            "would reject a sanctioned message",
            channel_file,
            decl["allow_line"],
        )
    for name in sorted(decl["allowlist"] & decl["label_derived"]):
        emit(
            f"{name} is both label-derived (must be ciphertext) and "
            "plaintext-allowed; the guard's first matching branch wins "
            "silently",
            channel_file,
            decl["derived_line"],
        )
    for name in sorted(
        (decl["allowlist"] | decl["label_derived"]) - decl["classes"]
    ):
        emit(
            f"{name} appears in the channel declarations but is not a "
            "message class in fed/messages.py",
            channel_file,
            decl["allow_line"],
        )

    # Leg 2: the checked-in artifact must match a fresh extraction.
    fresh = build_artifact(index, opcounts_path)
    if not artifact_path.exists():
        emit(
            f"conformance artifact {artifact_file} is missing; generate "
            "it with `python -m repro.analysis --emit-conformance`",
            artifact_file,
        )
    else:
        with open(artifact_path, encoding="utf-8") as handle:
            stored = json.load(handle)
        if stored != fresh:
            stale = sorted(
                key
                for key in fresh.keys() | stored.keys()
                if stored.get(key) != fresh.get(key)
            )
            emit(
                f"conformance artifact {artifact_file} is stale "
                f"(fields out of date: {', '.join(stale)}); regenerate "
                "with `python -m repro.analysis --emit-conformance`",
                artifact_file,
            )

    # Leg 3: the observed wire (golden ledger) vs the declarations.
    observations: dict[str, list[str]] = {}
    if opcounts_path is not None and Path(opcounts_path).exists():
        with open(opcounts_path, encoding="utf-8") as handle:
            observations.update(_observed_wire_types(json.load(handle)))
    if ledger is not None:
        observations.update(_observed_wire_types(ledger))
    sanctioned = decl["allowlist"] | decl["label_derived"]
    expected_wire = fresh["expected_wire_types"]
    for variant, types in sorted(observations.items()):
        for name in sorted(set(types) - sanctioned):
            emit(
                f"golden run ({variant}) put {name} on the wire but no "
                "allow-list sanctions it — an undeclared disclosure "
                "reached the channel",
                artifact_file,
            )
        expected = set(expected_wire.get(variant, types))
        for name in sorted(set(types) - expected):
            emit(
                f"golden run ({variant}) observed unexpected wire type "
                f"{name}; not in the artifact's expected_wire_types",
                artifact_file,
            )
        for name in sorted(expected - set(types)):
            emit(
                f"golden run ({variant}) never sent {name} although the "
                "artifact expects it on the wire — a declared message "
                "vanished (dead protocol path?)",
                artifact_file,
            )
    return reporter
