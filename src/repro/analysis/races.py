"""Schedule race detector (rules ``SCH101``-``SCH103``).

The structural validator (:mod:`repro.analysis.schedule`) proves a task
graph is *well-formed*; this pass proves it is *race-free*.  Every task
the :class:`~repro.core.protocol.ProtocolScheduler` submits declares
the shared state it touches — histogram buffers, channel sequence
counters, placement bitmaps — through the declared-effects table
(:func:`repro.core.protocol.declared_effects`).  The detector joins
those footprints with the schedule's happens-before relation and
reports any unordered overlap:

* **SCH101** — two tasks *write* the same location with no
  happens-before path between them (nondeterministic final state);
* **SCH102** — a read and a write of the same location with no
  happens-before path (the read observes a nondeterministic snapshot);
* **SCH103** — a task that performs real work (duration > 0) but
  declares no footprint at all (warning: the table lost coverage, so
  races through that task would be invisible).

Happens-before is the union of two edge families, both sound for the
greedy list scheduler in :mod:`repro.fed.simtime`:

* dependency edges (``task.deps``), and
* per-``(resource, lane)`` FIFO edges — a lane executes its tasks
  serially in submission order, so program order on a lane *is* an
  ordering (``Resource.reserve`` only ever pushes ``free_at`` forward).

Why this matters: the paper's pipelining (§4) is exactly the freedom to
run histogram sub-tasks concurrently across lanes, and the ROADMAP's
parallel crypto "blaster lanes" widen that freedom.  A refactor that
drops a dependency edge would today still produce *a* makespan; with
this pass it produces a finding.

Reachability is computed with per-task integer bitmasks over the
task-id-ordered DAG — O(V·E/64) and exact.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.findings import Finding, Reporter, Severity

__all__ = ["detect_races", "happens_before_masks", "self_check"]

#: duration below which a task is an ordering anchor, not work
_EPS = 1e-9

checker_name = "races"

#: an effects function: task -> (reads, writes) or None when unknown
EffectsFn = Callable[[object], "tuple[frozenset[str], frozenset[str]] | None"]


def _finding(rule: str, label: str, message: str, severity: str = Severity.ERROR):
    return Finding(
        rule_id=rule,
        severity=severity,
        file=f"<schedule:{label}>",
        line=0,
        message=message,
        checker=checker_name,
    )


def happens_before_masks(tasks: Sequence) -> dict[int, int]:
    """Per-task reachability bitmask over the happens-before DAG.

    Bit ``j`` of ``masks[i]`` is set iff task ``j`` happens-before (or
    is) task ``i``.  Edges: declared dependencies plus same-lane FIFO
    successors.  Dependency ids that are dangling or non-causal (>= the
    dependent's id) are ignored here — the structural validator reports
    those separately.
    """
    order = sorted(tasks, key=lambda t: t.task_id)
    bit_of = {task.task_id: i for i, task in enumerate(order)}
    lane_prev: dict[tuple[str, int], int] = {}
    masks: dict[int, int] = {}
    for i, task in enumerate(order):
        mask = 1 << i
        for dep_id in task.deps:
            dep_bit = bit_of.get(dep_id)
            if dep_bit is not None and dep_bit < i:
                mask |= masks[order[dep_bit].task_id]
        lane_key = (task.resource, task.lane)
        prev_bit = lane_prev.get(lane_key)
        if prev_bit is not None:
            mask |= masks[order[prev_bit].task_id]
        lane_prev[lane_key] = i
        masks[task.task_id] = mask
    return masks


def detect_races(
    tasks: Sequence,
    effects_of: EffectsFn,
    label: str = "graph",
) -> list[Finding]:
    """Happens-before check of one task graph; returns findings.

    Args:
        tasks: ``SimTask``-shaped objects (``task_id``, ``deps``,
            ``resource``, ``lane``, ``name``, ``start``, ``end``).
        effects_of: maps a task to its declared ``(reads, writes)``
            footprint, or ``None`` when the task is unknown to the
            effects table.
        label: run label embedded in findings.
    """
    findings: list[Finding] = []
    masks = happens_before_masks(tasks)
    order = sorted(tasks, key=lambda t: t.task_id)
    bit_of = {task.task_id: i for i, task in enumerate(order)}

    readers: dict[str, list] = {}
    writers: dict[str, list] = {}
    for task in order:
        effects = effects_of(task)
        if effects is None:
            if task.end - task.start > _EPS:
                findings.append(
                    _finding(
                        "SCH103",
                        label,
                        f"task {task.task_id} ({task.name!r}) performs work "
                        "but declares no read/write footprint; extend the "
                        "declared-effects table so races through it stay "
                        "visible",
                        severity=Severity.WARNING,
                    )
                )
            continue
        reads, writes = effects
        for loc in reads:
            readers.setdefault(loc, []).append(task)
        for loc in writes:
            writers.setdefault(loc, []).append(task)

    def ordered(a, b) -> bool:
        return bool(masks[b.task_id] >> bit_of[a.task_id] & 1) or bool(
            masks[a.task_id] >> bit_of[b.task_id] & 1
        )

    for loc in sorted(writers):
        ws = writers[loc]
        for i, a in enumerate(ws):
            for b in ws[i + 1 :]:
                if not ordered(a, b):
                    findings.append(
                        _finding(
                            "SCH101",
                            label,
                            f"unordered write/write on {loc!r}: tasks "
                            f"{a.task_id} ({a.name!r} on {a.resource}) and "
                            f"{b.task_id} ({b.name!r} on {b.resource}) have "
                            "no happens-before path",
                        )
                    )
            for r in readers.get(loc, ()):
                if r.task_id == a.task_id:
                    continue  # a task may read and write one location
                if not ordered(a, r):
                    findings.append(
                        _finding(
                            "SCH102",
                            label,
                            f"unordered read/write on {loc!r}: write "
                            f"{a.task_id} ({a.name!r} on {a.resource}) vs "
                            f"read {r.task_id} ({r.name!r} on {r.resource}) "
                            "with no happens-before path",
                        )
                    )
    return findings


def self_check(n_trees: int = 2) -> Reporter:
    """Race-check the real scheduler's graphs (every variant, ±faults).

    Shares the analytic-trace graphs with
    :func:`repro.analysis.schedule.self_check` and joins them with the
    protocol's declared-effects table.  Imported lazily so the purely
    static checkers stay import-light.
    """
    from repro.analysis.schedule import iter_self_check_graphs
    from repro.core.protocol import declared_effects

    reporter = Reporter()
    for label, _plan, graph in iter_self_check_graphs(n_trees):
        for finding in detect_races(graph, declared_effects, label):
            reporter.emit(finding)
    return reporter
