"""Schedule-graph validator (rules ``SCH001``-``SCH005``).

The protocol schedulers in :mod:`repro.core.protocol` emit task graphs
whose *structure* carries the paper's speedup claims (overlap of Enc /
CipherComm / BuildHistA, clean/dirty sub-task slicing, ...).  A
malformed graph — a dependency cycle, a dangling edge after a refactor,
two tasks double-booking a compute lane — would corrupt every makespan
silently: the greedy engine still returns *a* number.

This validator checks any task graph (objects exposing ``task_id``,
``deps``, ``resource``, ``lane``, ``start``, ``end``):

* **SCH001** — dependency cycles;
* **SCH002** — dangling dependency ids;
* **SCH003** — two tasks overlapping on the same ``(resource, lane)``;
* **SCH004** — causality: a task starting before a dependency ends;
* **SCH005** — fault consistency: with a ``fault_plan``, a task
  starting inside one of its resource's party pause windows (a paused
  party starts no new work — :class:`~repro.fed.faults.FaultyEngine`
  must have pushed the start past the window).

:func:`self_check` exercises the real :class:`ProtocolScheduler` over
small analytic traces for every protocol variant — fault-free and
fault-injected — and validates each emitted tree graph, the form run
by ``python -m repro.analysis``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.findings import Finding, Reporter, Severity

__all__ = ["validate_task_graph", "iter_self_check_graphs", "self_check"]

#: float-comparison slack for interval overlap, in simulated seconds
_EPS = 1e-9

checker_name = "schedule"


def _finding(rule: str, label: str, message: str) -> Finding:
    return Finding(
        rule_id=rule,
        severity=Severity.ERROR,
        file=f"<schedule:{label}>",
        line=0,
        message=message,
        checker=checker_name,
    )


def validate_task_graph(
    tasks: Sequence, label: str = "graph", fault_plan=None
) -> list[Finding]:
    """Validate one task graph; returns findings (empty = healthy).

    Args:
        tasks: the graph (``SimTask``-shaped objects).
        label: run label embedded in findings.
        fault_plan: the :class:`~repro.fed.faults.FaultPlan` the graph
            was scheduled under, if any — enables the SCH005 pause
            window check.
    """
    findings: list[Finding] = []
    by_id = {task.task_id: task for task in tasks}

    # SCH002: dangling dependencies.
    for task in tasks:
        for dep_id in task.deps:
            if dep_id not in by_id:
                findings.append(
                    _finding(
                        "SCH002",
                        label,
                        f"task {task.task_id} ({task.name!r}) depends on "
                        f"unknown task id {dep_id}",
                    )
                )

    # SCH001: cycles, via iterative DFS over dependency edges.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {task_id: WHITE for task_id in by_id}
    for root in by_id:
        if color[root] != WHITE:
            continue
        stack: list[tuple[int, Iterable[int]]] = [(root, iter(by_id[root].deps))]
        color[root] = GREY
        while stack:
            node, deps = stack[-1]
            advanced = False
            for dep in deps:
                if dep not in by_id:
                    continue
                if color[dep] == GREY:
                    findings.append(
                        _finding(
                            "SCH001",
                            label,
                            f"dependency cycle through tasks {dep} and {node}",
                        )
                    )
                elif color[dep] == WHITE:
                    color[dep] = GREY
                    stack.append((dep, iter(by_id[dep].deps)))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()

    # SCH004: a task must not start before its dependencies end.
    for task in tasks:
        for dep_id in task.deps:
            dep = by_id.get(dep_id)
            if dep is not None and task.start < dep.end - _EPS:
                findings.append(
                    _finding(
                        "SCH004",
                        label,
                        f"task {task.task_id} ({task.name!r}) starts at "
                        f"{task.start:.6f} before dependency {dep_id} ends "
                        f"at {dep.end:.6f}",
                    )
                )

    # SCH003: lane double-booking.
    lanes: dict[tuple[str, int], list] = {}
    for task in tasks:
        lanes.setdefault((task.resource, task.lane), []).append(task)
    for (resource, lane), members in sorted(lanes.items()):
        members.sort(key=lambda t: (t.start, t.end))
        for earlier, later in zip(members, members[1:]):
            if later.start < earlier.end - _EPS:
                findings.append(
                    _finding(
                        "SCH003",
                        label,
                        f"tasks {earlier.task_id} ({earlier.name!r}) and "
                        f"{later.task_id} ({later.name!r}) overlap on "
                        f"{resource}[{lane}]: [{earlier.start:.6f}, {earlier.end:.6f}) "
                        f"vs [{later.start:.6f}, {later.end:.6f})",
                    )
                )

    # SCH005: no task may *start* inside a pause window of its
    # resource's party (zero-length anchor tasks are exempt — they model
    # instantaneous ordering, not work).
    if fault_plan is not None:
        from repro.fed.faults import party_of_resource

        for task in tasks:
            if task.end - task.start <= _EPS:
                continue
            party = party_of_resource(task.resource)
            if party is None:
                continue
            window = fault_plan.paused_at(party, task.start + _EPS)
            if window is not None:
                findings.append(
                    _finding(
                        "SCH005",
                        label,
                        f"task {task.task_id} ({task.name!r}) starts at "
                        f"{task.start:.6f} inside party {party}'s pause "
                        f"window [{window.start:.6f}, {window.end:.6f})",
                    )
                )
    return findings


def iter_self_check_graphs(n_trees: int = 2):
    """Yield ``(label, fault_plan, task_graph)`` for every self-check run.

    One analytic trace, every protocol variant, fault-free and
    fault-injected — the shared graph source of both the structural
    validator (:func:`self_check`) and the race detector
    (:func:`repro.analysis.races.self_check`).  Imported lazily so the
    purely-static checkers stay import-light.
    """
    from repro.bench.costmodel import CostModel
    from repro.core.config import VF2BoostConfig
    from repro.core.profile import analytic_trace
    from repro.core.protocol import ProtocolScheduler
    from repro.fed.cluster import ClusterSpec
    from repro.fed.faults import FaultPlan, LaneSlowdown, PauseWindow

    trace = analytic_trace(
        n_instances=4096,
        features_active=16,
        features_passive=[16, 8],
        density=0.5,
        n_bins=16,
        n_layers=4,
        n_trees=n_trees,
    )
    variants = {
        "vf2boost": VF2BoostConfig.vf2boost(),
        "vf_gbdt": VF2BoostConfig.vf_gbdt(),
        "vf_mock": VF2BoostConfig.vf_mock(),
    }
    cost = CostModel.paper()
    cluster = ClusterSpec()
    # Fault-injected variants must satisfy the same structural rules
    # *plus* SCH005 (no task starts inside its party's pause window).
    fault_plans = {
        "": None,
        "+faults": FaultPlan(
            seed=17,
            slowdowns=(LaneSlowdown("A1", 2.5),),
            pauses=(PauseWindow(party=1, start=0.5, end=1.5),),
        ),
    }
    for label, config in variants.items():
        scheduler = ProtocolScheduler(config, cost, cluster)
        for suffix, plan in fault_plans.items():
            result = scheduler.schedule(trace, collect_tasks=True, fault_plan=plan)
            for tree_index, graph in enumerate(result.task_graphs):
                yield f"{label}{suffix}:tree{tree_index}", plan, graph


def self_check(n_trees: int = 2) -> Reporter:
    """Run every protocol variant on a small analytic trace and validate."""
    reporter = Reporter()
    for label, plan, graph in iter_self_check_graphs(n_trees):
        for finding in validate_task_graph(graph, label, fault_plan=plan):
            reporter.emit(finding)
    return reporter
