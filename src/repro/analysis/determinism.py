"""Determinism lint for simulation-reachable code (rules ``DET001``-``DET003``).

The simulator's contract (:mod:`repro.fed.simtime`) is *exact
repeatability*: one CPU reproduces two data centers, and every table in
the paper regenerates bit-identically.  Three hazard classes can break
that silently:

* **DET001 — wall-clock reads** (``time.time``, ``time.perf_counter``,
  ``datetime.now``, ...): simulated time must come from the engine,
  never the host.  Both *calls* and wall-clock *references as function
  parameter defaults* (``timer=time.perf_counter``) are flagged — a
  defaulted timer hard-codes the host clock just as surely as calling
  it, only one stack frame later.  ``repro.bench.microbench`` measures
  *real* crypto throughput by design; its timing loops carry explicit
  ``# repro: allow[DET001]`` suppressions, and the injectable-timer
  defaults in ``bench/costmodel.py`` / ``bench/calibrate.py`` carry
  line-level ones.

* **DET002 — nondeterministic randomness**: unseeded
  ``random.Random()`` / ``numpy.random.default_rng()`` construction,
  the module-level ``random.*`` / legacy ``numpy.random.*`` global
  state, and ``secrets`` usage.  The scope includes the fixed-point
  encoder's exponent-jitter path (``crypto/encoding.py``,
  ``crypto/ciphertext.py``) because jittered exponents feed the
  ``E``-dependent costs of §5.1 — an unseeded jitter RNG makes
  scheduled makespans run-to-run unstable.

* **DET003 — set-iteration-order dependence**: iterating a ``set``
  directly (``for x in {...}`` / ``list(set(...))``) observes hash
  order, which varies across processes for str elements.  Wrapping in
  ``sorted(...)`` (or any order-insensitive reduction) is the fix and
  is recognized as safe.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import (
    ModuleInfo,
    PackageIndex,
    call_name,
    dotted_name,
    node_span,
)
from repro.analysis.findings import Finding, Reporter, Severity

__all__ = ["DeterminismChecker", "DEFAULT_SCOPE", "run"]

#: package-inner path prefixes the simulator's repeatability depends on
DEFAULT_SCOPE = (
    "fed/",
    "core/protocol.py",
    "bench/",
    "serve/",
    "obs/",
    "crypto/encoding.py",
    "crypto/ciphertext.py",
)

WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: module-level random functions that consult interpreter-global state
_GLOBAL_RANDOM_TAILS = {
    "random",
    "randrange",
    "randint",
    "uniform",
    "shuffle",
    "choice",
    "choices",
    "sample",
    "getrandbits",
    "randbytes",
    "gauss",
    "normalvariate",
    "seed",
}

_NUMPY_LEGACY_TAILS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "shuffle",
    "permutation",
    "choice",
    "seed",
    "uniform",
    "normal",
}

#: order-insensitive consumers that make raw set iteration safe
_ORDER_SAFE_WRAPPERS = {"sorted", "min", "max", "sum", "len", "any", "all", "frozenset", "set"}


class DeterminismChecker:
    """Scan simulation-reachable modules for nondeterminism hazards."""

    checker_name = "determinism"

    def __init__(
        self, index: PackageIndex, scope: tuple[str, ...] = DEFAULT_SCOPE
    ) -> None:
        self.index = index
        self.scope = scope

    def run(self) -> Reporter:
        reporter = Reporter()
        for module in self.index.iter_modules(self.scope):
            self._check_module(module, reporter)
        return reporter

    # ------------------------------------------------------------------
    def _check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        set_names = self._set_valued_names(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                self._check_call(module, node, reporter)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                self._check_defaults(module, node, reporter)
            if isinstance(node, ast.For):
                self._check_set_iteration(module, node.iter, set_names, reporter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    self._check_set_iteration(module, gen.iter, set_names, reporter)

    # ------------------------------------------------------------------
    # DET001 / DET002
    # ------------------------------------------------------------------
    def _check_call(self, module: ModuleInfo, node: ast.Call, reporter: Reporter) -> None:
        name = call_name(node)
        resolved = module.resolve(name) if name else None
        if not resolved:
            return
        if resolved in WALL_CLOCK:
            self._emit(
                reporter,
                module,
                node,
                "DET001",
                f"wall-clock read {resolved!r} in a simulation-reachable module; "
                "simulated time must come from SimEngine, not the host clock",
            )
            return
        if resolved == "random.Random" and not node.args and not node.keywords:
            self._emit(
                reporter,
                module,
                node,
                "DET002",
                "unseeded random.Random() constructed in simulation-reachable "
                "code; inject a seeded RNG or derive a deterministic seed",
            )
            return
        if (
            resolved == "numpy.random.default_rng"
            and not node.args
            and not node.keywords
        ):
            self._emit(
                reporter,
                module,
                node,
                "DET002",
                "unseeded numpy.random.default_rng() in simulation-reachable code",
            )
            return
        head, _, tail = resolved.rpartition(".")
        if head == "random" and tail in _GLOBAL_RANDOM_TAILS:
            self._emit(
                reporter,
                module,
                node,
                "DET002",
                f"module-level {resolved!r} consults interpreter-global RNG "
                "state; use an injected random.Random(seed)",
            )
        elif head == "numpy.random" and tail in _NUMPY_LEGACY_TAILS:
            self._emit(
                reporter,
                module,
                node,
                "DET002",
                f"legacy global-state {resolved!r}; use numpy.random.default_rng(seed)",
            )
        elif resolved.startswith("secrets."):
            self._emit(
                reporter,
                module,
                node,
                "DET002",
                f"{resolved!r} is deliberately nondeterministic and must not "
                "reach simulation results",
            )

    def _check_defaults(self, module: ModuleInfo, node, reporter: Reporter) -> None:
        """DET001 for wall-clock *references* in parameter defaults."""
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            name = dotted_name(default)
            resolved = module.resolve(name) if name else None
            if resolved in WALL_CLOCK:
                self._emit(
                    reporter,
                    module,
                    default,
                    "DET001",
                    f"wall-clock function {resolved!r} as a parameter default "
                    "hard-codes the host clock; inject the timer at the call "
                    "site (simulation callers pass a deterministic one)",
                )

    # ------------------------------------------------------------------
    # DET003
    # ------------------------------------------------------------------
    @staticmethod
    def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = call_name(node)
            tail = name.rsplit(".", maxsplit=1)[-1] if name else None
            if tail in ("set", "frozenset"):
                return True
            # set-algebra methods return sets
            if tail in ("union", "intersection", "difference", "symmetric_difference"):
                return isinstance(node.func, ast.Attribute) and DeterminismChecker._is_set_expr(
                    node.func.value, set_names
                )
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return DeterminismChecker._is_set_expr(
                node.left, set_names
            ) and DeterminismChecker._is_set_expr(node.right, set_names)
        return False

    def _set_valued_names(self, module: ModuleInfo) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and self._is_set_expr(node.value, names):
                    names.add(target.id)
        return names

    def _check_set_iteration(
        self,
        module: ModuleInfo,
        iter_expr: ast.expr,
        set_names: set[str],
        reporter: Reporter,
    ) -> None:
        if self._is_set_expr(iter_expr, set_names):
            self._emit(
                reporter,
                module,
                iter_expr,
                "DET003",
                "iteration over a set observes hash order, which varies across "
                "processes; iterate sorted(...) or an ordered container",
            )

    # ------------------------------------------------------------------
    def _emit(
        self,
        reporter: Reporter,
        module: ModuleInfo,
        node: ast.AST,
        rule: str,
        message: str,
    ) -> None:
        span = node_span(node)
        reporter.emit(
            Finding(
                rule_id=rule,
                severity=Severity.ERROR,
                file=module.relpath,
                line=span[0],
                message=message,
                checker=self.checker_name,
            ),
            module.suppressions,
            span,
        )


def run(index: PackageIndex, scope: tuple[str, ...] = DEFAULT_SCOPE) -> Reporter:
    """Convenience wrapper: run the determinism lint over an index."""
    return DeterminismChecker(index, scope).run()
