"""Shared reporting layer of the static analyzers.

Every checker emits :class:`Finding` objects — (file, line, rule id,
severity, message) — through a :class:`Reporter`, which applies the
inline suppression syntax

    # repro: allow[RULE1,RULE2]

A suppression comment silences matching findings anchored on the same
line, on any line of the same multi-line statement, or on the line
directly above (a standalone comment).  ``allow[*]`` silences every
rule on that line; use sparingly.  The file-level form

    # repro: allow-file[RULE]

(conventionally placed in the module header) silences a rule for the
whole file — meant for modules whose *purpose* conflicts with a rule,
e.g. the measured-mode benchmark modules that call the wall clock by
design.

A coarse *baseline* file (JSON, per-``(rule, file)`` counts) lets the
analyzer be adopted on a repo with pre-existing findings and then
ratcheted: runs fail only when a ``(rule, file)`` pair exceeds its
frozen count.  The repo itself is kept clean, so CI runs with no
baseline at all.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Severity",
    "Finding",
    "Reporter",
    "Baseline",
    "parse_suppressions",
    "parse_comment_suppressions",
    "audit_suppressions",
    "SUPPRESSION_RE",
    "FILE_SUPPRESSION_RE",
    "FILE_WIDE",
]

#: hash-comment form of ``repro: allow[PB001]`` (one or more rule ids,
#: comma-separated; ``*`` for any rule)
SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")

#: hash-comment form of ``repro: allow-file[DET001]`` — whole-file
#: suppression for a rule.
FILE_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow-file\[([A-Za-z0-9_*,\s]+)\]")

#: pseudo line number under which file-level suppressions are stored
FILE_WIDE = 0


class Severity:
    """Finding severities, ordered by how loudly CI should complain."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnosis.

    Attributes:
        rule_id: stable identifier, e.g. ``PB001`` (taint), ``CR002``
            (crypto misuse), ``DET001`` (determinism), ``SCH003``
            (schedule graph).
        severity: one of :class:`Severity`'s constants.
        file: path of the offending file, repo-relative when possible;
            schedule-graph findings use a logical ``<schedule:...>`` name.
        line: 1-based line number (0 for whole-file / graph findings).
        message: human-readable description of the defect.
        checker: name of the checker that produced the finding.
    """

    rule_id: str
    severity: str
    file: str
    line: int
    message: str
    checker: str = ""

    def render(self) -> str:
        """One-line gcc-style rendering."""
        return f"{self.file}:{self.line}: {self.severity}: [{self.rule_id}] {self.message}"

    def to_json(self) -> dict:
        """JSON-serializable form (used by ``--format json`` and baselines)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "checker": self.checker,
        }


def _parse_rules(group: str) -> set[str]:
    return {token.strip() for token in group.split(",") if token.strip()}


def parse_suppressions(source_lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids allowed on them.

    File-level ``allow-file`` rules are collected under the pseudo line
    :data:`FILE_WIDE` (0), which no real finding anchors on.
    """
    allowed: dict[int, set[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        file_match = FILE_SUPPRESSION_RE.search(text)
        if file_match is not None:
            rules = _parse_rules(file_match.group(1))
            if rules:
                allowed.setdefault(FILE_WIDE, set()).update(rules)
            continue
        # A line may carry several allow comments (e.g. a test appending
        # allow[SUP001] after an existing allow): union them all.
        for match in SUPPRESSION_RE.finditer(text):
            rules = _parse_rules(match.group(1))
            if rules:
                allowed.setdefault(lineno, set()).update(rules)
    return allowed


def parse_comment_suppressions(source: str) -> dict[int, set[str]]:
    """Like :func:`parse_suppressions`, but only over *real* comments.

    Tokenizes the source so suppression syntax quoted inside docstrings
    or string literals (the analyzer's own documentation, test data) is
    not honored — and therefore never audited as unused.  Falls back to
    the line-based parse when the file does not tokenize (it then also
    fails :func:`ast.parse` and surfaces as ``SYN001``).
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return parse_suppressions(source.splitlines())
    allowed: dict[int, set[str]] = {}
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        file_match = FILE_SUPPRESSION_RE.search(token.string)
        if file_match is not None:
            rules = _parse_rules(file_match.group(1))
            if rules:
                allowed.setdefault(FILE_WIDE, set()).update(rules)
            continue
        for match in SUPPRESSION_RE.finditer(token.string):
            rules = _parse_rules(match.group(1))
            if rules:
                allowed.setdefault(token.start[0], set()).update(rules)
    return allowed


@dataclass
class Reporter:
    """Collects findings and filters suppressed ones.

    Checkers call :meth:`emit` with the finding plus the suppression map
    and line span of the anchoring statement; the reporter drops the
    finding when an ``allow`` comment covers it.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: ``(file, allow-comment line, rule id)`` of every suppression that
    #: actually silenced a finding — the input of :func:`audit_suppressions`.
    #: File-wide allows record under line :data:`FILE_WIDE`.
    used_suppressions: set[tuple[str, int, str]] = field(default_factory=set)

    def emit(
        self,
        finding: Finding,
        suppressions: dict[int, set[str]] | None = None,
        span: tuple[int, int] | None = None,
    ) -> None:
        """Record a finding unless an ``allow`` comment covers it.

        Args:
            finding: the diagnosis.
            suppressions: per-line allowed rules of the finding's file.
            span: inclusive (first, last) line range of the anchoring
                statement; defaults to the finding's own line.
        """
        if suppressions:
            file_rules = suppressions.get(FILE_WIDE)
            if file_rules and (finding.rule_id in file_rules or "*" in file_rules):
                self.suppressed.append(finding)
                self.used_suppressions.add(
                    (finding.file, FILE_WIDE, finding.rule_id)
                )
                return
            first, last = span if span is not None else (finding.line, finding.line)
            # The line above a statement hosts standalone allow comments.
            for lineno in range(max(1, first - 1), last + 1):
                rules = suppressions.get(lineno)
                if rules and (finding.rule_id in rules or "*" in rules):
                    self.suppressed.append(finding)
                    self.used_suppressions.add((finding.file, lineno, finding.rule_id))
                    return
        self.findings.append(finding)

    def extend(self, other: "Reporter") -> None:
        """Merge another reporter's findings into this one."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.used_suppressions |= other.used_suppressions

    def sorted_findings(self) -> list[Finding]:
        """Findings in a deterministic order: severity, file, line, rule,
        then message (the full tie-break keeps runs byte-identical even
        when one line hosts several findings of one rule)."""
        return sorted(
            self.findings,
            key=lambda f: (
                Severity.ORDER.get(f.severity, 9),
                f.file,
                f.line,
                f.rule_id,
                f.message,
            ),
        )

    def counts_by_rule(self) -> Counter:
        """Histogram of finding counts per rule id."""
        return Counter(f.rule_id for f in self.findings)


def audit_suppressions(modules, reporter: Reporter) -> Reporter:
    """``SUP001``: flag ``allow`` comments whose rule never fired (warning).

    Keeps the suppression inventory honest: a fixed bug whose ``allow``
    outlived it, or a typo'd rule id, would otherwise silently widen the
    blind spot.  Runs after every other pass over the same modules.

    Args:
        modules: module-shaped objects (``relpath`` / ``suppressions``
            attributes — :class:`repro.analysis.astutils.ModuleInfo`).
        reporter: the merged reporter of all prior passes; its
            :attr:`Reporter.used_suppressions` says which allows fired.

    Notes:
        * ``allow[*]`` counts as used when *any* rule was silenced on
          its line.
        * ``allow[SUP001]`` is never itself reported as unused — the
          audit cannot observe its own output without a fixpoint.
    """
    audit = Reporter()
    used = reporter.used_suppressions
    for module in modules:
        file = module.relpath
        used_lines = {line for (f, line, _) in used if f == file}
        for line, rules in sorted(module.suppressions.items()):
            for rule in sorted(rules):
                if rule == "SUP001":
                    continue
                if rule == "*":
                    if line in used_lines:
                        continue
                elif (file, line, rule) in used:
                    continue
                where = "file-wide allow" if line == FILE_WIDE else "allow"
                audit.emit(
                    Finding(
                        rule_id="SUP001",
                        severity=Severity.WARNING,
                        file=file,
                        line=line,
                        message=(
                            f"unused suppression: {where}[{rule}] never "
                            "silenced a finding; remove the comment or fix "
                            "the rule id"
                        ),
                        checker="suppression-audit",
                    ),
                    module.suppressions,
                )
    return audit


class Baseline:
    """Frozen per-``(rule, file)`` finding counts.

    Matching on exact line numbers would churn with every edit; counts
    per rule and file are stable enough to ratchet on, at the cost of
    allowing a finding to "move" within a file. Documented trade-off.
    """

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts: Counter = Counter(counts or {})

    @staticmethod
    def _key(finding: Finding) -> str:
        return f"{finding.rule_id}:{finding.file}"

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """Freeze the given findings into a baseline."""
        baseline = cls()
        for finding in findings:
            baseline.counts[cls._key(finding)] += 1
        return baseline

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline JSON file written by :meth:`save`."""
        data = json.loads(Path(path).read_text())
        return cls(data.get("counts", {}))

    def save(self, path: str | Path) -> None:
        """Write the baseline as JSON."""
        payload = {"version": 1, "counts": dict(sorted(self.counts.items()))}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def filter_new(self, findings: list[Finding]) -> list[Finding]:
        """Return only findings exceeding their frozen count."""
        budget = Counter(self.counts)
        fresh: list[Finding] = []
        for finding in findings:
            key = self._key(finding)
            if budget[key] > 0:
                budget[key] -= 1
            else:
                fresh.append(finding)
        return fresh
