"""``python -m repro.analysis`` — run every static checker over the repo.

Usage::

    python -m repro.analysis                 # report findings, exit 0
    python -m repro.analysis --strict        # exit 1 on any finding (CI gate)
    python -m repro.analysis --format json   # or: --format sarif
    python -m repro.analysis --rules PB001,DET002
    python -m repro.analysis --verbose       # per-pass wall time to stderr
    python -m repro.analysis --write-baseline analysis-baseline.json
    python -m repro.analysis --baseline analysis-baseline.json --strict
    python -m repro.analysis --emit-conformance        # refresh the artifact
    python -m repro.analysis --graph schedule.json     # race-check a graph
    python -m repro.analysis --wire-ledger ledger.json # PB003 vs a live ledger

Seven passes share one :class:`~repro.analysis.astutils.PackageIndex`
per scanned root (the tree is parsed exactly once): party-boundary
taint (PB), Paillier misuse (CR001-003), ciphertext-domain abstract
interpretation (CR101-104), determinism (DET), schedule structure +
races (SCH), disclosure conformance (PB003) and the suppression audit
(SUP001).  Files that fail to parse become ``SYN001`` findings instead
of aborting the run.

The default invocation scans the installed ``repro`` package *plus* the
repo's ``benchmarks/`` and ``examples/`` trees when they are present;
``--root``/``--package`` point the scan at another tree instead (the
test fixtures use this).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis import conformance, cryptolint, determinism, domains, races, schedule, taint
from repro.analysis.astutils import PackageIndex
from repro.analysis.findings import (
    Baseline,
    Finding,
    Reporter,
    Severity,
    audit_suppressions,
)
from repro.analysis.sarif import render_sarif

__all__ = ["main", "run_analysis", "RULE_FAMILIES"]

RULE_FAMILIES = {
    "PB": "party boundary (PB001/002 plaintext taint; PB003 static<->runtime "
    "disclosure conformance)",
    "CR": "Paillier misuse (CR001-003 cross-key/raw-layer/uncounted ops; "
    "CR101-104 ciphertext-domain abstract interpretation; CR105 "
    "powmod-choke-point bypass via direct 3-arg pow in crypto hot paths)",
    "DET": "determinism (wall clock, unseeded RNG, set-iteration order)",
    "SCH": "schedule graphs (SCH001-005 structure; SCH101-103 happens-before "
    "races over declared footprints)",
    "SUP": "suppression audit (SUP001 unused '# repro: allow[...]' comments)",
    "SYN": "syntax (SYN001 files the scanner could not parse)",
}

#: determinism scope matching every module (used for the extra trees,
#: where *all* code is expected to be simulation-deterministic)
_FULL_SCOPE = ("",)


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).parent


def _repo_root() -> Path:
    """The repository root when running from a source tree."""
    return default_root().parent.parent


def _syntax_findings(index: PackageIndex) -> Reporter:
    reporter = Reporter()
    for relpath, line, message in index.parse_errors:
        reporter.emit(
            Finding(
                rule_id="SYN001",
                severity=Severity.ERROR,
                file=relpath,
                line=line,
                message=f"file does not parse: {message}",
                checker="parse",
            )
        )
    return reporter


def _graph_effects(task_spec: dict):
    """Effects function payload for one ``--graph`` JSON task."""
    if "reads" not in task_spec and "writes" not in task_spec:
        return None
    return (
        frozenset(task_spec.get("reads", ())),
        frozenset(task_spec.get("writes", ())),
    )


def check_graph_file(path: Path) -> Reporter:
    """Validate + race-check an external task-graph JSON document.

    The document is ``{"tasks": [...]}`` where each task carries the
    ``SimTask`` fields (``task_id``, ``name``, ``resource``, ``lane``,
    ``start``, ``end``, ``deps``) plus optional explicit ``reads`` /
    ``writes`` footprint lists; a task with neither key has an unknown
    footprint (``SCH103`` if it performs work).
    """
    from repro.fed.simtime import SimTask

    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    specs = document.get("tasks", [])
    tasks = []
    effects_by_id: dict[int, tuple[frozenset, frozenset] | None] = {}
    for spec in specs:
        task = SimTask(
            name=spec.get("name", f"t{spec['task_id']}"),
            phase=spec.get("phase", ""),
            resource=spec.get("resource", "cpu"),
            lane=int(spec.get("lane", 0)),
            start=float(spec.get("start", 0.0)),
            end=float(spec.get("end", 0.0)),
            task_id=int(spec["task_id"]),
            deps=tuple(spec.get("deps", ())),
        )
        tasks.append(task)
        effects_by_id[task.task_id] = _graph_effects(spec)
    label = path.stem
    reporter = Reporter()
    for finding in schedule.validate_task_graph(tasks, label):
        reporter.emit(finding)
    for finding in races.detect_races(
        tasks, lambda t: effects_by_id[t.task_id], label
    ):
        reporter.emit(finding)
    return reporter


def _self_check_schedules(timings: dict[str, float]) -> Reporter:
    """Structural + race validation over one shared graph enumeration."""
    from repro.core.protocol import declared_effects

    reporter = Reporter()
    t_structure = t_races = 0.0
    t0 = time.perf_counter()
    for label, plan, graph in schedule.iter_self_check_graphs():
        t1 = time.perf_counter()
        for finding in schedule.validate_task_graph(graph, label, fault_plan=plan):
            reporter.emit(finding)
        t2 = time.perf_counter()
        for finding in races.detect_races(graph, declared_effects, label):
            reporter.emit(finding)
        t_structure += t2 - t1
        t_races += time.perf_counter() - t2
    total = time.perf_counter() - t0
    timings["schedule:build"] = total - t_structure - t_races
    timings["schedule:structure"] = t_structure
    timings["schedule:races"] = t_races
    return reporter


def run_analysis(
    root: Path | None = None,
    package: str = "repro",
    with_schedule: bool = True,
    rules: set[str] | None = None,
    timings: dict[str, float] | None = None,
    wire_ledger: dict | None = None,
) -> Reporter:
    """Run all checkers; returns the merged reporter.

    Args:
        root: package directory to scan; ``None`` scans the installed
            ``repro`` package plus the repo's ``benchmarks/`` and
            ``examples/`` trees.
        package: dotted package name of ``root``.
        with_schedule: run the (non-static) schedule self checks.
        rules: keep only these rule ids in the final findings.
        timings: optional dict filled with per-pass wall seconds.
        wire_ledger: explicit ``{variant: {type: bytes}}`` ledger for
            the PB003 runtime leg (``--wire-ledger``).
    """
    timings = timings if timings is not None else {}
    default_scan = root is None and package == "repro"
    roots: list[tuple[Path, str, bool]] = [
        (Path(root) if root is not None else default_root(), package, False)
    ]
    if default_scan:
        for extra in ("benchmarks", "examples"):
            extra_dir = _repo_root() / extra
            if extra_dir.is_dir():
                roots.append((extra_dir, extra, True))

    merged = Reporter()
    all_modules = []

    def timed(label: str, fn, *args, **kwargs):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        timings[label] = timings.get(label, 0.0) + (time.perf_counter() - t0)
        return result

    for scan_root, scan_package, is_extra in roots:
        prefix = scan_package
        index = timed(f"{prefix}:parse", PackageIndex, scan_root, package=scan_package)
        all_modules.extend(index.modules.values())
        merged.extend(_syntax_findings(index))
        merged.extend(timed(f"{prefix}:taint", taint.run, index))
        merged.extend(timed(f"{prefix}:cryptolint", cryptolint.run, index))
        det_scope = _FULL_SCOPE if is_extra else determinism.DEFAULT_SCOPE
        merged.extend(
            timed(f"{prefix}:determinism", determinism.run, index, scope=det_scope)
        )
        dom_scope = _FULL_SCOPE if is_extra else domains.DEFAULT_SCOPE
        merged.extend(timed(f"{prefix}:domains", domains.run, index, scope=dom_scope))
        if not is_extra and scan_package == "repro" and default_scan:
            golden_dir = _repo_root() / "tests" / "golden"
            if golden_dir.is_dir() or wire_ledger is not None:
                merged.extend(
                    timed(
                        "repro:conformance",
                        conformance.check,
                        index,
                        golden_dir / "disclosure_conformance.json",
                        opcounts_path=golden_dir / "opcounts.json",
                        ledger=wire_ledger,
                    )
                )

    if with_schedule:
        merged.extend(_self_check_schedules(timings))

    merged.extend(timed("suppression-audit", audit_suppressions, all_modules, merged))

    if rules:
        merged.findings = [f for f in merged.findings if f.rule_id in rules]
    return merged


def _render_text(findings: list[Finding], suppressed: int, out) -> None:
    for finding in findings:
        print(finding.render(), file=out)
    summary = f"{len(findings)} finding(s)"
    if suppressed:
        summary += f", {suppressed} suppressed via '# repro: allow[...]'"
    print(summary, file=out)


def _print_timings(timings: dict[str, float], total: float) -> None:
    for label, seconds in sorted(timings.items(), key=lambda kv: -kv[1]):
        print(f"  {label:<24} {seconds * 1000:8.1f} ms", file=sys.stderr)
    print(f"  {'total':<24} {total * 1000:8.1f} ms", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point. Returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Static privacy/crypto/determinism/schedule analysis "
        "of the VF2Boost reproduction.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to scan (default: the installed repro package "
        "plus the repo's benchmarks/ and examples/ trees)",
    )
    parser.add_argument(
        "--package",
        default="repro",
        help="dotted package name of the scanned tree (default: repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any unsuppressed finding remains (CI gate)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to report (default: all)",
    )
    parser.add_argument(
        "--no-schedule",
        action="store_true",
        help="skip the (non-static) schedule-graph self check",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print per-pass wall time to stderr",
    )
    parser.add_argument(
        "--graph",
        type=Path,
        default=None,
        help="also validate + race-check an external task-graph JSON file",
    )
    parser.add_argument(
        "--wire-ledger",
        type=Path,
        default=None,
        help="check a {variant: {type: bytes}} wire-ledger JSON against the "
        "disclosure declarations (PB003)",
    )
    parser.add_argument(
        "--emit-conformance",
        nargs="?",
        type=Path,
        const=Path("tests/golden/disclosure_conformance.json"),
        default=None,
        metavar="PATH",
        help="write the disclosure-conformance artifact and exit "
        "(default PATH: tests/golden/disclosure_conformance.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON; findings frozen there do not fail --strict",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        help="freeze the current findings into a baseline JSON and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the rule families and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for prefix, description in RULE_FAMILIES.items():
            print(f"{prefix}*: {description}")
        return 0

    if args.root is not None and not args.root.is_dir():
        parser.error(f"--root {args.root} is not a directory")

    if args.emit_conformance is not None:
        index = PackageIndex(args.root or default_root(), package=args.package)
        golden = _repo_root() / "tests" / "golden" / "opcounts.json"
        artifact = conformance.build_artifact(index, golden if golden.exists() else None)
        args.emit_conformance.parent.mkdir(parents=True, exist_ok=True)
        with open(args.emit_conformance, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"conformance artifact -> {args.emit_conformance}")
        return 0

    wire_ledger = None
    if args.wire_ledger is not None:
        with open(args.wire_ledger, encoding="utf-8") as handle:
            wire_ledger = json.load(handle)

    rules = (
        {token.strip() for token in args.rules.split(",") if token.strip()}
        if args.rules
        else None
    )
    timings: dict[str, float] = {}
    t0 = time.perf_counter()
    reporter = run_analysis(
        root=args.root,
        package=args.package,
        with_schedule=not args.no_schedule,
        rules=rules,
        timings=timings,
        wire_ledger=wire_ledger,
    )
    if args.graph is not None:
        graph_reporter = check_graph_file(args.graph)
        if rules:
            graph_reporter.findings = [
                f for f in graph_reporter.findings if f.rule_id in rules
            ]
        reporter.extend(graph_reporter)
    total = time.perf_counter() - t0
    findings = reporter.sorted_findings()

    if args.verbose:
        _print_timings(timings, total)

    if args.write_baseline is not None:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(f"baseline with {len(findings)} finding(s) -> {args.write_baseline}")
        return 0
    if args.baseline is not None:
        findings = Baseline.load(args.baseline).filter_new(findings)

    if args.format == "json":
        payload = {
            "findings": [f.to_json() for f in findings],
            "suppressed": len(reporter.suppressed),
        }
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        _render_text(findings, len(reporter.suppressed), sys.stdout)

    if args.strict and findings:
        return 1
    return 0
