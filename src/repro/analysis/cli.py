"""``python -m repro.analysis`` — run every static checker over the repo.

Usage::

    python -m repro.analysis                 # report findings, exit 0
    python -m repro.analysis --strict        # exit 1 on any finding (CI gate)
    python -m repro.analysis --format json
    python -m repro.analysis --rules PB001,DET002
    python -m repro.analysis --write-baseline analysis-baseline.json
    python -m repro.analysis --baseline analysis-baseline.json --strict

The four checkers (party-boundary taint, Paillier misuse, determinism,
schedule-graph validation) run over the installed ``repro`` package by
default; ``--root``/``--package`` point them at another tree (the test
fixtures use this).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import cryptolint, determinism, schedule, taint
from repro.analysis.astutils import PackageIndex
from repro.analysis.findings import Baseline, Finding, Reporter

__all__ = ["main", "run_analysis", "RULE_FAMILIES"]

RULE_FAMILIES = {
    "PB": "party-boundary taint (plaintext label-derived data toward a passive party)",
    "CR": "Paillier misuse (cross-key arithmetic, raw-layer bypass, uncounted ops)",
    "DET": "determinism (wall clock, unseeded RNG, set-iteration order)",
    "SCH": "schedule graphs (cycles, dangling deps, lane conflicts, causality)",
}


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).parent


def run_analysis(
    root: Path | None = None,
    package: str = "repro",
    with_schedule: bool = True,
    rules: set[str] | None = None,
) -> Reporter:
    """Run all checkers; returns the merged reporter."""
    index = PackageIndex(root or default_root(), package=package)
    merged = Reporter()
    merged.extend(taint.run(index))
    merged.extend(cryptolint.run(index))
    merged.extend(determinism.run(index))
    if with_schedule:
        merged.extend(schedule.self_check())
    if rules:
        merged.findings = [f for f in merged.findings if f.rule_id in rules]
    return merged


def _render_text(findings: list[Finding], suppressed: int, out) -> None:
    for finding in findings:
        print(finding.render(), file=out)
    summary = f"{len(findings)} finding(s)"
    if suppressed:
        summary += f", {suppressed} suppressed via '# repro: allow[...]'"
    print(summary, file=out)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point. Returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Static privacy/crypto/determinism/schedule analysis "
        "of the VF2Boost reproduction.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--package",
        default="repro",
        help="dotted package name of the scanned tree (default: repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any unsuppressed finding remains (CI gate)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to report (default: all)",
    )
    parser.add_argument(
        "--no-schedule",
        action="store_true",
        help="skip the (non-static) schedule-graph self check",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON; findings frozen there do not fail --strict",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        help="freeze the current findings into a baseline JSON and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the rule families and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for prefix, description in RULE_FAMILIES.items():
            print(f"{prefix}*: {description}")
        return 0

    if args.root is not None and not args.root.is_dir():
        parser.error(f"--root {args.root} is not a directory")

    rules = (
        {token.strip() for token in args.rules.split(",") if token.strip()}
        if args.rules
        else None
    )
    reporter = run_analysis(
        root=args.root,
        package=args.package,
        with_schedule=not args.no_schedule,
        rules=rules,
    )
    findings = reporter.sorted_findings()

    if args.write_baseline is not None:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(f"baseline with {len(findings)} finding(s) -> {args.write_baseline}")
        return 0
    if args.baseline is not None:
        findings = Baseline.load(args.baseline).filter_new(findings)

    if args.format == "json":
        payload = {
            "findings": [f.to_json() for f in findings],
            "suppressed": len(reporter.suppressed),
        }
        print(json.dumps(payload, indent=2))
    else:
        _render_text(findings, len(reporter.suppressed), sys.stdout)

    if args.strict and findings:
        return 1
    return 0
