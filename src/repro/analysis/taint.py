"""Party-boundary taint checker (rules ``PB001``, ``PB002``).

The protocol's ground rule (paper §3.2; SecureBoost's security
argument): every *label-derived* quantity crossing the channel toward a
passive party must be ciphertext.  The runtime complement lives in
:class:`repro.fed.channel.RecordingChannel`; this checker proves the
property statically, so a protocol variant that ships gradients in the
clear fails CI even when no privacy test happens to execute that path.

How it works
------------
*Sources* introduce taint: the ground-truth label vector (any function
parameter literally named ``labels``), gradient/hessian computation
(``*.gradients(...)`` calls on a loss), and decryption of cross-party
aggregates (``decrypt*``/``unpack_histogram``/``decode_pair_histogram``
— plaintext label statistics at Party B).

Taint propagates through assignments, tuple unpacking, arithmetic,
subscripts, comprehensions, and *interprocedurally* through calls:
every package function gets a summary (which parameters reach its
return value) computed to a fixpoint, and call sites feed tainted
arguments into callee parameter seeds.

*Sanitizers* clear taint: ``encrypt``/``encrypt_pair``/``pack_*`` calls
and ``EncryptedNumber``/``PackedCipher`` construction — the payload is
ciphertext from there on.

*Sinks* are constructions of :mod:`repro.fed.messages` types headed
toward a passive party, plus direct ``channel.send(...)`` calls.  A
tainted expression reaching a payload field raises ``PB001`` unless the
(type, field) is a *declared disclosure* — information the protocol
deliberately reveals (split bin indices, placement bitmaps; §3.2).
``LeafWeightBroadcast`` is intentionally **not** declared: broadcasting
raw label-derived floats is the strongest disclosure the protocol makes
and every occurrence must carry an explicit ``# repro: allow[PB001]``
with its rationale.

``PB002`` flags :class:`~repro.fed.messages.Message` subclasses defined
outside ``repro/fed/messages.py`` — the static complement of the
channel's runtime default-deny on unrecognized message types.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutils import (
    FunctionInfo,
    ModuleInfo,
    PackageIndex,
    call_name,
    dotted_name,
    node_span,
)
from repro.analysis.findings import Finding, Reporter, Severity

__all__ = ["TaintChecker", "DECLARED_DISCLOSURES", "run"]

#: call tails that *introduce* label-derived taint
SOURCE_TAILS = {
    "gradients",
    "decrypt",
    "decrypt_encoded",
    "decrypt_raw",
    "decrypt_histogram",
    "unpack_histogram",
    "decode_pair_histogram",
}

#: call tails that return ciphertext — taint does not pass through
SANITIZER_TAILS = {
    "encrypt",
    "encrypt_encoded",
    "encrypt_zero",
    "encrypt_pair",
    "pack_histogram",
    "pack_values",
    "build_encrypted_histogram",
    "build_pair_histogram",
    "EncryptedNumber",
    "PackedCipher",
    "GradHessCodec",
}

#: call tails that return label-free derived values (shapes, counts)
CLEAN_TAILS = {"len", "type", "isinstance", "id", "range", "zeros", "zeros_like", "empty"}

#: attribute reads that expose only shape/metadata, never label content
CLEAN_ATTRS = {"shape", "size", "ndim", "dtype", "nbytes"}

#: message types whose payloads the protocol deliberately discloses
#: toward passive parties: split bin indices (O(log bins) bits, §3.2),
#: placement bitmaps (instance routing every party must learn), dirty
#: notices, and serving-time routing.  NOT LeafWeightBroadcast.
DECLARED_DISCLOSURES = {
    "SplitDecision",
    "SplitQuery",
    "SplitAnswer",
    "InstancePlacement",
    "DirtyNodeNotice",
    "RouteQuery",
    "RouteAnswer",
    "RouteQueryBatch",
    "RouteAnswerBatch",
}

#: dataclass field order of the core message types, used to name
#: positional constructor arguments when the messages module itself is
#: not part of the scanned tree (fixture packages).
KNOWN_MESSAGE_FIELDS = {
    "EncryptedGradHessBatch": ["sender", "receiver", "instance_offset", "grads", "hesses"],
    "EncryptedHistogramMessage": ["sender", "receiver", "histograms"],
    "PackedHistogramMessage": ["sender", "receiver", "packed", "shift_value", "layout"],
    "CountedCipherPayload": ["sender", "receiver", "kind", "n_ciphers", "extra_bytes"],
    "SplitDecision": ["sender", "receiver", "node_id", "owner", "bin_flat_index", "gain_is_leaf"],
    "SplitQuery": ["sender", "receiver", "node_id", "bin_flat_index"],
    "SplitAnswer": ["sender", "receiver", "node_id", "placement"],
    "InstancePlacement": ["sender", "receiver", "node_id", "placement"],
    "DirtyNodeNotice": ["sender", "receiver", "node_id", "corrected_owner", "bin_flat_index"],
    "RouteQuery": ["sender", "receiver", "tree_index", "node_id", "instance_ids"],
    "RouteAnswer": ["sender", "receiver", "tree_index", "node_id", "goes_left"],
    "RouteQueryBatch": ["sender", "receiver", "batch_id", "items"],
    "RouteAnswerBatch": ["sender", "receiver", "batch_id", "items"],
    "LeafWeightBroadcast": ["sender", "receiver", "weights"],
}

_MESSAGES_MODULE = "repro.fed.messages"
_MAX_ROUNDS = 8


@dataclass
class FunctionSummary:
    """Interprocedural behavior of one function."""

    prop_params: set[str] = field(default_factory=set)
    returns_source: bool = False


class TaintChecker:
    """Whole-package taint analysis.  See module docstring."""

    checker_name = "taint"

    def __init__(self, index: PackageIndex) -> None:
        self.index = index
        self.summaries: dict[str, FunctionSummary] = {}
        #: fn key -> parameter names observed tainted at some call site
        self.param_taint: dict[str, set[str]] = {}
        self.message_fields: dict[str, list[str]] = dict(KNOWN_MESSAGE_FIELDS)
        self.local_message_classes: dict[str, tuple[ModuleInfo, ast.ClassDef]] = {}
        self._collect_message_classes()

    # ------------------------------------------------------------------
    # Message class discovery
    # ------------------------------------------------------------------
    def _collect_message_classes(self) -> None:
        """Find Message subclasses in the scanned tree and their fields."""
        for module in self.index.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for base in node.bases:
                    base_name = module.resolve(dotted_name(base))
                    if base_name in (f"{_MESSAGES_MODULE}.Message", "Message"):
                        fields = ["sender", "receiver"]
                        for stmt in node.body:
                            if isinstance(stmt, ast.AnnAssign) and isinstance(
                                stmt.target, ast.Name
                            ):
                                fields.append(stmt.target.id)
                        self.message_fields[node.name] = fields
                        self.local_message_classes[node.name] = (module, node)
                        break

    def _is_message_class(self, module: ModuleInfo, name: str | None) -> str | None:
        """Class name when ``name`` refers to a Message type, else None."""
        if not name:
            return None
        tail = name.rsplit(".", maxsplit=1)[-1]
        resolved = module.resolve(name) or name
        if resolved.startswith(_MESSAGES_MODULE + ".") and tail != "Message":
            return tail if tail in KNOWN_MESSAGE_FIELDS or tail[:1].isupper() else None
        if tail in self.local_message_classes:
            return tail
        return None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> Reporter:
        """Compute summaries to fixpoint, then report sink violations."""
        self._fixpoint_summaries()
        self._fixpoint_param_taint()
        reporter = Reporter()
        for info in self.index.functions.values():
            seeds = self._entry_seeds(info)
            _FunctionPass(self, info.module, reporter=reporter).run(
                info.node.body, seeds
            )
        for module in self.index.modules.values():
            _FunctionPass(self, module, reporter=reporter).run(
                self._module_level_stmts(module), set()
            )
        self._report_foreign_messages(reporter)
        return reporter

    @staticmethod
    def _module_level_stmts(module: ModuleInfo) -> list[ast.stmt]:
        return [
            stmt
            for stmt in module.tree.body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]

    def _report_foreign_messages(self, reporter: Reporter) -> None:
        for name, (module, node) in self.local_message_classes.items():
            if module.name.endswith("fed.messages"):
                continue
            finding = Finding(
                rule_id="PB002",
                severity=Severity.WARNING,
                file=module.relpath,
                line=node.lineno,
                message=(
                    f"Message subclass {name!r} defined outside repro.fed.messages; "
                    "the channel's default-deny will reject float payloads toward "
                    "passive parties — register it or declare its disclosure"
                ),
                checker=self.checker_name,
            )
            reporter.emit(finding, module.suppressions, node_span(node))

    def _entry_seeds(self, info: FunctionInfo) -> set[str]:
        seeds = set(self.param_taint.get(self._key(info), set()))
        for param in info.param_names:
            if param == "labels":
                seeds.add(param)
        return seeds

    @staticmethod
    def _key(info: FunctionInfo) -> str:
        return f"{info.module.name}:{info.qualname}"

    # ------------------------------------------------------------------
    # Fixpoints
    # ------------------------------------------------------------------
    def _fixpoint_summaries(self) -> None:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for info in self.index.functions.values():
                summary = self._compute_summary(info)
                old = self.summaries.get(self._key(info))
                if (
                    old is None
                    or summary.prop_params != old.prop_params
                    or summary.returns_source != old.returns_source
                ):
                    self.summaries[self._key(info)] = summary
                    changed = True
            if not changed:
                break

    def _compute_summary(self, info: FunctionInfo) -> FunctionSummary:
        summary = FunctionSummary()
        empty_pass = _FunctionPass(self, info.module)
        if empty_pass.run(info.node.body, set()):
            summary.returns_source = True
            # Taint appears with no inputs: every caller is affected, no
            # need to test individual parameters.
            return summary
        for param in info.param_names:
            if param in ("self", "cls"):
                continue
            single = _FunctionPass(self, info.module)
            if single.run(info.node.body, {param}):
                summary.prop_params.add(param)
        return summary

    def _fixpoint_param_taint(self) -> None:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for info in self.index.functions.values():
                seeds = self._entry_seeds(info)
                collector = _FunctionPass(self, info.module, collect_calls=True)
                collector.run(info.node.body, seeds)
                for key, params in collector.callee_taints.items():
                    bucket = self.param_taint.setdefault(key, set())
                    if not params <= bucket:
                        bucket |= params
                        changed = True
            for module in self.index.modules.values():
                collector = _FunctionPass(self, module, collect_calls=True)
                collector.run(self._module_level_stmts(module), set())
                for key, params in collector.callee_taints.items():
                    bucket = self.param_taint.setdefault(key, set())
                    if not params <= bucket:
                        bucket |= params
                        changed = True
            if not changed:
                break


class _FunctionPass:
    """One abstract-interpretation pass over a statement list.

    Tracks the set of tainted local names; optionally reports sink
    violations (``reporter``) and records tainted arguments at package-
    internal call sites (``collect_calls``).
    """

    def __init__(
        self,
        checker: TaintChecker,
        module: ModuleInfo,
        reporter: Reporter | None = None,
        collect_calls: bool = False,
    ) -> None:
        self.checker = checker
        self.module = module
        self.reporter = reporter
        self.collect_calls = collect_calls
        self.callee_taints: dict[str, set[str]] = {}
        self.tainted: set[str] = set()
        self.returns_tainted = False
        self._reported: set[tuple[int, int, str]] = set()

    def run(self, body: list[ast.stmt], seeds: set[str]) -> bool:
        """Iterate the body to a local fixpoint; True if a return taints."""
        self.tainted = set(seeds)
        for _ in range(10):
            before = set(self.tainted)
            returns = self.returns_tainted
            for stmt in body:
                self._visit_stmt(stmt)
            if self.tainted == before and self.returns_tainted == returns:
                break
        return self.returns_tainted

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value_tainted = self._taint(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, value_tainted)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, stmt.value, self._taint(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            if self._taint(stmt.value) or self._taint(stmt.target):
                self._mark(stmt.target)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and self._taint(stmt.value):
                self.returns_tainted = True
        elif isinstance(stmt, ast.Expr):
            self._taint(stmt.value)
        elif isinstance(stmt, ast.For):
            if self._taint(stmt.iter):
                self._mark(stmt.target)
            for inner in stmt.body + stmt.orelse:
                self._visit_stmt(inner)
        elif isinstance(stmt, ast.While):
            self._taint(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._visit_stmt(inner)
        elif isinstance(stmt, ast.If):
            self._taint(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._visit_stmt(inner)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tainted = self._taint(item.context_expr)
                if item.optional_vars is not None and tainted:
                    self._mark(item.optional_vars)
            for inner in stmt.body:
                self._visit_stmt(inner)
        elif isinstance(stmt, ast.Try):
            for inner in stmt.body + stmt.orelse + stmt.finalbody:
                self._visit_stmt(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self._visit_stmt(inner)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested defs analyzed as their own functions
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._taint(child)

    def _assign(self, target: ast.expr, value: ast.expr, value_tainted: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                for sub_t, sub_v in zip(target.elts, value.elts):
                    self._assign(sub_t, sub_v, self._taint(sub_v))
            else:
                for sub in target.elts:
                    if value_tainted:
                        self._mark(sub)
            return
        if value_tainted:
            self._mark(target)
        elif isinstance(target, ast.Name):
            self.tainted.discard(target.id)

    def _mark(self, target: ast.expr) -> None:
        """Taint the *base name* of an assignment target."""
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, ast.Starred):
            self._mark(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for sub in target.elts:
                self._mark(sub)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name):
                self.tainted.add(base.id)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _taint(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Constant):
            return False
        if isinstance(node, ast.Call):
            return self._taint_call(node)
        if isinstance(node, ast.Attribute):
            if node.attr in CLEAN_ATTRS:
                return False
            return self._taint(node.value)
        if isinstance(node, ast.Subscript):
            return self._taint(node.value) or self._taint(node.slice)
        if isinstance(node, ast.NamedExpr):
            tainted = self._taint(node.value)
            if tainted:
                self._mark(node.target)
            return tainted
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            extra: set[str] = set()
            for gen in node.generators:
                if self._taint(gen.iter):
                    saved = set(self.tainted)
                    self._mark(gen.target)
                    extra |= self.tainted - saved
            try:
                if isinstance(node, ast.DictComp):
                    return self._taint(node.key) or self._taint(node.value)
                return self._taint(node.elt)
            finally:
                self.tainted -= extra
        # Generic: tainted iff any child expression is.
        result = False
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                result = self._taint(child) or result
        return result

    def _taint_call(self, node: ast.Call) -> bool:
        name = call_name(node)
        tail = name.rsplit(".", maxsplit=1)[-1] if name else None
        arg_taints = [self._taint(arg) for arg in node.args]
        kw_taints = {kw.arg: self._taint(kw.value) for kw in node.keywords}
        any_tainted = any(arg_taints) or any(kw_taints.values())

        message_class = self._is_message_class(name)
        if message_class is not None:
            self._check_message_sink(node, message_class, arg_taints, kw_taints)
            return any_tainted

        if tail == "send" and isinstance(node.func, ast.Attribute):
            self._check_send_sink(node, arg_taints)
            return False

        if tail in SANITIZER_TAILS:
            return False
        if tail in CLEAN_TAILS:
            return False
        if tail in SOURCE_TAILS and isinstance(node.func, ast.Attribute):
            return True

        # Method calls on tainted receivers yield tainted data (e.g.
        # ``gradients[rows].sum()``) — summaries do not model the bound
        # receiver, so handle it here.  Bare self/cls receivers are
        # skipped: instance state is tracked per attribute-write already
        # and treating all of ``self`` as one cell cascades too far.
        receiver_tainted = (
            isinstance(node.func, ast.Attribute)
            and not (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("self", "cls")
            )
            and self._taint(node.func.value)
        )

        callee = self.index_resolve(name)
        if callee is not None:
            summary_tainted = self._apply_summary(node, callee, arg_taints, kw_taints)
            return summary_tainted or receiver_tainted
        return any_tainted or receiver_tainted

    def index_resolve(self, name: str | None) -> FunctionInfo | None:
        """Resolve a callee through the package index."""
        return self.checker.index.resolve_function(self.module, name)

    def _is_message_class(self, name: str | None) -> str | None:
        return self.checker._is_message_class(self.module, name)

    def _apply_summary(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        arg_taints: list[bool],
        kw_taints: dict[str | None, bool],
    ) -> bool:
        key = TaintChecker._key(callee)
        summary = self.checker.summaries.get(key, FunctionSummary())
        params = callee.param_names
        offset = (
            1
            if params[:1] in (["self"], ["cls"]) and isinstance(node.func, ast.Attribute)
            else 0
        )
        tainted_params: set[str] = set()
        for position, tainted in enumerate(arg_taints):
            if tainted and position + offset < len(params):
                tainted_params.add(params[position + offset])
        for kw_name, tainted in kw_taints.items():
            if tainted and kw_name is not None:
                tainted_params.add(kw_name)
        if self.collect_calls and tainted_params:
            self.callee_taints.setdefault(key, set()).update(tainted_params)
        if summary.returns_source:
            return True
        return bool(tainted_params & summary.prop_params)

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    @staticmethod
    def _toward_active(receiver: ast.expr | None) -> bool:
        if receiver is None:
            return False
        if isinstance(receiver, ast.Constant) and receiver.value == 0:
            return True
        name = dotted_name(receiver)
        return bool(name) and name.rsplit(".", maxsplit=1)[-1] == "ACTIVE"

    def _check_message_sink(
        self,
        node: ast.Call,
        class_name: str,
        arg_taints: list[bool],
        kw_taints: dict[str | None, bool],
    ) -> None:
        if self.reporter is None:
            return
        fields = self.checker.message_fields.get(class_name, [])
        receiver: ast.expr | None = None
        if len(node.args) >= 2:
            receiver = node.args[1]
        for kw in node.keywords:
            if kw.arg == "receiver":
                receiver = kw.value
        if self._toward_active(receiver):
            return
        if class_name in DECLARED_DISCLOSURES:
            return
        for position, tainted in enumerate(arg_taints):
            if position < 2 or not tainted:
                continue
            field_name = fields[position] if position < len(fields) else f"arg{position}"
            self._emit_pb001(node, class_name, field_name)
        for kw in node.keywords:
            if kw.arg in ("sender", "receiver") or not kw_taints.get(kw.arg):
                continue
            self._emit_pb001(node, class_name, kw.arg or "**kwargs")

    def _check_send_sink(self, node: ast.Call, arg_taints: list[bool]) -> None:
        if self.reporter is None or not node.args:
            return
        argument = node.args[0]
        if isinstance(argument, ast.Call) and self._is_message_class(
            call_name(argument)
        ):
            return  # constructor sinks are checked where they are built
        if arg_taints[0]:
            self._emit(
                node,
                "PB001",
                "label-derived plaintext value sent over the channel without "
                "an enclosing ciphertext-only message",
            )

    def _emit_pb001(self, node: ast.Call, class_name: str, field_name: str) -> None:
        self._emit(
            node,
            "PB001",
            f"label-derived plaintext flows into {class_name}.{field_name} "
            "toward a passive party; wrap it in EncryptedNumber/PackedCipher "
            "or declare the disclosure",
        )

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        span = node_span(node)
        dedup = (span[0], span[1], message)
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        finding = Finding(
            rule_id=rule,
            severity=Severity.ERROR,
            file=self.module.relpath,
            line=span[0],
            message=message,
            checker=TaintChecker.checker_name,
        )
        assert self.reporter is not None
        self.reporter.emit(finding, self.module.suppressions, span)


def run(index: PackageIndex) -> Reporter:
    """Convenience wrapper: run the taint checker over an index."""
    return TaintChecker(index).run()
