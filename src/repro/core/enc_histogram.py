"""Encrypted histogram construction and packing on the passive party.

This module is the real-crypto heart of Party A's work:

* :func:`build_encrypted_histogram` — accumulate encrypted gradient
  statistics into per-(feature, bin) cipher sums, either naively (the
  VF-GBDT baseline) or with the re-ordered per-exponent workspaces of
  §5.1;
* :func:`pack_histogram` / :func:`unpack_histogram` — the §5.2
  polynomial packing pipeline: prefix-sum the bins per feature, shift
  the (possibly negative) gradient sums into the non-negative range by
  ``N x Bound`` applied to the first bin, align exponents within each
  pack group, pack ``t`` bins per cipher, and invert all of it on the
  active party after a single decryption per group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.crypto.accumulation import ExponentWorkspace
from repro.crypto.ciphertext import EncryptedNumber, PaillierContext
from repro.crypto.packing import PackedCipher, pack_capacity, pack_ciphers, unpack_values
from repro.gbdt.histogram import Histogram

__all__ = [
    "EncryptedHistogram",
    "build_encrypted_histogram",
    "PackedHistogram",
    "pack_histogram",
    "unpack_histogram",
    "decrypt_histogram",
]


@dataclass
class EncryptedHistogram:
    """Per-(feature, bin) cipher sums of one tree node.

    ``grad_bins[j][k]`` / ``hess_bins[j][k]`` are ciphers of the sums of
    gradients / hessians of the node's instances falling in bin ``k`` of
    the party-local feature ``j``.
    """

    grad_bins: list[list[EncryptedNumber]]
    hess_bins: list[list[EncryptedNumber]]
    n_instances: int

    @property
    def n_features(self) -> int:
        """Features summarized."""
        return len(self.grad_bins)

    @property
    def n_bins(self) -> int:
        """Bins per feature."""
        return len(self.grad_bins[0]) if self.grad_bins else 0

    def cipher_count(self) -> int:
        """Total ciphers held (gradient plus hessian bins)."""
        return 2 * self.n_features * self.n_bins


def build_encrypted_histogram(
    context: PaillierContext,
    codes: np.ndarray,
    instance_rows: np.ndarray,
    grad_ciphers: list[EncryptedNumber],
    hess_ciphers: list[EncryptedNumber],
    n_bins: int,
    reordered: bool,
) -> EncryptedHistogram:
    """Accumulate encrypted statistics into a node's histogram.

    Args:
        context: the passive party's (public) Paillier context.
        codes: party-local ``(N, D)`` bin-code matrix.
        instance_rows: rows sitting on the node.
        grad_ciphers / hess_ciphers: full-length cipher lists indexed by
            global row id (as received from the active party).
        n_bins: bins per feature ``s``.
        reordered: use per-exponent workspaces (§5.1) instead of the
            naive in-arrival-order accumulation.
    """
    rows = np.asarray(instance_rows, dtype=np.int64)
    n_features = codes.shape[1]
    zero_exponent = context.encoder.exponent

    if reordered:
        grad_ws = [
            [ExponentWorkspace(context) for _ in range(n_bins)]
            for _ in range(n_features)
        ]
        hess_ws = [
            [ExponentWorkspace(context) for _ in range(n_bins)]
            for _ in range(n_features)
        ]
        for i in rows:
            g, h = grad_ciphers[i], hess_ciphers[i]
            for j in range(n_features):
                k = codes[i, j]
                grad_ws[j][k].add(g)
                hess_ws[j][k].add(h)
        grad_bins = [
            [ws.finalize_or_zero(zero_exponent) for ws in row] for row in grad_ws
        ]
        hess_bins = [
            [ws.finalize_or_zero(zero_exponent) for ws in row] for row in hess_ws
        ]
    else:
        grad_acc: list[list[EncryptedNumber | None]] = [
            [None] * n_bins for _ in range(n_features)
        ]
        hess_acc: list[list[EncryptedNumber | None]] = [
            [None] * n_bins for _ in range(n_features)
        ]
        for i in rows:
            g, h = grad_ciphers[i], hess_ciphers[i]
            for j in range(n_features):
                k = codes[i, j]
                grad_acc[j][k] = (
                    g if grad_acc[j][k] is None else context.add(grad_acc[j][k], g)
                )
                hess_acc[j][k] = (
                    h if hess_acc[j][k] is None else context.add(hess_acc[j][k], h)
                )
        grad_bins = [
            [
                cell if cell is not None else context.encrypt_zero(zero_exponent)
                for cell in row
            ]
            for row in grad_acc
        ]
        hess_bins = [
            [
                cell if cell is not None else context.encrypt_zero(zero_exponent)
                for cell in row
            ]
            for row in hess_acc
        ]
    return EncryptedHistogram(grad_bins, hess_bins, int(rows.size))


def decrypt_histogram(
    context: PaillierContext, encrypted: EncryptedHistogram
) -> Histogram:
    """Decrypt an *unpacked* histogram bin by bin (baseline path).

    Counts are unknown to the decrypting party; the returned histogram
    carries zeros and must be searched with ``check_counts=False``.
    """
    d, s = encrypted.n_features, encrypted.n_bins
    grad = np.zeros((d, s), dtype=np.float64)
    hess = np.zeros((d, s), dtype=np.float64)
    for j in range(d):
        for k in range(s):
            grad[j, k] = context.decrypt(encrypted.grad_bins[j][k])
            hess[j, k] = context.decrypt(encrypted.hess_bins[j][k])
    return Histogram(grad, hess, np.zeros((d, s), dtype=np.int64))


@dataclass
class PackedHistogram:
    """The §5.2 wire format of one node's histogram.

    Attributes:
        grad_packs / hess_packs: per-feature lists of packed prefix-sum
            groups.
        grad_shift: the ``N x Bound`` shift added to every gradient
            prefix sum (hessian prefix sums are non-negative already).
        n_bins: bins per feature, needed to unpack.
        limb_bits: effective limb width used (may exceed the configured
            ``M`` when the shift magnitude demands it).
        n_instances: instances on the node.
    """

    grad_packs: list[list[PackedCipher]]
    hess_packs: list[list[PackedCipher]]
    grad_shift: float
    n_bins: int
    limb_bits: int
    n_instances: int

    def cipher_count(self) -> int:
        """Packed ciphers on the wire."""
        return sum(len(p) for p in self.grad_packs) + sum(
            len(p) for p in self.hess_packs
        )


def required_limb_bits(
    max_abs_value: float, base: int, max_exponent: int, configured: int
) -> int:
    """Smallest limb width that can hold the largest packed integer.

    The largest packed integer is ``round(max_abs_value * B**e_max)``;
    jittered exponents push ``e_max`` (and therefore the width) up, so
    the effective width is ``max(configured, required)``.
    """
    if max_abs_value <= 0:
        return configured
    required = math.ceil(math.log2(max_abs_value) + max_exponent * math.log2(base)) + 2
    return max(configured, required)


def pack_histogram(
    context: PaillierContext,
    encrypted: EncryptedHistogram,
    grad_bound: float,
    limb_bits: int,
) -> PackedHistogram:
    """Prefix-sum, shift, align and pack a node's histogram (Party A side).

    Steps per feature (Figure 9):

    1. shift the **first** gradient bin by ``N x Bound`` (one cheap
       plaintext addition) so every gradient *prefix sum* is
       non-negative;
    2. prefix-sum the bins with ``s - 1`` HAdds per statistic;
    3. split the prefix bins into groups of ``t`` and align each
       group's exponents to the group maximum;
    4. pack each group with ``t - 1`` HAdd + ``t - 1`` SMul.
    """
    base = context.encoder.base
    shift = encrypted.n_instances * grad_bound
    max_exponent = context.encoder.exponent + context.encoder.jitter - 1
    # Largest packed magnitude: shifted gradient prefix (<= 2 N Bound) or
    # raw hessian prefix (<= N h_bound <= shift scale); use the former.
    # ``value_bits`` bounds every packed value, not just the top limb,
    # so it is the honest ``top_bits`` for the capacity calculation.
    value_bits = required_limb_bits(
        max(2.0 * shift, float(encrypted.n_instances)), base, max_exponent, 1
    )
    effective_limb = max(limb_bits, value_bits)
    capacity = pack_capacity(context.public_key, effective_limb, top_bits=value_bits)

    def process(bins: list[EncryptedNumber], shift_value: float) -> list[PackedCipher]:
        prefix: list[EncryptedNumber] = []
        running: EncryptedNumber | None = None
        for index, cell in enumerate(bins):
            if index == 0 and shift_value:
                cell = context.add_plain(cell, shift_value)
            running = cell if running is None else context.add(running, cell)
            prefix.append(running)
        packs = []
        for start in range(0, len(prefix), capacity):
            group = prefix[start : start + capacity]
            top = max(item.exponent for item in group)
            aligned = [context.scale_to(item, top) for item in group]
            packs.append(
                pack_ciphers(context, aligned, effective_limb, top_bits=value_bits)
            )
        return packs

    grad_packs = [process(row, shift) for row in encrypted.grad_bins]
    hess_packs = [process(row, 0.0) for row in encrypted.hess_bins]
    return PackedHistogram(
        grad_packs=grad_packs,
        hess_packs=hess_packs,
        grad_shift=shift,
        n_bins=encrypted.n_bins,
        limb_bits=effective_limb,
        n_instances=encrypted.n_instances,
    )


def build_pair_histogram(
    context: PaillierContext,
    codes: np.ndarray,
    instance_rows: np.ndarray,
    pair_ciphers: list[EncryptedNumber],
    n_bins: int,
) -> list[list[EncryptedNumber]]:
    """Accumulate packed ``(g, h, 1)`` pair ciphers into one-cipher bins.

    The gradient-pair extension (:mod:`repro.crypto.pairing`): each bin
    holds a single cipher carrying gradient sum, hessian sum and count.
    Exponents are fixed by construction, so accumulation needs no
    workspaces and never scales.
    """
    rows = np.asarray(instance_rows, dtype=np.int64)
    n_features = codes.shape[1]
    acc: list[list[EncryptedNumber | None]] = [
        [None] * n_bins for _ in range(n_features)
    ]
    for i in rows:
        pair = pair_ciphers[i]
        for j in range(n_features):
            k = codes[i, j]
            acc[j][k] = pair if acc[j][k] is None else context.add(acc[j][k], pair)
    exponent = pair_ciphers[0].exponent if pair_ciphers else 0
    return [
        [
            cell if cell is not None else context.encrypt_zero(exponent)
            for cell in row
        ]
        for row in acc
    ]


def decode_pair_histogram(codec, bins: list[list[EncryptedNumber]]) -> Histogram:
    """Decrypt one-cipher pair bins into a histogram with exact counts.

    Unlike the baseline path, counts are recovered (third limb), so the
    active party can apply its full count-based split constraints.
    """
    d = len(bins)
    s = len(bins[0]) if bins else 0
    grad = np.zeros((d, s), dtype=np.float64)
    hess = np.zeros((d, s), dtype=np.float64)
    count = np.zeros((d, s), dtype=np.int64)
    for j in range(d):
        for k in range(s):
            sums = codec.decode_sums(bins[j][k])
            grad[j, k] = sums.grad_sum
            hess[j, k] = sums.hess_sum
            count[j, k] = sums.count
    return Histogram(grad, hess, count)


def unpack_histogram(context: PaillierContext, packed: PackedHistogram) -> Histogram:
    """Decrypt-and-unpack a packed histogram (Party B side).

    One decryption per pack group recovers the prefix sums; differencing
    restores the per-bin histogram, and the gradient shift is removed
    from every prefix before differencing (it was applied to bin 0).
    """
    base = context.encoder.base

    def recover(packs: list[PackedCipher], shift: float) -> np.ndarray:
        prefix: list[float] = []
        for pack in packs:
            for raw in unpack_values(context, pack):
                prefix.append(raw / base**pack.exponent)
        values = np.asarray(prefix, dtype=np.float64) - shift
        bins = np.empty_like(values)
        bins[0] = values[0]
        bins[1:] = values[1:] - values[:-1]
        return bins

    d = len(packed.grad_packs)
    s = packed.n_bins
    grad = np.zeros((d, s), dtype=np.float64)
    hess = np.zeros((d, s), dtype=np.float64)
    for j in range(d):
        grad[j, :] = recover(packed.grad_packs[j], packed.grad_shift)
        hess[j, :] = recover(packed.hess_packs[j], 0.0)
    return Histogram(grad, hess, np.zeros((d, s), dtype=np.int64))
