"""Workload traces: the facts a training run leaves behind.

The protocol scheduler (:mod:`repro.core.protocol`) prices and overlaps
phases from *facts* about the workload — how many instances sat on each
node, which party won each split, how many histogram bins crossed the
wire.  Those facts come from either

* a **counted/real training run** (:mod:`repro.core.trainer` fills a
  :class:`TraceLog` while it trains), or
* an **analytic profile** (:mod:`repro.core.profile` synthesizes the
  same structure from a dataset descriptor at paper scale).

Keeping one trace schema for both is what lets a single scheduler
regenerate Tables 1, 2, 4, 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PartyShape", "NodeTrace", "LayerTrace", "TreeTrace", "TraceLog"]


@dataclass(frozen=True)
class PartyShape:
    """Static shape of one party's feature data.

    Attributes:
        n_features: columns owned by the party (``D_A`` or ``D_B``).
        nnz_per_instance: average non-zero values per row (``d``).
        n_bins: histogram bins per feature (``s``).
    """

    n_features: int
    nnz_per_instance: float
    n_bins: int

    @property
    def histogram_bins(self) -> int:
        """Cipher bins per node: gradient + hessian histograms."""
        return 2 * self.n_features * self.n_bins


@dataclass
class NodeTrace:
    """Per-node facts of one tree layer.

    Attributes:
        node_id: heap index in the tree.
        n_instances: rows on the node.
        owner: party owning the node's best split; ``-1`` for leaves.
        dirty: the optimistic strategy split this node with Party B's
            candidate but a passive party had a better one (§4.2) —
            triggers roll-back-and-re-do.
        misplaced_fraction: among a dirty node's instances, the share
            whose optimistic placement (under B's candidate) disagrees
            with the correct placement. The paper's §8 future-work item
            — "skip instances that are already correctly classified" —
            only needs to re-do this fraction.
    """

    node_id: int
    n_instances: int
    owner: int = -1
    dirty: bool = False
    misplaced_fraction: float = 1.0

    @property
    def is_split(self) -> bool:
        """Whether the node was split at all."""
        return self.owner >= 0


@dataclass
class LayerTrace:
    """One layer of one tree."""

    depth: int
    nodes: list[NodeTrace] = field(default_factory=list)

    @property
    def n_instances(self) -> int:
        """Total rows across the layer's nodes."""
        return sum(node.n_instances for node in self.nodes)

    @property
    def n_split_nodes(self) -> int:
        """Nodes actually split on this layer."""
        return sum(1 for node in self.nodes if node.is_split)

    @property
    def n_dirty(self) -> int:
        """Dirty (rolled-back) nodes on this layer."""
        return sum(1 for node in self.nodes if node.dirty)

    @property
    def dirty_instances(self) -> int:
        """Rows under dirty nodes (the re-done histogram work)."""
        return sum(node.n_instances for node in self.nodes if node.dirty)

    @property
    def misplaced_instances(self) -> float:
        """Rows under dirty nodes whose placement actually changed.

        The incremental-redo lower bound of the §8 future-work
        optimization (at least the misplaced rows must be corrected in
        *both* children's histograms, hence no further halving).
        """
        return sum(
            node.n_instances * node.misplaced_fraction
            for node in self.nodes
            if node.dirty
        )


@dataclass
class TreeTrace:
    """All facts of one boosting round."""

    tree_index: int
    n_instances: int
    layers: list[LayerTrace] = field(default_factory=list)
    #: distinct encoding exponents observed in the gradient ciphers (E)
    n_exponents: int = 1

    def split_counts_by_owner(self) -> dict[int, int]:
        """How many splits each party owned in this tree."""
        counts: dict[int, int] = {}
        for layer in self.layers:
            for node in layer.nodes:
                if node.is_split:
                    counts[node.owner] = counts.get(node.owner, 0) + 1
        return counts

    @property
    def n_splits(self) -> int:
        """Total splits in the tree."""
        return sum(layer.n_split_nodes for layer in self.layers)


@dataclass
class TraceLog:
    """A full training run's workload description.

    Attributes:
        n_instances: training rows ``N``.
        active_shape: Party B's feature shape.
        passive_shapes: one :class:`PartyShape` per Party A.
        trees: per-round traces.
    """

    n_instances: int
    active_shape: PartyShape
    passive_shapes: list[PartyShape]
    trees: list[TreeTrace] = field(default_factory=list)

    @property
    def n_parties(self) -> int:
        """Total party count (B plus all A's)."""
        return 1 + len(self.passive_shapes)

    def split_ratio_of_active(self) -> float:
        """Fraction of all splits owned by Party B (Table 2's column)."""
        owned_by_b = 0
        total = 0
        for tree in self.trees:
            counts = tree.split_counts_by_owner()
            owned_by_b += counts.get(0, 0)
            total += sum(counts.values())
        return owned_by_b / total if total else 0.0

    def dirty_ratio(self) -> float:
        """Fraction of split nodes that were dirty under optimism."""
        dirty = sum(
            layer.n_dirty for tree in self.trees for layer in tree.layers
        )
        total = sum(tree.n_splits for tree in self.trees)
        return dirty / total if total else 0.0
