"""Configuration of the VF²Boost system.

:class:`VF2BoostConfig` wires together the GBDT hyper-parameters with
the four optimizations of §4/§5 (each independently toggleable — the
ablation axes of Tables 1-2) plus cryptosystem and batching knobs.

Preset constructors mirror the paper's named systems:

* :meth:`VF2BoostConfig.vf2boost`  — everything on (the contribution);
* :meth:`VF2BoostConfig.vf_gbdt`   — everything off (the self-developed
  unoptimized baseline);
* :meth:`VF2BoostConfig.vf_mock`   — VF-GBDT with mocked (plaintext)
  cryptography.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.crypto.packing import DEFAULT_LIMB_BITS
from repro.gbdt.params import GBDTParams

__all__ = ["VF2BoostConfig"]


@dataclass
class VF2BoostConfig:
    """Full configuration of a federated training run.

    Attributes:
        params: GBDT hyper-parameters (trees, layers, bins, ...).
        blaster_encryption: pipeline gradient encryption/transfer/
            accumulation in batches (§4.1).
        reordered_accumulation: per-exponent workspaces during histogram
            construction (§5.1).
        optimistic_split: Party B splits ahead and validates later, with
            roll-back-and-re-do of dirty nodes (§4.2).
        histogram_packing: pack histogram bins t-per-cipher before the
            A->B transfer (§5.2).
        key_bits: Paillier modulus size ``S`` (paper: 2048; tests use
            small keys — algebraically identical).
        limb_bits: packing limb width ``M`` (paper: 64).
        exponent_jitter: width ``E`` of the encoding exponent window
            (paper observes 4-8 distinct exponents).
        blaster_batch_size: instances per blaster batch.
        incremental_dirty_redo: the paper's §8 future-work item —
            when a dirty node is re-done, move only the instances whose
            placement actually changed (one cipher removal plus one
            insertion each) instead of rebuilding the children's
            histograms from scratch. Pays off when the measured
            misplaced fraction is below ~1/2.
        pair_packing: pack each instance's ``(g, h, 1)`` triple into a
            single cipher before encryption (our extension of the §5.2
            packing idea toward BatchCrypt [88]): halves encryption,
            the gradient stream, histogram additions and the histogram
            transfer, at the price of a fixed encoding exponent and a
            per-bin count disclosure. Mutually exclusive with
            ``histogram_packing`` on the real-crypto path.
        crypto_mode: ``"real"`` executes every Paillier operation;
            ``"counted"`` runs the protocol on plaintext statistics while
            recording the exact operation counts the real run would
            perform (the protocol is lossless, so models are identical);
            ``"mock"`` is counted-mode with plaintext cost accounting
            (the paper's VF-MOCK).
        n_passive_parties: number of Party A's (multi-party, §6.4).
        seed: RNG seed for keygen/jitter.
    """

    params: GBDTParams = field(default_factory=GBDTParams)
    blaster_encryption: bool = True
    reordered_accumulation: bool = True
    optimistic_split: bool = True
    histogram_packing: bool = True
    pair_packing: bool = False
    incremental_dirty_redo: bool = False
    key_bits: int = 2048
    limb_bits: int = DEFAULT_LIMB_BITS
    exponent_jitter: int = 6
    blaster_batch_size: int = 10_000
    crypto_mode: str = "counted"
    n_passive_parties: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.crypto_mode not in ("real", "counted", "mock"):
            raise ValueError(f"unknown crypto_mode {self.crypto_mode!r}")
        if self.key_bits < 64:
            raise ValueError("key_bits must be >= 64")
        if self.limb_bits < 8:
            raise ValueError("limb_bits must be >= 8")
        if self.exponent_jitter < 1:
            raise ValueError("exponent_jitter must be >= 1")
        if self.blaster_batch_size < 1:
            raise ValueError("blaster_batch_size must be >= 1")
        if self.n_passive_parties < 1:
            raise ValueError("need at least one passive party")
        if self.pair_packing and self.histogram_packing and self.crypto_mode == "real":
            raise ValueError(
                "pair_packing and histogram_packing are mutually exclusive "
                "on the real-crypto path (limb layouts differ)"
            )

    # ------------------------------------------------------------------
    # Presets (the named systems of §6)
    # ------------------------------------------------------------------
    @classmethod
    def vf2boost(cls, **overrides) -> "VF2BoostConfig":
        """The full VF²Boost system: all four optimizations enabled."""
        return cls(**overrides)

    @classmethod
    def vf_gbdt(cls, **overrides) -> "VF2BoostConfig":
        """VF-GBDT: the unoptimized self-developed baseline (§6.3)."""
        overrides.setdefault("blaster_encryption", False)
        overrides.setdefault("reordered_accumulation", False)
        overrides.setdefault("optimistic_split", False)
        overrides.setdefault("histogram_packing", False)
        return cls(**overrides)

    @classmethod
    def vf_mock(cls, **overrides) -> "VF2BoostConfig":
        """VF-MOCK: VF-GBDT with mocked cryptography (plaintext)."""
        overrides.setdefault("crypto_mode", "mock")
        return cls.vf_gbdt(**overrides)

    def replace(self, **overrides) -> "VF2BoostConfig":
        """Copy with overrides."""
        return replace(self, **overrides)

    @property
    def optimization_names(self) -> list[str]:
        """Human-readable list of enabled optimizations."""
        names = []
        if self.blaster_encryption:
            names.append("BlasterEnc")
        if self.reordered_accumulation:
            names.append("Re-ordered")
        if self.optimistic_split:
            names.append("OptimSplit")
        if self.histogram_packing:
            names.append("HistPack")
        if self.pair_packing:
            names.append("PairPack")
        return names
