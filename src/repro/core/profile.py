"""Analytic workload profiles — paper-scale traces without data.

Tables 1 and 2 run at 2.5M-10M instances and 50K features; generating
and training on such data in pure Python is out of reach, but the
*workload trace* the protocol scheduler consumes is fully determined by
the dataset shape, the tree geometry, and where the best splits land.
This module synthesizes those traces in closed form:

* every tree is grown full for ``L`` layers (the paper's trees are
  depth-limited, not gain-limited, on these dense synthetic workloads);
* a node's best split belongs to Party B with probability
  ``D_B / (D_A + D_B)`` — the paper's own expectation (§4.2
  "Discussion"), realized deterministically so results are exact and
  repeatable: out of every layer's nodes, the ``round(ratio * count)``
  first nodes go to B;
* dirty nodes under optimism are exactly the passive-owned nodes.

Counted-mode runs on downscaled data validate these synthetic traces:
the trainer-produced split ratios track ``D_B / (D_A + D_B)`` as the
paper reports (Table 2, column 2).
"""

from __future__ import annotations

from repro.core.trace import LayerTrace, NodeTrace, PartyShape, TraceLog, TreeTrace

__all__ = ["analytic_trace"]


def analytic_trace(
    n_instances: int,
    features_active: int,
    features_passive: list[int],
    density: float,
    n_bins: int,
    n_layers: int,
    n_trees: int = 1,
    n_exponents: int = 6,
    active_split_ratio: float | None = None,
) -> TraceLog:
    """Synthesize a :class:`TraceLog` from a dataset descriptor.

    Args:
        n_instances: rows ``N``.
        features_active: Party B's column count ``D_B``.
        features_passive: column count per passive party.
        density: fraction of non-zero cells (drives ``d``).
        n_bins: histogram bins per feature ``s``.
        n_layers: tree layers ``L`` (the paper uses 7).
        n_trees: boosting rounds to synthesize.
        n_exponents: distinct encoding exponents ``E`` (paper: 4-8).
        active_split_ratio: probability a node's best split belongs to
            Party B. Defaults to ``D_B / (D_A + D_B)``.
    """
    if n_layers < 2:
        raise ValueError("n_layers must be >= 2")
    total_features = features_active + sum(features_passive)
    if active_split_ratio is None:
        active_split_ratio = (
            features_active / total_features if total_features else 1.0
        )
    if not 0.0 <= active_split_ratio <= 1.0:
        raise ValueError("active_split_ratio must be in [0, 1]")

    active_shape = PartyShape(
        n_features=features_active,
        nnz_per_instance=density * features_active,
        n_bins=n_bins,
    )
    passive_shapes = [
        PartyShape(
            n_features=count,
            nnz_per_instance=density * count,
            n_bins=n_bins,
        )
        for count in features_passive
    ]
    trace = TraceLog(
        n_instances=n_instances,
        active_shape=active_shape,
        passive_shapes=passive_shapes,
    )
    n_passive = len(features_passive)
    passive_weights = [count / max(1, sum(features_passive)) for count in features_passive]

    for t in range(n_trees):
        tree = TreeTrace(
            tree_index=t, n_instances=n_instances, n_exponents=n_exponents
        )
        for depth in range(n_layers - 1):
            n_nodes = 2**depth
            per_node = n_instances // n_nodes
            layer = LayerTrace(depth=depth)
            owned_by_b = round(active_split_ratio * n_nodes)
            for k in range(n_nodes):
                if k < owned_by_b:
                    owner = 0
                else:
                    # Spread passive-owned nodes across the A parties
                    # proportionally to their feature counts.
                    slot = (k - owned_by_b) % max(1, n_passive)
                    owner = 1 + _weighted_slot(slot, n_passive, passive_weights)
                layer.nodes.append(
                    NodeTrace(
                        node_id=2**depth - 1 + k,
                        n_instances=per_node,
                        owner=owner,
                        dirty=owner != 0,
                        # Two near-independent balanced splits disagree on
                        # about half the rows in expectation.
                        misplaced_fraction=0.5,
                    )
                )
            tree.layers.append(layer)
        trace.trees.append(tree)
    return trace


def _weighted_slot(slot: int, n_passive: int, weights: list[float]) -> int:
    """Map a round-robin slot to a passive party index (0-based)."""
    if n_passive <= 1:
        return 0
    # Cumulative-weight bucketing over a unit circle of slots.
    position = (slot + 0.5) / n_passive
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if position <= cumulative:
            return index
    return n_passive - 1
